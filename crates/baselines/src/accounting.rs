//! Common cost accounting so all three schemes compare fairly.

use sdr_sim::SimDuration;

/// Work and latency attributed to one served request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeCosts {
    /// CPU spent on *trusted* hardware (masters / owner machines).
    pub trusted: SimDuration,
    /// CPU spent on *untrusted* hardware (slaves / CDN replicas).
    pub untrusted: SimDuration,
    /// CPU spent at the client (verification).
    pub client: SimDuration,
    /// Bytes moved over the network.
    pub wire_bytes: u64,
    /// End-to-end latency experienced by the client.
    pub latency: SimDuration,
}

impl SchemeCosts {
    /// Element-wise accumulation (latency takes the max, everything else
    /// sums) — used when aggregating per-request costs into totals.
    pub fn accumulate(&mut self, other: &SchemeCosts) {
        self.trusted += other.trusted;
        self.untrusted += other.untrusted;
        self.client += other.client;
        self.wire_bytes += other.wire_bytes;
        self.latency = self.latency.max(other.latency);
    }

    /// Total CPU across all parties.
    pub fn total_cpu(&self) -> SimDuration {
        self.trusted + self.untrusted + self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_and_maxes() {
        let mut a = SchemeCosts {
            trusted: SimDuration::from_micros(10),
            untrusted: SimDuration::from_micros(20),
            client: SimDuration::from_micros(5),
            wire_bytes: 100,
            latency: SimDuration::from_millis(3),
        };
        let b = SchemeCosts {
            trusted: SimDuration::from_micros(1),
            untrusted: SimDuration::from_micros(2),
            client: SimDuration::from_micros(3),
            wire_bytes: 50,
            latency: SimDuration::from_millis(7),
        };
        a.accumulate(&b);
        assert_eq!(a.trusted, SimDuration::from_micros(11));
        assert_eq!(a.wire_bytes, 150);
        assert_eq!(a.latency, SimDuration::from_millis(7));
        assert_eq!(
            a.total_cpu(),
            SimDuration::from_micros(11 + 22 + 8)
        );
    }
}
