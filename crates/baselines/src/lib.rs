//! Comparator systems from the paper's related-work section.
//!
//! The paper positions its design against two generic mechanisms
//! (Sections 1 and 5):
//!
//! * **State signing** ([`state_signing`]) — "the data content is divided
//!   into small (disjunct) subsets which are signed with a content private
//!   key … some form of hash-tree authentication is normally used".
//!   Clients verify subset reads themselves, but "dynamic queries on the
//!   data need to be executed on trusted hosts", which must first fetch
//!   and verify all relevant data.
//! * **State machine replication** ([`smr`]) — "execute the same operation
//!   on a number of untrusted hosts (quorum), and accept the result only
//!   when a majority of these hosts agree … greatly increases the amount
//!   of computing resources needed … the request latency is dictated by
//!   the slowest server in the quorum group".
//!
//! Both are implemented over the same `sdr-store` content and the same
//! `sdr-sim` cost model as the paper's system, so experiment E6 compares
//! all three on identical workloads with identical accounting
//! ([`accounting::SchemeCosts`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod smr;
pub mod state_signing;

pub use accounting::SchemeCosts;
pub use smr::SmrCluster;
pub use state_signing::{SignedState, SubsetProof};
