//! The state-machine-replication baseline: quorum execution + voting.
//!
//! Every request executes on `q = 2f + 1` untrusted replicas; the client
//! accepts a result once `f + 1` identical answers arrive.  Two costs the
//! paper attributes to this approach are modeled directly:
//!
//! * compute: the same query burns CPU on *every* quorum member
//!   (plus one signature each);
//! * latency: the client waits for the `(f+1)`-th fastest replica, and in
//!   the worst case "the request latency is dictated by the slowest server
//!   in the quorum group".
//!
//! Malicious replicas can collude on an identical wrong answer; the client
//! is only fooled when `f + 1` of the `q` contacted replicas collude — the
//! probability experiment E9/E6 sweeps.

use crate::accounting::SchemeCosts;
use rand::Rng;
use sdr_sim::{CostModel, LatencyModel, SimDuration};
use sdr_store::{execute, Database, Query, QueryResult, StoreError};

/// One replica: a full copy of the content plus a collusion flag.
struct Replica {
    db: Database,
    colluding: bool,
}

/// A quorum-replication cluster.
pub struct SmrCluster {
    replicas: Vec<Replica>,
    latency: LatencyModel,
}

/// Outcome of one quorum read.
#[derive(Clone, Debug)]
pub struct QuorumOutcome {
    /// The result the client accepted (`None` = no quorum agreement).
    pub result: Option<QueryResult>,
    /// Whether the accepted result was the colluders' forgery.
    pub fooled: bool,
    /// Cost breakdown.
    pub costs: SchemeCosts,
}

impl SmrCluster {
    /// Builds a cluster of `n` replicas over `db`; `colluding` marks the
    /// replicas that return an identical forged answer.
    pub fn new(db: &Database, n: usize, colluding: &[usize], latency: LatencyModel) -> Self {
        let replicas = (0..n)
            .map(|i| Replica {
                db: db.clone(),
                colluding: colluding.contains(&i),
            })
            .collect();
        SmrCluster {
            replicas,
            latency,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Executes `query` on a quorum of size `q` (the first `q` replicas),
    /// accepting with `majority = q/2 + 1` matching answers.
    ///
    /// `rng` drives per-replica latency sampling.
    pub fn quorum_read<R: Rng>(
        &self,
        query: &Query,
        q: usize,
        costs: &CostModel,
        rng: &mut R,
    ) -> Result<QuorumOutcome, StoreError> {
        assert!(q >= 1 && q <= self.replicas.len(), "quorum size out of range");
        let majority = q / 2 + 1;
        let mut out = SchemeCosts::default();

        // Execute everywhere in the quorum.
        let mut answers: Vec<(Vec<u8>, QueryResult, SimDuration, bool)> = Vec::with_capacity(q);
        for replica in &self.replicas[..q] {
            let (honest_result, qcost) = execute(&replica.db, query)?;
            let result = if replica.colluding {
                crate::smr::forge(&honest_result)
            } else {
                honest_result
            };
            // Each member pays the execution + a signature on its reply.
            let exec = costs.query_fixed
                + costs.row_scan * qcost.rows_scanned
                + costs.index_probe * qcost.index_probes
                + costs.grep_cost(qcost.bytes_processed as usize)
                + costs.sign;
            out.untrusted += exec;
            out.wire_bytes += result.size() as u64 + 64;
            // Request leg + replica work + response leg.
            let net = self.latency.sample(rng) + self.latency.sample(rng);
            answers.push((result.encode(), result, exec + net, replica.colluding));
        }

        // Client: verify each signature and vote; accepts at the time the
        // (majority)-th member of the winning answer-set arrives.
        out.client += costs.verify * q as u64;

        answers.sort_by_key(|(_, _, t, _)| *t);
        let mut counts: Vec<(Vec<u8>, usize, SimDuration, bool)> = Vec::new();
        let mut winner: Option<(QueryResult, SimDuration, bool)> = None;
        for (enc, result, t, colluding) in &answers {
            let slot = counts.iter_mut().find(|(e, _, _, _)| e == enc);
            match slot {
                Some((_, c, latest, _)) => {
                    *c += 1;
                    *latest = (*latest).max(*t);
                    if *c >= majority && winner.is_none() {
                        winner = Some((result.clone(), *latest, *colluding));
                    }
                }
                None => {
                    counts.push((enc.clone(), 1, *t, *colluding));
                    if majority == 1 && winner.is_none() {
                        winner = Some((result.clone(), *t, *colluding));
                    }
                }
            }
        }

        match winner {
            Some((result, when, fooled)) => {
                out.latency = when;
                Ok(QuorumOutcome {
                    result: Some(result),
                    fooled,
                    costs: out,
                })
            }
            None => {
                // No agreement: the client waited for everyone.
                out.latency = answers.last().map(|(_, _, t, _)| *t).unwrap_or_default();
                Ok(QuorumOutcome {
                    result: None,
                    fooled: false,
                    costs: out,
                })
            }
        }
    }
}

/// The colluders' agreed-upon forgery (identical across colluders, always
/// different from the honest answer).
pub fn forge(honest: &QueryResult) -> QueryResult {
    match honest {
        QueryResult::Scalar(sdr_store::Value::Int(i)) => {
            QueryResult::Scalar(sdr_store::Value::Int(i.wrapping_add(1_000_000)))
        }
        _ => QueryResult::Text(Some("colluders' forgery".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sdr_store::{Document, UpdateOp};

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
        ])
        .unwrap();
        db
    }

    fn q() -> Query {
        Query::GetRow {
            table: "t".into(),
            key: 1,
        }
    }

    #[test]
    fn honest_quorum_agrees() {
        let cluster = SmrCluster::new(
            &db(),
            5,
            &[],
            LatencyModel::Constant(SimDuration::from_millis(10)),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let o = cluster
            .quorum_read(&q(), 5, &CostModel::standard(), &mut rng)
            .unwrap();
        assert!(o.result.is_some());
        assert!(!o.fooled);
    }

    #[test]
    fn minority_colluders_cannot_fool() {
        let cluster = SmrCluster::new(
            &db(),
            5,
            &[0, 1],
            LatencyModel::Constant(SimDuration::from_millis(10)),
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let o = cluster
            .quorum_read(&q(), 5, &CostModel::standard(), &mut rng)
            .unwrap();
        assert!(o.result.is_some());
        assert!(!o.fooled, "2/5 colluders must not win");
    }

    #[test]
    fn majority_colluders_do_fool() {
        let cluster = SmrCluster::new(
            &db(),
            5,
            &[0, 1, 2],
            LatencyModel::Constant(SimDuration::from_millis(10)),
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let o = cluster
            .quorum_read(&q(), 5, &CostModel::standard(), &mut rng)
            .unwrap();
        assert!(o.fooled, "3/5 colluders control the quorum");
    }

    #[test]
    fn compute_cost_scales_with_quorum() {
        let cluster = SmrCluster::new(
            &db(),
            9,
            &[],
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        let mut rng = SmallRng::seed_from_u64(4);
        let costs = CostModel::standard();
        let o3 = cluster.quorum_read(&q(), 3, &costs, &mut rng).unwrap();
        let o9 = cluster.quorum_read(&q(), 9, &costs, &mut rng).unwrap();
        assert_eq!(o9.costs.untrusted, o3.costs.untrusted * 3);
    }

    #[test]
    fn latency_set_by_majority_arrival_under_spread() {
        let cluster = SmrCluster::new(
            &db(),
            5,
            &[],
            LatencyModel::Uniform(SimDuration::from_millis(1), SimDuration::from_millis(200)),
        );
        let mut rng = SmallRng::seed_from_u64(5);
        let o = cluster
            .quorum_read(&q(), 5, &CostModel::standard(), &mut rng)
            .unwrap();
        // Latency must be at least the median-ish arrival, far above the
        // fastest single response.
        assert!(o.costs.latency > SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "quorum size out of range")]
    fn oversized_quorum_panics() {
        let cluster = SmrCluster::new(
            &db(),
            3,
            &[],
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = cluster.quorum_read(&q(), 4, &CostModel::standard(), &mut rng);
    }
}
