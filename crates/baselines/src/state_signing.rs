//! The state-signing baseline: Merkle-tree authenticated content.
//!
//! The owner divides the content into leaves (rows and files), builds a
//! Merkle tree, and signs the root with the content key.  Untrusted
//! storage serves leaves with authentication paths; clients verify paths
//! and the root signature themselves.  The scheme's strength is that
//! *static subset reads* need no trusted party at all; its weakness — the
//! one the paper's system removes — is that *dynamic queries* (filters,
//! aggregations, grep, joins) "need to be executed on trusted hosts",
//! which must fetch and verify every relevant leaf first.

use crate::accounting::SchemeCosts;
use sdr_crypto::{CryptoError, MerkleProof, MerkleTree, PublicKey, Signature, Signer};
use sdr_sim::{CostModel, SimDuration};
use sdr_store::{execute, Database, Query, QueryResult, StoreError};

/// Identifies a leaf in the published tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LeafId {
    /// A table row: `(table, key)`.
    Row(String, u64),
    /// A file: path.
    File(String),
}

/// The published, owner-signed snapshot of the content.
pub struct SignedState {
    db: Database,
    tree: MerkleTree,
    leaves: Vec<(LeafId, Vec<u8>)>,
    root_signature: Signature,
}

/// A verifiable subset read: leaf bytes plus an authentication path.
#[derive(Clone, Debug)]
pub struct SubsetProof {
    /// The leaf's identity.
    pub leaf: LeafId,
    /// The leaf's encoded bytes (`None` + absent proof = not found).
    pub bytes: Vec<u8>,
    /// Authentication path to the signed root.
    pub proof: MerkleProof,
}

fn encode_row(table: &str, key: u64, db: &Database) -> Option<Vec<u8>> {
    let doc = db.table(table).ok()?.get(key)?;
    let mut out = Vec::new();
    out.extend_from_slice(b"row/");
    out.extend_from_slice(table.as_bytes());
    out.push(0);
    out.extend_from_slice(&key.to_be_bytes());
    doc.encode_into(&mut out);
    Some(out)
}

fn encode_file(path: &str, db: &Database) -> Option<Vec<u8>> {
    let contents = db.fs().read(path)?;
    let mut out = Vec::new();
    out.extend_from_slice(b"file/");
    out.extend_from_slice(path.as_bytes());
    out.push(0);
    out.extend_from_slice(contents.as_bytes());
    Some(out)
}

impl SignedState {
    /// Publishes a snapshot: enumerates leaves, builds the tree, signs the
    /// root.  Returns the state and the trusted CPU spent (hashing every
    /// leaf + one signature) — the per-update cost of this baseline.
    pub fn publish(
        db: Database,
        owner: &mut dyn Signer,
        costs: &CostModel,
    ) -> Result<(Self, SimDuration), CryptoError> {
        let mut leaves: Vec<(LeafId, Vec<u8>)> = Vec::new();
        let mut names: Vec<String> = db.table_names().map(str::to_string).collect();
        names.sort();
        for table in &names {
            let t = db.table(table).expect("listed");
            for (key, _) in t.iter() {
                let bytes = encode_row(table, key, &db).expect("row exists");
                leaves.push((LeafId::Row(table.clone(), key), bytes));
            }
        }
        for path in db.fs().list("") {
            let bytes = encode_file(&path, &db).expect("file exists");
            leaves.push((LeafId::File(path), bytes));
        }
        if leaves.is_empty() {
            return Err(CryptoError::Malformed("empty content"));
        }

        let mut spent = SimDuration::ZERO;
        let hashes: Vec<_> = leaves
            .iter()
            .map(|(_, b)| {
                spent += costs.hash_cost(b.len());
                sdr_crypto::merkle::leaf_hash(b)
            })
            .collect();
        let tree = MerkleTree::from_leaves(hashes)?;
        spent += costs.sign;
        let root_signature = owner.sign(tree.root().as_ref())?;
        Ok((
            SignedState {
                db,
                tree,
                leaves,
                root_signature,
            },
            spent,
        ))
    }

    /// Number of leaves published.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    fn find_leaf(&self, id: &LeafId) -> Option<usize> {
        self.leaves.iter().position(|(l, _)| l == id)
    }

    /// Untrusted storage serves a subset read: leaf + path.
    ///
    /// Returns the proof and the untrusted CPU spent.
    pub fn read_leaf(
        &self,
        id: &LeafId,
        costs: &CostModel,
    ) -> Option<(SubsetProof, SimDuration)> {
        let idx = self.find_leaf(id)?;
        let proof = self.tree.prove(idx).ok()?;
        // Index lookup + proof assembly.
        let spent = costs.index_probe * (1 + proof.siblings.len() as u64);
        Some((
            SubsetProof {
                leaf: id.clone(),
                bytes: self.leaves[idx].1.clone(),
                proof,
            },
            spent,
        ))
    }

    /// Client-side verification of a subset read.
    ///
    /// Returns the client CPU spent, or an error when the proof fails.
    pub fn verify_subset(
        subset: &SubsetProof,
        root_signature: &Signature,
        content_key: &PublicKey,
        expected_root: &sdr_crypto::Hash256,
        costs: &CostModel,
    ) -> Result<SimDuration, CryptoError> {
        let mut spent = costs.verify; // Root signature.
        content_key.verify(expected_root.as_ref(), root_signature)?;
        spent += costs.hash_cost(subset.bytes.len());
        let leaf = sdr_crypto::merkle::leaf_hash(&subset.bytes);
        spent += costs.hash_cost(64) * subset.proof.siblings.len() as u64;
        MerkleTree::verify(expected_root, &leaf, &subset.proof)?;
        Ok(spent)
    }

    /// The signed root and its signature (what clients pin).
    pub fn root(&self) -> (sdr_crypto::Hash256, Signature) {
        (self.tree.root(), self.root_signature.clone())
    }

    /// Serves an arbitrary query under the state-signing regime, charging
    /// each party per the scheme's rules:
    ///
    /// * `GetRow` / `ReadFile` — untrusted storage + client verification
    ///   (no trusted work at all);
    /// * everything else — a **trusted host** must fetch + verify the
    ///   relevant leaves, then execute the query itself.
    pub fn serve_query(
        &self,
        query: &Query,
        content_key: &PublicKey,
        costs: &CostModel,
    ) -> Result<(QueryResult, SchemeCosts), StoreError> {
        let mut out = SchemeCosts::default();
        match query {
            Query::GetRow { table, key } => {
                let id = LeafId::Row(table.clone(), *key);
                if let Some((subset, untrusted)) = self.read_leaf(&id, costs) {
                    out.untrusted += untrusted;
                    out.wire_bytes +=
                        subset.bytes.len() as u64 + 32 * subset.proof.siblings.len() as u64;
                    let (root, sig) = self.root();
                    let client =
                        Self::verify_subset(&subset, &sig, content_key, &root, costs)
                            .map_err(|_| StoreError::BadQuery("proof verification failed"))?;
                    out.client += client;
                }
                let (result, _) = execute(&self.db, query)?;
                Ok((result, out))
            }
            Query::ReadFile { path } => {
                let id = LeafId::File(path.clone());
                if let Some((subset, untrusted)) = self.read_leaf(&id, costs) {
                    out.untrusted += untrusted;
                    out.wire_bytes +=
                        subset.bytes.len() as u64 + 32 * subset.proof.siblings.len() as u64;
                    let (root, sig) = self.root();
                    let client =
                        Self::verify_subset(&subset, &sig, content_key, &root, costs)
                            .map_err(|_| StoreError::BadQuery("proof verification failed"))?;
                    out.client += client;
                }
                let (result, _) = execute(&self.db, query)?;
                Ok((result, out))
            }
            _ => {
                // Dynamic query: a trusted host fetches + verifies every
                // leaf the query touches, then executes.  We charge the
                // fetch/verify of all touched rows (approximated by the
                // query's scan set) plus the execution itself.
                let (result, qcost) = execute(&self.db, query)?;
                let touched = qcost.rows_scanned + qcost.index_probes;
                // Untrusted storage streams the leaves...
                out.untrusted += costs.index_probe * touched;
                // ...the trusted host verifies each path (log n hashes) and
                // re-hashes each leaf...
                let path_len = self.tree.height() as u64;
                out.trusted += (costs.hash_cost(256) + costs.hash_cost(64) * path_len) * touched;
                out.trusted += costs.verify; // Root signature, once.
                // ...then executes the query.
                out.trusted += costs.query_fixed
                    + costs.row_scan * qcost.rows_scanned
                    + costs.index_probe * qcost.index_probes
                    + costs.grep_cost(qcost.bytes_processed as usize);
                out.wire_bytes += 256 * touched;
                Ok((result, out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_crypto::HmacSigner;
    use sdr_store::{Document, Predicate, UpdateOp};

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 2,
                doc: Document::new().with("v", 20i64),
            },
            UpdateOp::WriteFile {
                path: "/readme".into(),
                contents: "hello world\n".into(),
            },
        ])
        .unwrap();
        db
    }

    fn published() -> (SignedState, HmacSigner) {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let costs = CostModel::standard();
        let (state, _) = SignedState::publish(db(), &mut owner, &costs).unwrap();
        (state, owner)
    }

    #[test]
    fn publish_enumerates_rows_and_files() {
        let (state, _) = published();
        assert_eq!(state.leaf_count(), 3);
    }

    #[test]
    fn subset_read_verifies_at_client() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        let (subset, _) = state
            .read_leaf(&LeafId::Row("t".into(), 1), &costs)
            .unwrap();
        let (root, sig) = state.root();
        use sdr_crypto::Signer as _;
        SignedState::verify_subset(&subset, &sig, &owner.public_key(), &root, &costs).unwrap();
    }

    #[test]
    fn tampered_leaf_fails_client_verification() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        let (mut subset, _) = state
            .read_leaf(&LeafId::Row("t".into(), 1), &costs)
            .unwrap();
        subset.bytes[10] ^= 0xff;
        let (root, sig) = state.root();
        use sdr_crypto::Signer as _;
        assert!(SignedState::verify_subset(
            &subset,
            &sig,
            &owner.public_key(),
            &root,
            &costs
        )
        .is_err());
    }

    #[test]
    fn static_reads_need_no_trusted_cpu() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        use sdr_crypto::Signer as _;
        let (_, c) = state
            .serve_query(
                &Query::GetRow {
                    table: "t".into(),
                    key: 1,
                },
                &owner.public_key(),
                &costs,
            )
            .unwrap();
        assert_eq!(c.trusted, SimDuration::ZERO);
        assert!(c.untrusted > SimDuration::ZERO);
        assert!(c.client > SimDuration::ZERO);
    }

    #[test]
    fn dynamic_queries_burn_trusted_cpu() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        use sdr_crypto::Signer as _;
        let (_, c) = state
            .serve_query(
                &Query::Filter {
                    table: "t".into(),
                    predicate: Predicate::cmp("v", sdr_store::CmpOp::Ge, 0i64),
                    projection: None,
                    limit: None,
                },
                &owner.public_key(),
                &costs,
            )
            .unwrap();
        assert!(
            c.trusted > SimDuration::ZERO,
            "dynamic query must hit trusted host"
        );
    }

    #[test]
    fn missing_leaf_read_is_none() {
        let (state, _) = published();
        let costs = CostModel::standard();
        assert!(state.read_leaf(&LeafId::Row("t".into(), 99), &costs).is_none());
    }
}
