//! The state-signing baseline: digest-signed, proof-served content.
//!
//! The owner signs a commitment to the whole content; untrusted storage
//! serves *static subset reads* with authentication paths that clients
//! verify against the signed commitment — no trusted party in the read
//! path at all.  The scheme's weakness — the one the paper's system
//! removes — is that *dynamic queries* (filters, aggregations, grep,
//! joins) "need to be executed on trusted hosts", which must fetch and
//! verify every relevant leaf first.
//!
//! This baseline is rebased on the protocol's shared digest machinery:
//! the signed commitment is [`Database::state_digest`] — the very value
//! masters stamp on every commit — and subset reads are served as
//! [`sdr_store::StateProof`]s straight out of the store's search-tree
//! digests.  What used to be a strawman with its own flat Merkle tree is
//! now literally the protocol's authenticated read path minus the
//! master: a static read here costs the same O(log n) proof bytes and
//! hashes, which is what makes the e6 comparison an apples-to-apples
//! account of *dynamic* query cost.

use crate::accounting::SchemeCosts;
use sdr_crypto::{CryptoError, Hash256, PublicKey, Signature, Signer};
use sdr_sim::{CostModel, SimDuration};
use sdr_store::{execute, Database, Query, QueryResult, StateProof, StoreError};

/// The published, owner-signed snapshot of the content.
pub struct SignedState {
    db: Database,
    digest: Hash256,
    root_signature: Signature,
    /// Rows plus files: sizes the dynamic-read path-length estimates.
    leaf_count: usize,
}

/// A verifiable subset read: the result plus its authentication path to
/// the signed state digest.  Absence is proven the same way presence is
/// (the empty result folds up from the vacant slot), so "not found"
/// answers are no longer taken on faith.
#[derive(Clone, Debug)]
pub struct SubsetProof {
    /// The query this answers (`GetRow` or `ReadFile`).
    pub query: Query,
    /// The (claimed) result.
    pub result: QueryResult,
    /// Merkle path from the result to the signed digest.
    pub proof: StateProof,
}

impl SignedState {
    /// Publishes a snapshot: computes the state digest and signs it with
    /// the content key.  Returns the state and the trusted CPU spent —
    /// hashing every leaf once to build the digest tree, plus one
    /// signature — the per-update cost of this baseline.
    pub fn publish(
        db: Database,
        owner: &mut dyn Signer,
        costs: &CostModel,
    ) -> Result<(Self, SimDuration), CryptoError> {
        let rows: usize = db
            .table_names()
            .map(|t| db.table(t).expect("listed").len())
            .sum();
        let leaf_count = rows + db.fs().file_count();
        if leaf_count == 0 {
            return Err(CryptoError::Malformed("empty content"));
        }
        // The first digest hashes all content bytes plus ~2 internal
        // nodes per leaf (the store amortises *subsequent* digests to
        // O(log n), but the baseline re-publishes from scratch).
        let mut spent = costs.hash_cost(db.size());
        spent += costs.hash_cost(64) * (2 * leaf_count as u64);
        spent += costs.sign;
        let digest = db.state_digest();
        let root_signature = owner.sign(digest.as_ref())?;
        Ok((
            SignedState {
                db,
                digest,
                root_signature,
                leaf_count,
            },
            spent,
        ))
    }

    /// Number of leaves (rows + files) committed to.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The signed digest and its signature (what clients pin).
    pub fn root(&self) -> (Hash256, Signature) {
        (self.digest, self.root_signature.clone())
    }

    /// The version the digest covers (bound into the preimage).
    pub fn version(&self) -> u64 {
        self.db.version()
    }

    /// Untrusted storage serves a static subset read: result + path.
    ///
    /// Returns `None` for queries the proof path cannot cover (computed
    /// queries, or a `GetRow` against a missing table); otherwise the
    /// proof and the untrusted CPU spent.
    pub fn read_subset(
        &self,
        query: &Query,
        costs: &CostModel,
    ) -> Option<(SubsetProof, SimDuration)> {
        let proof = self.db.prove_query(query)?.ok()?;
        let (result, _) = execute(&self.db, query).ok()?;
        // Index walk + proof assembly, one probe per path node.
        let spent = costs.index_probe * (1 + proof.depth() as u64);
        Some((
            SubsetProof {
                query: query.clone(),
                result,
                proof,
            },
            spent,
        ))
    }

    /// Client-side verification of a subset read: root signature once,
    /// then the O(log n) path fold.
    ///
    /// Returns the client CPU spent, or an error when anything fails.
    pub fn verify_subset(
        subset: &SubsetProof,
        root_signature: &Signature,
        content_key: &PublicKey,
        expected_digest: &Hash256,
        version: u64,
        costs: &CostModel,
    ) -> Result<SimDuration, CryptoError> {
        let mut spent = costs.verify; // Root signature.
        content_key.verify(expected_digest.as_ref(), root_signature)?;
        spent += costs.hash_cost(subset.result.size());
        spent += costs.hash_cost(64) * (1 + subset.proof.depth() as u64);
        subset
            .proof
            .verify_result(expected_digest, version, &subset.query, &subset.result)
            .map_err(|_| CryptoError::InvalidProof)?;
        Ok(spent)
    }

    /// Serves an arbitrary query under the state-signing regime, charging
    /// each party per the scheme's rules:
    ///
    /// * `GetRow` / `ReadFile` — untrusted storage + client verification
    ///   (no trusted work at all);
    /// * everything else — a **trusted host** must fetch + verify the
    ///   relevant leaves, then execute the query itself.
    pub fn serve_query(
        &self,
        query: &Query,
        content_key: &PublicKey,
        costs: &CostModel,
    ) -> Result<(QueryResult, SchemeCosts), StoreError> {
        let mut out = SchemeCosts::default();
        match query {
            Query::GetRow { .. } | Query::ReadFile { .. } => {
                if let Some((subset, untrusted)) = self.read_subset(query, costs) {
                    out.untrusted += untrusted;
                    out.wire_bytes +=
                        subset.result.size() as u64 + subset.proof.wire_len() as u64;
                    let (root, sig) = self.root();
                    let client = Self::verify_subset(
                        &subset,
                        &sig,
                        content_key,
                        &root,
                        self.version(),
                        costs,
                    )
                    .map_err(|_| StoreError::BadQuery("proof verification failed"))?;
                    out.client += client;
                    Ok((subset.result, out))
                } else {
                    // Unprovable static read (e.g. missing table): plain
                    // execution so the caller sees the store's own error.
                    let (result, _) = execute(&self.db, query)?;
                    Ok((result, out))
                }
            }
            _ => {
                // Dynamic query: a trusted host fetches + verifies every
                // leaf the query touches, then executes.  We charge the
                // fetch/verify of all touched rows (approximated by the
                // query's scan set) plus the execution itself.
                let (result, qcost) = execute(&self.db, query)?;
                let touched = qcost.rows_scanned + qcost.index_probes;
                // Untrusted storage streams the leaves...
                out.untrusted += costs.index_probe * touched;
                // ...the trusted host verifies each path (log n hashes) and
                // re-hashes each leaf...
                let path_len = (self.leaf_count.max(2) as f64).log2().ceil() as u64;
                out.trusted += (costs.hash_cost(256) + costs.hash_cost(64) * path_len) * touched;
                out.trusted += costs.verify; // Root signature, once.
                // ...then executes the query.
                out.trusted += costs.query_fixed
                    + costs.row_scan * qcost.rows_scanned
                    + costs.index_probe * qcost.index_probes
                    + costs.grep_cost(qcost.bytes_processed as usize);
                out.wire_bytes += 256 * touched;
                Ok((result, out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_crypto::HmacSigner;
    use sdr_store::{Document, Predicate, UpdateOp};

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 2,
                doc: Document::new().with("v", 20i64),
            },
            UpdateOp::WriteFile {
                path: "/readme".into(),
                contents: "hello world\n".into(),
            },
        ])
        .unwrap();
        db
    }

    fn published() -> (SignedState, HmacSigner) {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let costs = CostModel::standard();
        let (state, _) = SignedState::publish(db(), &mut owner, &costs).unwrap();
        (state, owner)
    }

    fn get_row(key: u64) -> Query {
        Query::GetRow {
            table: "t".into(),
            key,
        }
    }

    #[test]
    fn publish_counts_rows_and_files() {
        let (state, _) = published();
        assert_eq!(state.leaf_count(), 3);
        // The signed digest is the shared machinery's digest, verbatim.
        assert_eq!(state.root().0, db().state_digest());
    }

    #[test]
    fn subset_read_verifies_at_client() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        let (subset, _) = state.read_subset(&get_row(1), &costs).unwrap();
        let (root, sig) = state.root();
        use sdr_crypto::Signer as _;
        SignedState::verify_subset(
            &subset,
            &sig,
            &owner.public_key(),
            &root,
            state.version(),
            &costs,
        )
        .unwrap();
    }

    #[test]
    fn tampered_result_fails_client_verification() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        let (mut subset, _) = state.read_subset(&get_row(1), &costs).unwrap();
        subset.result = QueryResult::Rows(vec![(1, Document::new().with("v", 666i64))]);
        let (root, sig) = state.root();
        use sdr_crypto::Signer as _;
        assert!(SignedState::verify_subset(
            &subset,
            &sig,
            &owner.public_key(),
            &root,
            state.version(),
            &costs
        )
        .is_err());
    }

    #[test]
    fn missing_row_is_provably_absent() {
        // The old flat-tree baseline served "not found" unverified; the
        // rebased one proves absence like presence.
        let (state, owner) = published();
        let costs = CostModel::standard();
        let (subset, _) = state.read_subset(&get_row(99), &costs).unwrap();
        assert_eq!(subset.result, QueryResult::Rows(vec![]));
        let (root, sig) = state.root();
        use sdr_crypto::Signer as _;
        SignedState::verify_subset(
            &subset,
            &sig,
            &owner.public_key(),
            &root,
            state.version(),
            &costs,
        )
        .unwrap();
    }

    #[test]
    fn static_reads_need_no_trusted_cpu() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        use sdr_crypto::Signer as _;
        let (_, c) = state
            .serve_query(&get_row(1), &owner.public_key(), &costs)
            .unwrap();
        assert_eq!(c.trusted, SimDuration::ZERO);
        assert!(c.untrusted > SimDuration::ZERO);
        assert!(c.client > SimDuration::ZERO);
        assert!(c.wire_bytes > 0);
    }

    #[test]
    fn dynamic_queries_burn_trusted_cpu() {
        let (state, owner) = published();
        let costs = CostModel::standard();
        use sdr_crypto::Signer as _;
        let (_, c) = state
            .serve_query(
                &Query::Filter {
                    table: "t".into(),
                    predicate: Predicate::cmp("v", sdr_store::CmpOp::Ge, 0i64),
                    projection: None,
                    limit: None,
                },
                &owner.public_key(),
                &costs,
            )
            .unwrap();
        assert!(
            c.trusted > SimDuration::ZERO,
            "dynamic query must hit trusted host"
        );
    }

    #[test]
    fn computed_queries_have_no_subset_proof() {
        let (state, _) = published();
        let costs = CostModel::standard();
        assert!(state
            .read_subset(&Query::ListFiles { prefix: "/".into() }, &costs)
            .is_none());
        assert!(state
            .read_subset(
                &Query::GetRow {
                    table: "missing".into(),
                    key: 1
                },
                &costs
            )
            .is_none());
    }
}
