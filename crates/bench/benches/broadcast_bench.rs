//! Criterion benchmarks for the total-order broadcast engine: ordering
//! throughput and view-change cost at several group sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdr_broadcast::{Action, MemberId, TobConfig, TotalOrder};
use std::collections::VecDeque;
use std::hint::black_box;

/// Runs `n_msgs` broadcasts through an `n`-member group in lockstep and
/// returns total deliveries (sanity output for black_box).
fn pump_broadcasts(n: usize, n_msgs: u32) -> usize {
    let mut engines: Vec<TotalOrder<u64>> = (0..n)
        .map(|i| TotalOrder::new(MemberId(i as u32), n, TobConfig::default()))
        .collect();
    let mut in_flight: VecDeque<(MemberId, MemberId, _)> = VecDeque::new();
    let mut delivered = 0usize;

    let apply = |me: MemberId,
                     actions: Vec<Action<u64>>,
                     in_flight: &mut VecDeque<(MemberId, MemberId, _)>,
                     delivered: &mut usize| {
        for a in actions {
            match a {
                Action::Send { to, msg } => in_flight.push_back((me, to, msg)),
                Action::Deliver { .. } => *delivered += 1,
                Action::ViewInstalled(_) => {}
            }
        }
    };

    for i in 0..n_msgs {
        let from = (i as usize) % n;
        let acts = engines[from].broadcast(u64::from(i));
        apply(MemberId(from as u32), acts, &mut in_flight, &mut delivered);
        while let Some((f, t, m)) = in_flight.pop_front() {
            let acts = engines[t.index()].on_message(f, m);
            apply(t, acts, &mut in_flight, &mut delivered);
        }
    }
    delivered
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("tob_order_100_msgs");
    for n in [3usize, 5, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(pump_broadcasts(n, 100)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
