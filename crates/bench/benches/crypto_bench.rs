//! Criterion micro-benchmarks for the cryptographic substrate (E11).
//!
//! These calibrate the simulator's virtual cost model: the *ratios*
//! between signing, verification and hashing drive every performance
//! experiment's shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdr_crypto::{
    hmac_sha256, Digest, HmacDrbg, MerkleTree, MssKeypair, Sha1, Sha256, WotsKeypair,
};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| black_box(Sha1::digest(d)))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(Sha256::digest(d)))
        });
    }
    group.finish();
}

fn bench_hmac_and_drbg(c: &mut Criterion) {
    let data = vec![0x5au8; 256];
    c.bench_function("hmac_sha256/256B", |b| {
        b.iter(|| black_box(hmac_sha256(b"key material", &data)))
    });
    c.bench_function("hmac_drbg/64B", |b| {
        let mut drbg = HmacDrbg::new(b"bench seed");
        b.iter(|| black_box(drbg.generate(64)))
    });
}

fn bench_wots(c: &mut Criterion) {
    let kp = WotsKeypair::from_seed(&[7u8; 32]);
    let sig = kp.sign_unchecked(b"benchmark message");
    let pk = kp.public_key();
    c.bench_function("wots/keygen", |b| {
        b.iter(|| black_box(WotsKeypair::from_seed(&[7u8; 32])))
    });
    c.bench_function("wots/sign", |b| {
        b.iter(|| black_box(kp.sign_unchecked(b"benchmark message")))
    });
    c.bench_function("wots/verify", |b| {
        b.iter(|| WotsKeypair::verify(&pk, b"benchmark message", &sig).expect("valid"))
    });
}

fn bench_mss(c: &mut Criterion) {
    let kp = MssKeypair::generate([9u8; 32], 6).expect("keygen");
    let pk = kp.public_key();
    let mut signer = kp.clone();
    let sig = signer.sign(b"msg").expect("capacity");
    c.bench_function("mss/sign_h6", |b| {
        b.iter_batched(
            || kp.clone(),
            |mut k| black_box(k.sign(b"msg").expect("capacity")),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("mss/verify_h6", |b| {
        b.iter(|| MssKeypair::verify(&pk, b"msg", &sig).expect("valid"))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..1024).map(|i: u32| i.to_be_bytes().to_vec()).collect();
    let tree = MerkleTree::from_data(&leaves).expect("non-empty");
    let root = tree.root();
    let proof = tree.prove(513).expect("in range");
    let leaf = sdr_crypto::merkle::leaf_hash(&leaves[513]);
    c.bench_function("merkle/build_1024", |b| {
        b.iter(|| black_box(MerkleTree::from_data(&leaves).expect("non-empty")))
    });
    c.bench_function("merkle/prove_1024", |b| {
        b.iter(|| black_box(tree.prove(513).expect("in range")))
    });
    c.bench_function("merkle/verify_1024", |b| {
        b.iter(|| MerkleTree::verify(&root, &leaf, &proof).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_hashes,
    bench_hmac_and_drbg,
    bench_wots,
    bench_mss,
    bench_merkle
);
criterion_main!(benches);
