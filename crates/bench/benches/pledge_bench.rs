//! Criterion benchmarks for the pledge pipeline (E11): what a slave pays
//! per read (hash + sign) vs. what a client pays (hash + 2 verifies) vs.
//! what the auditor pays (hash compare only — no signing, no replies).

use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::config::HashAlgo;
use sdr_core::messages::VersionStamp;
use sdr_core::pledge::{Pledge, ResultHash};
use sdr_crypto::{HmacSigner, MssKeypair, MssSigner, Signer};
use sdr_sim::{NodeId, SimTime};
use sdr_store::{Document, Query, QueryResult};
use std::hint::black_box;

fn fixture() -> (Query, QueryResult, VersionStamp, HmacSigner, HmacSigner) {
    let mut master = HmacSigner::from_seed_label(1, b"master");
    let slave = HmacSigner::from_seed_label(2, b"slave");
    let query = Query::Filter {
        table: "products".into(),
        predicate: sdr_store::Predicate::eq("category", "tools"),
        projection: None,
        limit: None,
    };
    let result = QueryResult::Rows(
        (0..20)
            .map(|i| {
                (
                    i,
                    Document::new()
                        .with("name", format!("product-{i}"))
                        .with("price", i as i64 * 7),
                )
            })
            .collect(),
    );
    let stamp =
        VersionStamp::build(42, SimTime::from_millis(5), NodeId(0), &mut master).expect("stamp");
    (query, result, stamp, master, slave)
}

fn bench_slave_side(c: &mut Criterion) {
    let (query, result, stamp, _master, mut slave) = fixture();
    c.bench_function("pledge/slave_build_hmac", |b| {
        b.iter(|| {
            let hash = ResultHash::of(&result, HashAlgo::Sha1);
            black_box(
                Pledge::build(query.clone(), hash, stamp.clone(), NodeId(3), &mut slave)
                    .expect("pledge"),
            )
        })
    });

    // MSS keys are one-time-per-leaf: hand each iteration a fresh clone so
    // criterion's iteration count can never exhaust the key.
    let mss_kp = MssKeypair::generate([3u8; 32], 4).expect("keygen");
    c.bench_function("pledge/slave_build_mss", |b| {
        b.iter_batched(
            || MssSigner::from_keypair(mss_kp.clone()),
            |mut signer| {
                let hash = ResultHash::of(&result, HashAlgo::Sha1);
                black_box(
                    Pledge::build(query.clone(), hash, stamp.clone(), NodeId(3), &mut signer)
                        .expect("capacity"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_client_side(c: &mut Criterion) {
    let (query, result, stamp, master, mut slave) = fixture();
    let pledge = Pledge::build(
        query,
        ResultHash::of(&result, HashAlgo::Sha1),
        stamp,
        NodeId(3),
        &mut slave,
    )
    .expect("pledge");
    let slave_pk = slave.public_key();
    let master_pk = master.public_key();

    c.bench_function("pledge/client_verify_full", |b| {
        b.iter(|| {
            // The three client checks of Section 3.2.
            assert!(pledge.matches_result(&result));
            pledge.verify_signature(&slave_pk).expect("valid");
            pledge.stamp.verify(&master_pk).expect("valid");
        })
    });
}

fn bench_auditor_side(c: &mut Criterion) {
    let (_query, result, _stamp, _master, _slave) = fixture();
    let pledged = ResultHash::of(&result, HashAlgo::Sha1);
    c.bench_function("pledge/auditor_hash_compare", |b| {
        b.iter(|| {
            // The auditor's marginal per-pledge work after re-execution:
            // hash the recomputed result and compare (no signing, ever).
            let recomputed = ResultHash::of(&result, HashAlgo::Sha1);
            assert!(black_box(recomputed == pledged));
        })
    });
}

criterion_group!(benches, bench_slave_side, bench_client_side, bench_auditor_side);
criterion_main!(benches);
