//! Criterion benchmarks for the sharded deployment: wall-clock cost of
//! building and driving a write-saturated simulation at different shard
//! counts, plus the per-shard dataset split itself.
//!
//! The interesting *virtual*-time result (committed writes growing
//! near-linearly with shard count) lives in the `sharded_commit`
//! registry scenario; these benches track the *host* cost of the same
//! machinery so regressions in the sharded hot paths (per-shard
//! sequencing, routing, digest stamping) show up in `BENCH_store.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::dataset::DatasetSpec;
use sdr_core::shard::ShardMap;
use sdr_core::{SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimDuration;
use std::hint::black_box;

fn write_heavy_cfg(n_shards: usize) -> SystemConfig {
    SystemConfig {
        n_shards,
        n_masters: 3,
        n_slaves: 2,
        n_clients: 8,
        max_latency: SimDuration::from_millis(500),
        keepalive_period: SimDuration::from_millis(125),
        double_check_prob: 0.0,
        seed: 4_242,
        ..SystemConfig::default()
    }
}

fn write_heavy_workload() -> Workload {
    Workload {
        reads_per_sec: 1.0,
        writes_per_sec: 30.0,
        writer_fraction: 1.0,
        ..Workload::default()
    }
}

fn bench_shard_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_commit");

    // The routing function itself: pure, hot on every client request.
    let map = ShardMap::new(8, &DatasetSpec::default());
    let mut k = 0u64;
    group.bench_function("route_row", |b| {
        b.iter(|| {
            k += 1;
            black_box(map.shard_of_row(1 + k % 500))
        })
    });

    // Splitting the dataset into all four slices in one generator pass
    // (what `SystemBuilder::build` pays at start-up).
    let spec = DatasetSpec::default();
    let map4 = ShardMap::new(4, &spec);
    group.bench_function("build_shard_slices", |b| {
        b.iter(|| black_box(spec.build_shards(&map4).len()))
    });

    // Full build + 3 s of saturated writes, one queue vs four: the
    // wall-clock cost of the sharded machinery end to end.  (Committed
    // writes per *virtual* second scale with the shard count; see the
    // `sharded_commit` scenario.)
    for n_shards in [1usize, 4] {
        group.bench_function(format!("run_3s_{n_shards}shard"), |b| {
            b.iter(|| {
                let mut sys = SystemBuilder::new(write_heavy_cfg(n_shards))
                    .workload(write_heavy_workload())
                    .build();
                sys.run_for(SimDuration::from_secs(3));
                black_box(sys.world.metrics().counter("write.committed"))
            })
        });
    }
    group.finish();
}

fn bench_batched_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_commit");

    // Full build + 3 s of saturated writes, unbatched vs batch=8 on a
    // single shard: the host cost of the batched round machinery (one
    // ordered round + one digest stamp per batch).  The *virtual*-time
    // throughput gain lives in the `batched_commit` registry scenario.
    for batch in [1usize, 8] {
        group.bench_function(format!("run_3s_batch{batch}"), |b| {
            b.iter(|| {
                let mut cfg = write_heavy_cfg(1);
                cfg.max_write_batch = batch;
                let mut sys = SystemBuilder::new(cfg)
                    .workload(write_heavy_workload())
                    .build();
                sys.run_for(SimDuration::from_secs(3));
                black_box(sys.world.metrics().counter("write.committed"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_commit, bench_batched_commit);
criterion_main!(benches);
