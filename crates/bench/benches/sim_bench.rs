//! Criterion benchmarks for the simulator scheduler at population scale.
//!
//! The `sim_100k` group holds the event queue at 100 000 live events —
//! the regime the `churn_100k` scenario puts it in — and compares the
//! seed scheduler (one monolithic `BinaryHeap` whose entries carry the
//! full message by value, deep-cloned per multicast recipient) against
//! the bucketed slab queue with `Arc`-shared payloads:
//!
//! * `pop_push_*_100k` — steady-state scheduling latency alone (tiny
//!   payloads): O(log n) sift against amortised-O(1) bucket drain.
//! * `fanout8_*` — event throughput for an 8-recipient multicast with a
//!   1 KiB payload: the seed path clones the kilobyte per recipient,
//!   the shared path clones an `Arc` per recipient.
//! * `rss_proxy_slab_drain` — fill-then-drain of 100k events; the slab
//!   recycles every slot, so sustained load holds resident memory at
//!   the high-water mark instead of growing with total events pushed
//!   (the queue's `slots` stat is the resident-set proxy the
//!   `churn_100k` report exposes as `sim_queue_slots`).

use criterion::{criterion_group, criterion_main, Criterion};
use sdr_sim::event::{BaselineHeap, EventKind, EventQueue};
use sdr_sim::{NodeId, SimTime};
use std::hint::black_box;
use std::sync::Arc;

const LIVE: u64 = 100_000;

/// Deterministic pseudo-random event spacing (no external RNG needed):
/// xorshift over a fixed seed, delays spread across the bucket wheel.
struct Spread(u64);

impl Spread {
    fn raw(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Delivery-like delays: 0..65 ms in µs, the WAN-latency band that
    /// dominates the simulator's queue traffic.  Lands in the current
    /// window or the wheel — the hot tiers.
    fn next_delay(&mut self) -> u64 {
        self.raw() % 65_536
    }

    /// Timer-like delays: 0..2.1 s in µs, spanning all three tiers
    /// including the far heap (keep-alives, audit ticks, churn flips).
    fn next_far_delay(&mut self) -> u64 {
        self.raw() % 2_097_152
    }
}

/// A replication-shaped message: nested allocations, like the ops /
/// certificate / proof vectors real `Msg` variants carry.  ~1 KiB of
/// payload behind 17 separate allocations, so a deep clone pays the
/// allocator 17 times — exactly what the seed scheduler did once per
/// multicast recipient.
type NestedMsg = Vec<String>;

fn nested_msg() -> NestedMsg {
    (0..16).map(|i| format!("{i:064}")).collect()
}

fn deliver<M>(payload: Arc<M>) -> EventKind<M> {
    EventKind::Deliver {
        to: NodeId(0),
        from: NodeId(1),
        msg: payload,
    }
}

fn bench_sim_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_100k");

    // --- Steady-state pop+push latency at 100k live events ------------
    {
        let mut heap: BaselineHeap<u64> = BaselineHeap::new();
        let mut spread = Spread(0x5EED);
        for i in 0..LIVE {
            heap.push(SimTime(spread.next_delay()), i);
        }
        group.bench_function("pop_push_heap_100k", |b| {
            b.iter(|| {
                let (at, _, item) = heap.pop().expect("live");
                heap.push(SimTime(at.0 + spread.next_delay()), item);
                black_box(at.0)
            })
        });
    }
    {
        let mut q: EventQueue<Vec<u8>> = EventQueue::new();
        let tiny = Arc::new(Vec::new());
        let mut spread = Spread(0x5EED);
        for _ in 0..LIVE {
            q.push(SimTime(spread.next_delay()), deliver(tiny.clone()));
        }
        group.bench_function("pop_push_bucket_100k", |b| {
            b.iter(|| {
                let ev = q.pop().expect("live");
                q.push(SimTime(ev.at.0 + spread.next_delay()), ev.kind);
                black_box(ev.seq)
            })
        });
    }

    // --- Multicast event throughput: deep copies vs shared payloads ---
    // One send to 8 recipients of a replication-shaped message, then
    // the deliveries drain.  The seed scheduler stored the message by
    // value, so each recipient's event deep-cloned all 17 allocations;
    // the Arc path clones a pointer.  Both run on top of 100k
    // undisturbed live events so the scheduler works at the same depth.
    let payload = nested_msg();
    {
        let mut heap: BaselineHeap<NestedMsg> = BaselineHeap::new();
        let mut spread = Spread(0xF00D);
        for _ in 0..LIVE {
            heap.push(
                SimTime(10_000_000 + spread.next_far_delay()),
                NestedMsg::new(),
            );
        }
        let mut now = 0u64;
        group.bench_function("fanout8_deep_copy", |b| {
            b.iter(|| {
                now += 1;
                for lat in 0..8u64 {
                    heap.push(SimTime(now + lat), payload.clone());
                }
                let mut sum = 0usize;
                for _ in 0..8 {
                    sum += heap.pop().expect("live").2.len();
                }
                black_box(sum)
            })
        });
    }
    {
        let mut q: EventQueue<NestedMsg> = EventQueue::new();
        let mut spread = Spread(0xF00D);
        let far = Arc::new(NestedMsg::new());
        for _ in 0..LIVE {
            q.push(
                SimTime(10_000_000 + spread.next_far_delay()),
                deliver(far.clone()),
            );
        }
        let shared = Arc::new(payload.clone());
        let mut now = 0u64;
        group.bench_function("fanout8_arc_shared", |b| {
            b.iter(|| {
                now += 1;
                for lat in 0..8u64 {
                    q.push(SimTime(now + lat), deliver(shared.clone()));
                }
                let mut sum = 0usize;
                for _ in 0..8 {
                    let ev = q.pop().expect("live");
                    if let EventKind::Deliver { msg, .. } = ev.kind {
                        sum += msg.len();
                    }
                }
                black_box(sum)
            })
        });
    }

    // --- Resident-set proxy: slab reuse under fill-then-drain ---------
    // 100k pushes followed by a full drain; the slab's slot count (the
    // `sim_queue_slots` telemetry) stays at the 100k high-water mark no
    // matter how many times the cycle repeats.
    {
        let tiny = Arc::new(Vec::new());
        group.bench_function("rss_proxy_slab_drain", |b| {
            b.iter(|| {
                let mut q: EventQueue<Vec<u8>> = EventQueue::new();
                let mut spread = Spread(0xBEEF);
                for _ in 0..LIVE {
                    q.push(SimTime(spread.next_delay()), deliver(tiny.clone()));
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                assert_eq!(q.depth_stats().slots as u64, LIVE);
                black_box(n)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sim_100k);
criterion_main!(benches);
