//! Criterion benchmarks for the query engine: the relative cost of the
//! paper's read shapes (point reads vs. "very complex" aggregations and
//! greps) on the standard dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::dataset::DatasetSpec;
use sdr_store::{execute, Aggregate, CmpOp, Predicate, Query};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let db = DatasetSpec::default().build();

    let cases: Vec<(&str, Query)> = vec![
        (
            "get_row",
            Query::GetRow {
                table: "products".into(),
                key: 250,
            },
        ),
        (
            "range_25",
            Query::Range {
                table: "products".into(),
                low: 100,
                high: 125,
                limit: None,
            },
        ),
        (
            "filter_indexed",
            Query::Filter {
                table: "products".into(),
                predicate: Predicate::eq("category", "tools"),
                projection: None,
                limit: None,
            },
        ),
        (
            "filter_scan",
            Query::Filter {
                table: "products".into(),
                predicate: Predicate::cmp("price", CmpOp::Ge, 500i64),
                projection: None,
                limit: None,
            },
        ),
        (
            "aggregate_group_by",
            Query::Aggregate {
                table: "products".into(),
                predicate: Predicate::True,
                agg: Aggregate::Avg("price".into()),
                group_by: Some("category".into()),
            },
        ),
        (
            "join_products_reviews",
            Query::Join {
                left: "products".into(),
                right: "reviews".into(),
                left_field: "id".into(),
                right_field: "product_id".into(),
                predicate: Predicate::cmp("r.stars", CmpOp::Ge, 4i64),
                limit: None,
            },
        ),
        (
            "grep_docs",
            Query::Grep {
                pattern: "error".into(),
                prefix: "/docs".into(),
            },
        ),
        (
            "read_file",
            Query::ReadFile {
                path: "/docs/file-000.log".into(),
            },
        ),
    ];

    let mut group = c.benchmark_group("query");
    for (name, query) in cases {
        group.bench_function(name, |b| {
            b.iter(|| black_box(execute(&db, &query).expect("query ok")))
        });
    }
    group.finish();
}

fn bench_state_digest(c: &mut Criterion) {
    let db = DatasetSpec::default().build();
    c.bench_function("state_digest", |b| b.iter(|| black_box(db.state_digest())));
}

criterion_group!(benches, bench_queries, bench_state_digest);
criterion_main!(benches);
