//! Criterion benchmarks for the query engine and the persistent store:
//! the relative cost of the paper's read shapes (point reads vs. "very
//! complex" aggregations and greps) on the standard dataset, plus the
//! copy-on-write hot paths (snapshot, clone, incremental digest) on a
//! production-scale 10k-row dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::dataset::DatasetSpec;
use sdr_core::StateDigestStamp;
use sdr_crypto::{Digest, MssSigner, Sha256, Signer};
use sdr_sim::{NodeId, SimTime};
use sdr_store::{
    execute, Aggregate, CmpOp, Database, Document, LruByteCache, Predicate, Query, QueryCache,
    SnapshotStore, StateProof, UpdateOp,
};
use std::hint::black_box;
use std::sync::Arc;

fn bench_queries(c: &mut Criterion) {
    let db = DatasetSpec::default().build();

    let cases: Vec<(&str, Query)> = vec![
        (
            "get_row",
            Query::GetRow {
                table: "products".into(),
                key: 250,
            },
        ),
        (
            "range_25",
            Query::Range {
                table: "products".into(),
                low: 100,
                high: 125,
                limit: None,
            },
        ),
        (
            "filter_indexed",
            Query::Filter {
                table: "products".into(),
                predicate: Predicate::eq("category", "tools"),
                projection: None,
                limit: None,
            },
        ),
        (
            "filter_scan",
            Query::Filter {
                table: "products".into(),
                predicate: Predicate::cmp("price", CmpOp::Ge, 500i64),
                projection: None,
                limit: None,
            },
        ),
        (
            "aggregate_group_by",
            Query::Aggregate {
                table: "products".into(),
                predicate: Predicate::True,
                agg: Aggregate::Avg("price".into()),
                group_by: Some("category".into()),
            },
        ),
        (
            "join_products_reviews",
            Query::Join {
                left: "products".into(),
                right: "reviews".into(),
                left_field: "id".into(),
                right_field: "product_id".into(),
                predicate: Predicate::cmp("r.stars", CmpOp::Ge, 4i64),
                limit: None,
            },
        ),
        (
            "grep_docs",
            Query::Grep {
                pattern: "error".into(),
                prefix: "/docs".into(),
            },
        ),
        (
            "read_file",
            Query::ReadFile {
                path: "/docs/file-000.log".into(),
            },
        ),
    ];

    let mut group = c.benchmark_group("query");
    for (name, query) in cases {
        group.bench_function(name, |b| {
            b.iter(|| black_box(execute(&db, &query).expect("query ok")))
        });
    }
    group.finish();
}

fn bench_state_digest(c: &mut Criterion) {
    let db = DatasetSpec::default().build();
    c.bench_function("state_digest", |b| b.iter(|| black_box(db.state_digest())));
}

/// A production-scale dataset (10k products, 10k reviews) that the
/// pre-COW store could not run: every write deep-cloned and every digest
/// re-encoded all of it.
fn large_dataset() -> Database {
    DatasetSpec {
        n_products: 10_000,
        n_reviews: 10_000,
        n_files: 100,
        lines_per_file: 20,
        shared_block_lines: 0,
        hot_fraction: 0.01,
        skew: 0.0,
        seed: 42,
    }
    .build()
}

fn point_write(i: u64) -> Vec<UpdateOp> {
    vec![UpdateOp::Update {
        table: "products".into(),
        key: 1 + (i * 7919) % 10_000,
        changes: Document::new().with("price", (i % 997) as i64),
    }]
}

/// The pre-refactor digest cost: linearly re-encode the whole state and
/// hash it (what `state_digest` did before subtree hashes were cached).
fn full_rescan_digest(db: &Database) -> sdr_crypto::Hash256 {
    let mut buf = Vec::with_capacity(1 << 20);
    buf.extend_from_slice(b"sdr/state/v1");
    buf.extend_from_slice(&db.version().to_be_bytes());
    let mut names: Vec<&str> = db.table_names().collect();
    names.sort_unstable();
    for name in names {
        db.table(name).expect("listed").encode_into(&mut buf);
    }
    db.fs().encode_into(&mut buf);
    Sha256::digest(&buf)
}

fn bench_cow_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_10k");
    let mut db = large_dataset();

    // The headline pair: repeated digests after single-row writes.  The
    // incremental path re-hashes O(log n) cached nodes; the rescan path
    // re-encodes all ~20k rows — the acceptance target is >= 10x between
    // them.
    let mut i = 0u64;
    group.bench_function("state_digest_after_point_write", |b| {
        b.iter(|| {
            i += 1;
            db.apply_write(&point_write(i)).expect("applies");
            black_box(db.state_digest())
        })
    });
    group.bench_function("full_rescan_digest_after_point_write", |b| {
        b.iter(|| {
            i += 1;
            db.apply_write(&point_write(i)).expect("applies");
            black_box(full_rescan_digest(&db))
        })
    });

    // Snapshot retention and cloning are O(1) handle copies.
    let mut snaps = SnapshotStore::new(4);
    group.bench_function("snapshot_record", |b| {
        b.iter(|| {
            snaps.record(black_box(&db));
        })
    });
    group.bench_function("db_clone", |b| b.iter(|| black_box(db.clone())));

    // A write while snapshots are live: path-copying, not deep-copying.
    let retained = db.clone();
    group.bench_function("point_write_with_live_snapshot", |b| {
        b.iter(|| {
            i += 1;
            db.apply_write(&point_write(i)).expect("applies");
        })
    });
    drop(retained);
    group.finish();
}

/// Authenticated point reads on the 10k-row catalogue: proof generation
/// must reuse the cached subtree hashes (O(log n), microseconds — no
/// full-tree re-hash on the hot path) and verification must fold the
/// same O(log n) path at the client.
fn bench_proofs(c: &mut Criterion) {
    let mut group = c.benchmark_group("proof_10k");
    let db = large_dataset();
    let digest = db.state_digest(); // Warm the subtree-hash caches once.
    let version = db.version();

    let mut k = 0u64;
    group.bench_function("prove_row", |b| {
        b.iter(|| {
            k += 1;
            black_box(db.prove_row("products", 1 + (k * 7919) % 10_000).expect("table"))
        })
    });
    group.bench_function("prove_row_absent", |b| {
        b.iter(|| black_box(db.prove_row("products", 5_000_000).expect("table")))
    });
    group.bench_function("prove_file", |b| {
        b.iter(|| black_box(db.prove_file("/docs/file-042.log")))
    });

    let query = Query::GetRow {
        table: "products".into(),
        key: 4_242,
    };
    let (result, _) = execute(&db, &query).expect("row");
    let proof = db.prove_row("products", 4_242).expect("table");
    group.bench_function("verify_row", |b| {
        b.iter(|| {
            proof
                .verify_result(black_box(&digest), version, &query, &result)
                .expect("verifies")
        })
    });

    // The strawman this path replaces: re-hashing the whole state to
    // check one row (what a client would do with only a signed digest
    // and the raw content).
    group.bench_function("full_state_digest_rebuild", |b| {
        b.iter(|| black_box(full_rescan_digest(&db)))
    });
    group.finish();
}

/// The flash-crowd hot path: the first verified read of a key pays
/// proof generation at the slave plus a real (MSS) digest-stamp
/// signature check and an O(log n) Merkle-path fold at the client.
/// Every repeat read of the same key under the same anchor hits the
/// slave's reply cache (hash the key, probe the LRU) and the client's
/// stamp cache (hash the stamp, probe the LRU), leaving only the
/// per-reply path fold — the acceptance target is >= 5x between them.
fn bench_hot_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_read");
    let db = large_dataset();
    let digest = db.state_digest(); // Warm the subtree-hash caches once.
    let version = db.version();

    // A real hash-based master signature, so the first read pays the
    // verification cost the protocol actually charges for.
    let mut signer = MssSigner::generate([7; 32], 6).expect("keygen");
    let master_key = signer.public_key();
    let stamp = StateDigestStamp::build(version, digest, SimTime::ZERO, NodeId(0), &mut signer)
        .expect("stamp signs");

    let query = Query::GetRow {
        table: "products".into(),
        key: 4_242,
    };
    let (result, _) = execute(&db, &query).expect("row");

    group.bench_function("first_verified_read", |b| {
        b.iter(|| {
            let proof = db.prove_row("products", 4_242).expect("table");
            stamp.verify(black_box(&master_key)).expect("stamp ok");
            proof
                .verify_result(&stamp.digest, stamp.version, &query, &result)
                .expect("verifies")
        })
    });

    // Warm both sides' caches the way the protocol does: the slave
    // memoizes the assembled reply, the client memoizes the verified
    // stamp digest.
    let reply_key = Sha256::digest_parts(&[
        b"sdr/proof-reply/v1",
        &version.to_be_bytes(),
        QueryCache::key(version, &query).as_ref(),
    ]);
    let proof = db.prove_row("products", 4_242).expect("table");
    let mut reply_cache: LruByteCache<Arc<(Query, StateProof)>> = LruByteCache::new(1 << 20);
    reply_cache.put(reply_key, Arc::new((query.clone(), proof)), 1 << 10);
    let stamp_key = Sha256::digest_parts(&[
        b"sdr/stamp-cache/v1",
        &master_key.encode(),
        &stamp.signing_bytes(),
    ]);
    let mut stamp_cache: LruByteCache<()> = LruByteCache::new(64);
    stamp_cache.put(stamp_key, (), 1);

    group.bench_function("repeat_cached_read", |b| {
        b.iter(|| {
            let cached = reply_cache.get(&reply_key).expect("hot key").clone();
            assert!(stamp_cache.get(&stamp_key).is_some());
            cached
                .1
                .verify_result(black_box(&stamp.digest), stamp.version, &cached.0, &result)
                .expect("verifies")
        })
    });
    group.finish();
}

/// The chunked content store on a 10k-line file (~400 KB): appending a
/// line re-chunks only the tail chunk and re-hashes the O(log n)
/// manifest path, while the strawman it replaces rewrites (re-chunks and
/// re-hashes) the whole file — the acceptance target is >= 10x between
/// them.  The dedup write shows a byte-identical copy costing only
/// chunk hashing and refcount bumps, never a second stored copy.
fn bench_chunks(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_10k");

    let mut contents = String::with_capacity(400_000);
    for l in 0..10_000 {
        contents.push_str(&format!("media segment {l:05} payload=0123456789abcdef\n"));
    }
    let mut db = Database::new();
    db.apply_write(&[UpdateOp::WriteFile {
        path: "/media/big.bin".into(),
        contents: contents.clone(),
    }])
    .expect("seed file");

    let mut i = 0u64;
    group.bench_function("append_line_chunked", |b| {
        b.iter(|| {
            i += 1;
            let mut d = db.clone(); // O(1) COW handle copy.
            d.apply_write(&[UpdateOp::AppendFile {
                path: "/media/big.bin".into(),
                contents: format!("appended line {i}\n"),
            }])
            .expect("append applies");
            black_box(d)
        })
    });
    group.bench_function("whole_file_rewrite", |b| {
        b.iter(|| {
            i += 1;
            let mut d = db.clone();
            let rewritten = format!("{contents}appended line {i}\n");
            d.apply_write(&[UpdateOp::WriteFile {
                path: "/media/big.bin".into(),
                contents: rewritten,
            }])
            .expect("rewrite applies");
            black_box(d)
        })
    });
    group.bench_function("dedup_write_identical_copy", |b| {
        b.iter(|| {
            let mut d = db.clone();
            d.apply_write(&[UpdateOp::WriteFile {
                path: "/media/copy.bin".into(),
                contents: contents.clone(),
            }])
            .expect("copy applies");
            black_box(d)
        })
    });
    group.finish();
}

/// Verified range reads on the 10k-row dataset: one O(log n + k) range
/// proof for a 256-row page vs the strawman of 256 point proofs, and
/// the manifest-slice stream header vs shipping the whole chunk table
/// of a 1 MiB file.
fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_10k");
    let db = large_dataset();
    let digest = db.state_digest(); // Warm the subtree-hash caches once.
    let version = db.version();
    let (start, end) = (4_000u64, 4_256u64);
    let query = Query::ScanRange {
        table: "products".into(),
        start,
        end,
    };
    let (result, _) = execute(&db, &query).expect("scan");
    let range_proof = db.prove_scan("products", start, end).expect("table");
    let point_proofs: Vec<_> = (start..end)
        .map(|k| {
            let q = Query::GetRow {
                table: "products".into(),
                key: k,
            };
            let (r, _) = execute(&db, &q).expect("row");
            (q, r, db.prove_row("products", k).expect("table"))
        })
        .collect();

    // The headline wire saving: one log-depth skeleton amortised over
    // the whole page vs 256 full paths.  Enforced here so a regression
    // fails the bench run instead of silently drifting in
    // BENCH_store.json.
    let range_bytes = range_proof.wire_len();
    let point_bytes: usize = point_proofs.iter().map(|(_, _, p)| p.wire_len()).sum();
    assert!(
        range_bytes * 5 <= point_bytes,
        "range proof must be >= 5x smaller on the wire: {range_bytes} vs {point_bytes}"
    );

    group.bench_function("prove_scan_256", |b| {
        b.iter(|| black_box(db.prove_scan("products", start, end).expect("table")))
    });
    group.bench_function("verify_scan_256", |b| {
        b.iter(|| {
            range_proof
                .verify_result(black_box(&digest), version, &query, &result)
                .expect("verifies")
        })
    });
    group.bench_function("verify_256_point_proofs", |b| {
        b.iter(|| {
            for (q, r, p) in &point_proofs {
                p.verify_result(black_box(&digest), version, q, r).expect("verifies")
            }
        })
    });

    // Manifest slice vs whole chunk table on a 1 MiB file: the stream
    // header for a 4 KiB read ships only the covering chunk entries.
    let mut media = Database::new();
    let line = "0123456789abcdef".repeat(4);
    let contents: String = (0..16_384).map(|i| format!("{line}{i:06}\n")).collect();
    assert!(contents.len() > 1 << 20, "media file must exceed 1 MiB");
    media
        .apply_write(&[UpdateOp::WriteFile {
            path: "/media/big.bin".into(),
            contents,
        }])
        .expect("write applies");
    group.bench_function("slice_header_1mib", |b| {
        b.iter(|| black_box(media.prove_stream("/media/big.bin", 512 * 1024, 4_096)))
    });
    group.bench_function("whole_manifest_header_1mib", |b| {
        b.iter(|| black_box(media.prove_stream("/media/big.bin", 0, u64::MAX)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queries,
    bench_state_digest,
    bench_cow_store,
    bench_proofs,
    bench_hot_read,
    bench_chunks,
    bench_range
);
criterion_main!(benches);
