//! Runs every experiment binary's headline configuration in sequence.
//!
//! A smoke-test driver for the full E1..E12 suite; each experiment's
//! dedicated binary prints richer sweeps.  CLI flags (`--json`,
//! `--seeds`, `--duration`) are forwarded to every child.
//!
//! With `--json`, each child's stdout is parsed and validated as a
//! [`RunReport`]-shaped document (any child emitting unparseable or
//! unrecognisable output fails the whole run — this is the report-schema
//! regression gate CI relies on), and the combined output is one JSON
//! array of the reports.  The `sharded_commit`, `batched_commit`,
//! `cdn_media`, `churn_100k`, `flash_crowd`, and `range_scan` scenarios
//! have no dedicated binaries, so they run in-process here and their
//! reports
//! are validated (and, with `--json`, emitted) exactly like the
//! children's.

use sdr_bench::BenchCli;
use sdr_core::scenario::{registry, Runner};
use serde::json::Value;
use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "e1_detection",
    "e2_audit",
    "e3_freshness",
    "e4_writes",
    "e5_master_load",
    "e6_comparison",
    "e7_auditor",
    "e8_greedy",
    "e9_quorum_reads",
    "e10_levels",
    "e11_crypto",
    "e12_failover",
];

/// Checks that a parsed document looks like a `RunReport` (or an array
/// of them, as `e3_freshness --json` emits).
fn validate_report(v: &Value) -> Result<(), String> {
    match v {
        Value::Array(items) => {
            for item in items {
                validate_report(item)?;
            }
            Ok(())
        }
        Value::Object(o) => {
            for key in ["scenario", "cells"] {
                if o.get(key).is_none() {
                    return Err(format!("report object lacks `{key}`"));
                }
            }
            Ok(())
        }
        _ => Err("expected a report object or array".into()),
    }
}

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let json = forwarded.iter().any(|a| a == "--json");

    // Re-exec sibling binaries so one command regenerates everything.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    let mut reports = Vec::new();
    for exe in EXPERIMENTS {
        if !json {
            println!("\n================ {exe} ================");
        }
        let path = dir.join(exe);
        let mut cmd = Command::new(&path);
        cmd.args(&forwarded);
        if json {
            match cmd.output() {
                Ok(out) if out.status.success() => {
                    let stdout = String::from_utf8_lossy(&out.stdout);
                    match Value::parse(stdout.trim()) {
                        Ok(v) => match validate_report(&v) {
                            Ok(()) => reports.push(v),
                            Err(e) => {
                                eprintln!("{exe}: schema check failed: {e}");
                                failures.push(exe);
                            }
                        },
                        Err(e) => {
                            eprintln!("{exe}: output is not valid JSON: {e}");
                            eprint!("{}", String::from_utf8_lossy(&out.stderr));
                            failures.push(exe);
                        }
                    }
                }
                Ok(out) => {
                    eprintln!("{exe} exited with {}", out.status);
                    eprint!("{}", String::from_utf8_lossy(&out.stderr));
                    failures.push(exe);
                }
                Err(e) => {
                    eprintln!(
                        "could not run {}: {e} (build with `cargo build --release -p sdr-bench --bins` first)",
                        path.display()
                    );
                    failures.push(exe);
                }
            }
        } else {
            match cmd.status() {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("{exe} exited with {s}");
                    failures.push(exe);
                }
                Err(e) => {
                    eprintln!(
                        "could not run {}: {e} (build with `cargo build --release -p sdr-bench --bins` first)",
                        path.display()
                    );
                    failures.push(exe);
                }
            }
        }
    }

    // The commit-throughput sweeps (no dedicated binaries): run them
    // in-process with the same CLI overrides and hold their reports to
    // the same schema gate as every child's.
    let cli = BenchCli::from_args(forwarded.iter().cloned());
    for (scenario, coord) in [
        ("sharded_commit", "shards"),
        ("batched_commit", "batch"),
        ("cdn_media", "shared lines"),
        ("churn_100k", ""),
        ("flash_crowd", "skew"),
        ("range_scan", "scan rows"),
    ] {
        if !json {
            println!("\n================ {scenario} ================");
        }
        let mut spec = registry::lookup(scenario).expect("registered scenario");
        cli.apply(&mut spec);
        match Runner::new(spec).run() {
            Ok(report) => {
                let text = report.to_json_string();
                match Value::parse(&text).map_err(|e| e.to_string()).and_then(|v| {
                    validate_report(&v)?;
                    Ok(v)
                }) {
                    Ok(v) => {
                        if json {
                            reports.push(v);
                        } else {
                            for cell in &report.cells {
                                let x = cell.coord(coord).unwrap_or(1.0);
                                if scenario == "churn_100k" {
                                    println!(
                                        "clients churning: joins={:.0} leaves={:.0} \
                                         reads accepted (mean) = {:.0} \
                                         queue peak = {:.0} sharing = {:.2}x",
                                        cell.mean("churn_joins"),
                                        cell.mean("churn_leaves"),
                                        cell.mean("reads_accepted"),
                                        cell.mean("sim_queue_peak"),
                                        cell.mean("msg_sharing_ratio"),
                                    );
                                } else if scenario == "flash_crowd" {
                                    println!(
                                        "{coord}={x:<5} proof_cache_hit_rate={:.3} \
                                         stamp hits={:.0} wrong accepts={:.0}",
                                        cell.mean("proof_cache_hit_rate"),
                                        cell.mean("stamp_cache_hits"),
                                        cell.mean("wrong_accepted"),
                                    );
                                } else if scenario == "range_scan" {
                                    println!(
                                        "{coord}={x:<4} rows_verified={:.0} \
                                         range proof bytes (mean) = {:.0} \
                                         wrong accepts={:.0}",
                                        cell.mean("range_rows_verified"),
                                        cell.mean("range_proof_bytes"),
                                        cell.mean("wrong_accepted"),
                                    );
                                } else if scenario == "cdn_media" {
                                    println!(
                                        "{coord}={x:<5} dedup_ratio={:.3} streams accepted (mean) = {:.1}",
                                        cell.mean("chunk_dedup_ratio"),
                                        cell.mean("stream_reads_accepted")
                                    );
                                } else {
                                    println!(
                                        "{coord}={x:<2} committed writes (mean over seeds) = {:.1}",
                                        cell.mean("writes_committed")
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("{scenario}: schema check failed: {e}");
                        failures.push(scenario);
                    }
                }
            }
            Err(e) => {
                eprintln!("{scenario} failed to run: {e}");
                failures.push(scenario);
            }
        }
    }

    if json {
        println!("{}", Value::Array(reports).render());
    }
    if failures.is_empty() {
        if !json {
            println!("\nall experiments completed.");
        }
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
