//! Runs every experiment binary's headline configuration in sequence.
//!
//! A smoke-test driver for the full E1..E12 suite; each experiment's
//! dedicated binary prints richer sweeps.  See DESIGN.md for the index and
//! EXPERIMENTS.md for the recorded results.

use std::process::Command;

fn main() {
    let exes = [
        "e1_detection",
        "e2_audit",
        "e3_freshness",
        "e4_writes",
        "e5_master_load",
        "e6_comparison",
        "e7_auditor",
        "e8_greedy",
        "e9_quorum_reads",
        "e10_levels",
        "e11_crypto",
        "e12_failover",
    ];
    // Re-exec sibling binaries so one command regenerates everything.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for exe in exes {
        println!("\n================ {exe} ================");
        let path = dir.join(exe);
        match Command::new(&path).status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exe} exited with {s}");
                failures.push(exe);
            }
            Err(e) => {
                eprintln!("could not run {}: {e} (build with `cargo build --release -p sdr-bench --bins` first)", path.display());
                failures.push(exe);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed.");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
