//! E10 — Security-sensitive reads on trusted hosts (paper §4).
//!
//! Claim: letting clients mark reads "security sensitive" and executing
//! those only on trusted servers "provide[s] 100% correctness guarantees
//! for sensitive operations, at the expense of putting extra load on the
//! trusted components."

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();

    for &sf in &fractions {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 10,
            sensitive_fraction: sf,
            double_check_prob: 0.0,
            audit_fraction: 0.0, // Expose raw lie acceptance on the normal path.
            seed: 101,
            ..SystemConfig::default()
        };
        let mut behaviors = vec![SlaveBehavior::Honest; 4];
        behaviors[0] = SlaveBehavior::ConsistentLiar {
            prob: 0.25,
            collude: false,
        };
        let workload = Workload {
            reads_per_sec: 8.0,
            writes_per_sec: 0.0,
            ..Workload::default()
        };
        let mut sys = run_system(cfg, behaviors, workload, SimDuration::from_secs(60));
        let stats = sys.stats();

        let nm = stats.master_utilisation.len();
        let serving: f64 =
            stats.master_utilisation[..nm - 1].iter().sum::<f64>() / (nm - 1) as f64;
        let wrong_rate = stats.wrong_accept_rate();
        rows.push(vec![
            f(sf, 2),
            stats.reads_sensitive.to_string(),
            stats.wrong_accepted.to_string(),
            f(wrong_rate * 100.0, 2),
            f(serving * 100.0, 2),
        ]);
    }

    print_table(
        "E10: sensitive-read fraction vs correctness and trusted load (one liar, checks disabled)",
        &[
            "sensitive fraction",
            "sensitive reads",
            "wrong accepted",
            "wrong rate (%)",
            "serving-master CPU (%)",
        ],
        &rows,
    );
    note("wrong answers come only from the normal (slave) path: at fraction 1.0 every read runs on trusted hardware and the wrong rate is exactly 0, with master CPU scaling up accordingly.");
}
