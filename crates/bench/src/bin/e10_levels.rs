//! E10 — Security-sensitive reads on trusted hosts (paper §4).
//!
//! Claim: letting clients mark reads "security sensitive" and executing
//! those only on trusted servers "provide[s] 100% correctness guarantees
//! for sensitive operations, at the expense of putting extra load on the
//! trusted components."
//!
//! The `e10_levels` scenario sweeps the sensitive fraction with one liar
//! and both checking mechanisms disabled, exposing the normal path's raw
//! lie acceptance.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col, Stat};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e10_levels");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let n = cell.runs.len().max(1) as f64;
        let mut serving = 0.0;
        for r in &cell.runs {
            let util = &r.stats.master_utilisation;
            let nm = util.len();
            serving += util[..nm - 1].iter().sum::<f64>() / (nm - 1) as f64;
        }
        cell.push_metric("serving_cpu_pct", serving / n * 100.0);
        cell.push_metric("wrong_rate_pct", cell.mean("wrong_accept_rate") * 100.0);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E10: sensitive-read fraction vs correctness and trusted load (one liar, checks disabled)",
            r,
            &[
                Col::Coord {
                    axis: "sensitive fraction",
                    header: "sensitive fraction",
                    prec: 2,
                },
                Col::Field {
                    field: "reads_sensitive",
                    stat: Stat::Mean,
                    header: "sensitive reads",
                    prec: 0,
                },
                Col::Field {
                    field: "wrong_accepted",
                    stat: Stat::Mean,
                    header: "wrong accepted",
                    prec: 0,
                },
                Col::Metric { name: "wrong_rate_pct", header: "wrong rate (%)", prec: 2 },
                Col::Metric { name: "serving_cpu_pct", header: "serving-master CPU (%)", prec: 2 },
            ],
        );
        note("wrong answers come only from the normal (slave) path: at fraction 1.0 every read runs on trusted hardware and the wrong rate is exactly 0, with master CPU scaling up accordingly.");
    });
}
