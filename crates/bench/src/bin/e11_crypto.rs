//! E11 — Crypto cost asymmetry underpinning the design (paper §3.2, §3.4).
//!
//! Claims: pledges are cheap to verify but expensive to produce (slaves
//! sign one per read; the auditor signs nothing), and hashing the result
//! is the client's main verification cost.  This binary wall-clock-times
//! the real primitives and checks the cost-model ratios used by the
//! simulator (criterion benches in `benches/` give the rigorous numbers).
//!
//! No simulation runs; each timed operation becomes one [`RunReport`]
//! cell so `--json` emits the measurements machine-readably.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::config::HashAlgo;
use sdr_core::messages::VersionStamp;
use sdr_core::pledge::{Pledge, ResultHash};
use sdr_core::scenario::{CellReport, RunReport};
use sdr_crypto::{Digest, HmacSigner, MssKeypair, Sha1, Sha256, Signer, WotsKeypair};
use sdr_sim::{NodeId, SimTime};
use sdr_store::{Query, QueryResult, Value};
use std::time::Instant;

fn time_us<F: FnMut()>(iters: u32, mut body: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn main() {
    let cli = BenchCli::parse();
    let spec = must_lookup("e11_crypto");
    let mut report = RunReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        duration_secs: 0.0,
        seeds: vec![spec.config.seed],
        cells: Vec::new(),
    };
    let mut add = |label: &str, us: f64| {
        let mut cell = CellReport {
            label: label.to_string(),
            ..CellReport::default()
        };
        cell.push_metric("us_per_op", us);
        report.cells.push(cell);
    };

    let data_1k = vec![0xabu8; 1024];
    let data_64k = vec![0xcdu8; 65536];

    let sha1_1k = time_us(2000, || {
        std::hint::black_box(Sha1::digest(&data_1k));
    });
    let sha256_1k = time_us(2000, || {
        std::hint::black_box(Sha256::digest(&data_1k));
    });
    let sha256_64k = time_us(200, || {
        std::hint::black_box(Sha256::digest(&data_64k));
    });
    add("SHA-1 1 KiB", sha1_1k);
    add("SHA-256 1 KiB", sha256_1k);
    add("SHA-256 64 KiB", sha256_64k);

    // WOTS one-time signatures.
    let wots_keygen = time_us(50, || {
        std::hint::black_box(WotsKeypair::from_seed(&[7u8; 32]));
    });
    let kp = WotsKeypair::from_seed(&[7u8; 32]);
    let sig = kp.sign_unchecked(b"message");
    let wots_sign = time_us(100, || {
        std::hint::black_box(kp.sign_unchecked(b"message"));
    });
    let pk = kp.public_key();
    let wots_verify = time_us(100, || {
        WotsKeypair::verify(&pk, b"message", &sig).expect("valid");
    });
    add("WOTS keygen", wots_keygen);
    add("WOTS sign", wots_sign);
    add("WOTS verify", wots_verify);

    // MSS (height 8 = 256 signatures).
    let mss_keygen = time_us(3, || {
        std::hint::black_box(MssKeypair::generate([9u8; 32], 8).expect("keygen"));
    });
    let mut mss = MssKeypair::generate([9u8; 32], 8).expect("keygen");
    let mpk = mss.public_key();
    let msig = mss.sign(b"message").expect("capacity");
    let mss_sign = time_us(100, || {
        let mut k = mss.clone();
        std::hint::black_box(k.sign(b"message").expect("capacity"));
    });
    let mss_verify = time_us(100, || {
        MssKeypair::verify(&mpk, b"message", &msig).expect("valid");
    });
    add("MSS keygen (h=8)", mss_keygen);
    add("MSS sign", mss_sign);
    add("MSS verify", mss_verify);

    // Pledge build/verify with the HMAC signer scheme.
    let mut master = HmacSigner::from_seed_label(1, b"master");
    let stamp = VersionStamp::build(5, SimTime::from_millis(1), NodeId(0), &mut master)
        .expect("stamp");
    let result = QueryResult::Scalar(Value::Int(42));
    let query = Query::GetRow {
        table: "products".into(),
        key: 7,
    };
    let mut slave = HmacSigner::from_seed_label(2, b"slave");
    let pledge_build = time_us(1000, || {
        std::hint::black_box(
            Pledge::build(
                query.clone(),
                ResultHash::of(&result, HashAlgo::Sha1),
                stamp.clone(),
                NodeId(3),
                &mut slave,
            )
            .expect("pledge"),
        );
    });
    let pledge = Pledge::build(
        query.clone(),
        ResultHash::of(&result, HashAlgo::Sha1),
        stamp,
        NodeId(3),
        &mut slave,
    )
    .expect("pledge");
    let spk = slave.public_key();
    let pledge_verify = time_us(1000, || {
        pledge.verify_signature(&spk).expect("valid");
    });
    add("pledge build (HMAC signer)", pledge_build);
    add("pledge verify (HMAC signer)", pledge_verify);

    cli.emit(&report, |r| {
        print_report_table(
            "E11: measured crypto costs (wall clock)",
            r,
            &[
                Col::Label("operation"),
                Col::Metric { name: "us_per_op", header: "us/op", prec: 2 },
            ],
        );
        let ratio = mss_sign / sha256_1k.max(0.001);
        note(&format!(
            "MSS sign is {ratio:.0}x a 1 KiB hash — the sign >> verify >> hash shape the cost model encodes (sign=2500us vs hash_per_kib=4us at paper-era RSA scale)."
        ));
        note("the auditor never signs: per checked pledge it saves one full sign (the single most expensive operation above).");
    });
}
