//! E12 — Master crash: slave-set division and client re-setup (paper §3).
//!
//! Claim: "the masters also periodically broadcast their slave list to the
//! master set, so in the event of a master crash, the remaining ones will
//! divide its slave set.  This also entails that all the clients connected
//! to the crashed server will have to go through the setup process again."
//!
//! The `e12_failover` scenario sweeps which master dies (the sequencer or
//! a mid-rank master) with a checkpoint just before the crash; a probe
//! counts survivor-owned slaves after the run.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e12_failover");
    cli.apply(&mut spec);
    let n_masters = spec.config.n_masters;
    let n_slaves = spec.config.n_slaves;

    let report = Runner::new(spec)
        .probe(move |sys, record| {
            // Ownership after the crash: every slave should sit with a
            // surviving master.
            let mut survivor_slaves = 0usize;
            for rank in 0..n_masters {
                if !sys.world.is_crashed(sys.masters[rank]) {
                    survivor_slaves += sys.with_master(rank, |m| m.slaves().len());
                }
            }
            // A one-point series carries the probe's finding into the
            // record (and therefore into the JSON report).
            record.series.push(sdr_core::scenario::NamedSeries {
                name: "survivor_slaves".into(),
                points: vec![(0.0, survivor_slaves as f64)],
            });
        })
        .run()
        .expect("scenario runs");
    let mut report = report;

    for cell in &mut report.cells {
        let rank = cell.coord("crashed rank").unwrap_or(0.0) as usize;
        cell.label = if rank == 0 {
            "sequencer (rank 0)".into()
        } else {
            format!("mid master (rank {rank})")
        };
        let n = cell.runs.len().max(1) as f64;
        let mut survivors = 0.0;
        let mut re_setups = 0.0;
        let mut accept_pct = 0.0;
        let mut writes_after = 0.0;
        let mut failed_after = 0.0;
        for r in &cell.runs {
            survivors += r.first_point("survivor_slaves").map_or(0.0, |(_, v)| v);
            re_setups += r.stats.per_client.iter().map(|c| c.re_setups).sum::<u64>() as f64;
            // Post-crash deltas against the checkpoint taken at the
            // crash instant.
            let before = r.checkpoints.first().map(|c| &c.stats);
            let (bi, ba, bw, bf) = before.map_or((0, 0, 0, 0), |b| {
                (b.reads_issued, b.reads_accepted, b.writes_committed, b.reads_failed)
            });
            let reads_after = r.stats.reads_issued - bi;
            accept_pct +=
                (r.stats.reads_accepted - ba) as f64 / reads_after.max(1) as f64 * 100.0;
            writes_after += (r.stats.writes_committed - bw) as f64;
            failed_after += (r.stats.reads_failed - bf) as f64;
        }
        cell.push_annotation(
            "survivor_slaves",
            format!("{}/{n_slaves}", (survivors / n) as usize),
        );
        cell.push_metric("re_setups", re_setups / n);
        cell.push_metric("post_accept_pct", accept_pct / n);
        cell.push_metric("post_writes", writes_after / n);
        cell.push_metric("post_failed_reads", failed_after / n);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E12: master crash at t=20s (4 masters, 8 slaves, 12 clients; run to t=80s)",
            r,
            &[
                Col::Label("crashed master"),
                Col::Annot { name: "survivor_slaves", header: "slaves owned by survivors" },
                Col::Metric { name: "re_setups", header: "client re-setups", prec: 0 },
                Col::Metric { name: "post_accept_pct", header: "post-crash accept rate (%)", prec: 1 },
                Col::Metric { name: "post_writes", header: "post-crash writes", prec: 0 },
                Col::Metric { name: "post_failed_reads", header: "post-crash failed reads", prec: 0 },
            ],
        );
        note("all 8 slaves end up owned by survivors (deterministic division); clients of the dead master redo setup and service continues, including writes ordered by the new sequencer.");
    });
}
