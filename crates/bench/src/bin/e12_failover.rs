//! E12 — Master crash: slave-set division and client re-setup (paper §3).
//!
//! Claim: "the masters also periodically broadcast their slave list to the
//! master set, so in the event of a master crash, the remaining ones will
//! divide its slave set.  This also entails that all the clients connected
//! to the crashed server will have to go through the setup process again."

use sdr_bench::{f, note, print_table};
use sdr_core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimTime;

fn main() {
    let mut rows = Vec::new();

    for &(label, crash_rank) in &[("sequencer (rank 0)", 0usize), ("mid master (rank 1)", 1)] {
        let cfg = SystemConfig {
            n_masters: 4,
            n_slaves: 8,
            n_clients: 12,
            double_check_prob: 0.02,
            seed: 121,
            ..SystemConfig::default()
        };
        let workload = Workload {
            reads_per_sec: 6.0,
            writes_per_sec: 0.3,
            ..Workload::default()
        };
        let mut sys = SystemBuilder::new(cfg)
            .behaviors(vec![SlaveBehavior::Honest; 8])
            .workload(workload)
            .build();

        sys.crash_master_at(SimTime::from_secs(20), crash_rank);
        sys.run_until(SimTime::from_secs(20));
        let before = sys.stats();
        sys.run_until(SimTime::from_secs(80));
        let after = sys.stats();

        // Ownership after the crash.
        let mut survivor_slaves = 0usize;
        for r in 0..4 {
            if r != crash_rank {
                survivor_slaves += sys.with_master(r, |m| m.slaves().len());
            }
        }
        let re_setups: u64 = after.per_client.iter().map(|c| c.re_setups).sum();
        let reads_after = after.reads_issued - before.reads_issued;
        let accepted_after = after.reads_accepted - before.reads_accepted;
        let writes_after = after.writes_committed - before.writes_committed;

        rows.push(vec![
            label.to_string(),
            format!("{survivor_slaves}/8"),
            re_setups.to_string(),
            f(accepted_after as f64 / reads_after.max(1) as f64 * 100.0, 1),
            writes_after.to_string(),
            (after.reads_failed - before.reads_failed).to_string(),
        ]);
    }

    print_table(
        "E12: master crash at t=20s (4 masters, 8 slaves, 12 clients; run to t=80s)",
        &[
            "crashed master",
            "slaves owned by survivors",
            "client re-setups",
            "post-crash accept rate (%)",
            "post-crash writes",
            "post-crash failed reads",
        ],
        &rows,
    );
    note("all 8 slaves end up owned by survivors (deterministic division); clients of the dead master redo setup and service continues, including writes ordered by the new sequencer.");
}
