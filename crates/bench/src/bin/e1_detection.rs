//! E1 — Detection speed vs. double-check probability (paper §3.3).
//!
//! Claim: a client double-checks each read with probability `p`, so a slave
//! that always lies survives ~geometric(1/p) reads before being caught
//! "red-handed"; raising `p` buys faster detection at more master load.
//!
//! The `e1_detection` scenario sweeps `p` with one always-lying slave and
//! five seeds per point; this binary derives the catch statistics and
//! reports them alongside the geometric expectation 1/p.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col, Stat};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e1_detection");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let p = cell.coord("p").unwrap_or(0.0);
        let total = cell.runs.len();
        // (time of first exclusion, lies the liar got to tell) per caught run.
        let caught: Vec<(f64, f64)> = cell
            .runs
            .iter()
            .filter_map(|r| {
                r.first_point("exclusion.at_us")
                    .map(|(t, _)| (t, r.stats.lies_told as f64))
            })
            .collect();
        cell.push_metric("caught", caught.len() as f64);
        cell.push_metric("runs", total as f64);
        cell.push_metric("geometric", 1.0 / p);
        let n = caught.len() as f64;
        let (lies, time) = if caught.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (
                caught.iter().map(|&(_, l)| l).sum::<f64>() / n,
                caught.iter().map(|&(t, _)| t).sum::<f64>() / n,
            )
        };
        cell.push_metric("lies_before_exclusion", lies);
        cell.push_metric("time_to_exclusion_s", time);
        cell.push_annotation(
            "caught_ratio",
            format!("{}/{total}", caught.len()),
        );
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E1: detection speed vs double-check probability p (always-lying slave, audit off)",
            r,
            &[
                Col::Coord { axis: "p", header: "p", prec: 3 },
                Col::Annot { name: "caught_ratio", header: "caught" },
                Col::Metric {
                    name: "lies_before_exclusion",
                    header: "lies before exclusion",
                    prec: 1,
                },
                Col::Metric { name: "geometric", header: "geometric 1/p", prec: 1 },
                Col::Metric {
                    name: "time_to_exclusion_s",
                    header: "time to exclusion (s)",
                    prec: 1,
                },
                Col::Field {
                    field: "lies_told",
                    stat: Stat::Mean,
                    header: "lies told (avg)",
                    prec: 1,
                },
            ],
        );
        note("lies-before-exclusion should track 1/p: small p = slow immediate detection (paper relies on the audit as the backstop).");
    });
}
