//! E1 — Detection speed vs. double-check probability (paper §3.3).
//!
//! Claim: a client double-checks each read with probability `p`, so a slave
//! that always lies survives ~geometric(1/p) reads before being caught
//! "red-handed"; raising `p` buys faster detection at more master load.
//!
//! This binary sweeps `p`, plants one always-lying slave, and reports the
//! number of lies told before exclusion and the time to exclusion,
//! alongside the geometric expectation 1/p.

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let sweeps = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5];
    let mut rows = Vec::new();

    for (pi, &p) in sweeps.iter().enumerate() {
        // Average over a few seeds to smooth the geometric tail; seeds
        // differ per sweep point so coin draws are uncorrelated across
        // rows.
        let seeds = [
            1_000 + 7 * pi as u64,
            2_000 + 7 * pi as u64,
            3_000 + 7 * pi as u64,
            4_000 + 7 * pi as u64,
            5_000 + 7 * pi as u64,
        ];
        let mut lies_sum = 0.0;
        let mut time_sum = 0.0;
        let mut caught = 0u32;
        for &seed in &seeds {
            let cfg = SystemConfig {
                n_masters: 3,
                n_slaves: 4,
                n_clients: 8,
                double_check_prob: p,
                audit_fraction: 0.0, // Isolate the double-check mechanism.
                seed,
                ..SystemConfig::default()
            };
            let mut behaviors = vec![SlaveBehavior::Honest; 4];
            behaviors[0] = SlaveBehavior::ConsistentLiar {
                prob: 1.0,
                collude: false,
            };
            let workload = Workload {
                reads_per_sec: 8.0,
                writes_per_sec: 0.0,
                ..Workload::default()
            };
            let mut sys = run_system(cfg, behaviors, workload, SimDuration::from_secs(600));
            let stats = sys.stats();
            let excl_at = sys
                .world
                .metrics()
                .series("exclusion.at_us")
                .first()
                .map(|(t, _)| t.as_secs_f64());
            if let Some(t) = excl_at {
                caught += 1;
                time_sum += t;
                lies_sum += stats.lies_told as f64;
            }
        }
        let n = seeds.len() as f64;
        rows.push(vec![
            f(p, 3),
            format!("{caught}/{}", seeds.len()),
            if caught > 0 {
                f(lies_sum / f64::from(caught), 1)
            } else {
                "-".into()
            },
            f(1.0 / p, 1),
            if caught > 0 {
                f(time_sum / f64::from(caught), 1)
            } else {
                "-".into()
            },
        ]);
        let _ = n;
    }

    print_table(
        "E1: detection speed vs double-check probability p (always-lying slave, audit off)",
        &[
            "p",
            "caught",
            "lies before exclusion",
            "geometric 1/p",
            "time to exclusion (s)",
        ],
        &rows,
    );
    note("lies-before-exclusion should track 1/p: small p = slow immediate detection (paper relies on the audit as the backstop).");
}
