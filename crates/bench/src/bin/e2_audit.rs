//! E2 — Audit detection guarantee vs. sampled auditing (paper §3.4).
//!
//! Claim: with full auditing, *every* pledged read is re-executed, so the
//! first wrong answer a client accepts is caught as soon as its version's
//! bucket is audited — malicious slaves "will eventually be detected and
//! excluded" with certainty.  Auditing only a sampled fraction `f` weakens
//! that to per-lie detection probability `f`: in expectation `1/f` lies
//! slip through before the first catch, and corrective action fires that
//! much later.

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let fractions = [0.05, 0.1, 0.25, 0.5, 1.0];
    let seeds = [21u64, 22, 23, 24, 25];
    let mut rows = Vec::new();

    for &frac in &fractions {
        let mut slipped_sum = 0.0;
        let mut caught = 0u32;
        let mut detect_time_sum = 0.0;
        for &seed in &seeds {
            let cfg = SystemConfig {
                n_masters: 3,
                n_slaves: 4,
                n_clients: 8,
                double_check_prob: 0.0, // Audit is the only detector.
                audit_fraction: frac,
                seed,
                ..SystemConfig::default()
            };
            let mut behaviors = vec![SlaveBehavior::Honest; 4];
            behaviors[0] = SlaveBehavior::ConsistentLiar {
                prob: 1.0, // Every answer is a lie: slipped = accepted lies.
                collude: false,
            };
            let workload = Workload {
                reads_per_sec: 6.0,
                writes_per_sec: 0.1,
                ..Workload::default()
            };
            let mut sys = run_system(cfg, behaviors, workload, SimDuration::from_secs(240));
            let stats = sys.stats();
            if stats.exclusions >= 1 {
                caught += 1;
                slipped_sum += stats.wrong_accepted as f64;
                if let Some((t, _)) = sys.world.metrics().series("exclusion.at_us").first() {
                    detect_time_sum += t.as_secs_f64();
                }
            }
        }
        rows.push(vec![
            f(frac, 2),
            format!("{caught}/{}", seeds.len()),
            if caught > 0 {
                f(slipped_sum / f64::from(caught), 1)
            } else {
                "-".into()
            },
            f(1.0 / frac, 1),
            if caught > 0 {
                f(detect_time_sum / f64::from(caught), 1)
            } else {
                "-".into()
            },
        ]);
    }

    print_table(
        "E2: lies accepted before the audit's first catch vs audited fraction (always-liar, p=0)",
        &[
            "audit fraction",
            "caught",
            "lies slipped (avg)",
            "expected ~1/fraction",
            "time to exclusion (s)",
        ],
        &rows,
    );
    note("full audit catches the very first accepted lie (once its version bucket closes after max_latency); sampling f lets ~1/f lies through first — the paper's 'weaken the security guarantees' trade-off, with exclusion still guaranteed eventually.");
}
