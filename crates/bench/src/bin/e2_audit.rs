//! E2 — Audit detection guarantee vs. sampled auditing (paper §3.4).
//!
//! Claim: with full auditing, *every* pledged read is re-executed, so the
//! first wrong answer a client accepts is caught as soon as its version's
//! bucket is audited — malicious slaves "will eventually be detected and
//! excluded" with certainty.  Auditing only a sampled fraction `f` weakens
//! that to per-lie detection probability `f`: in expectation `1/f` lies
//! slip through before the first catch, and corrective action fires that
//! much later.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e2_audit");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let frac = cell.coord("audit fraction").unwrap_or(1.0);
        let total = cell.runs.len();
        // Per caught run: (first exclusion instant, lies accepted first).
        let caught: Vec<(f64, f64)> = cell
            .runs
            .iter()
            .filter(|r| r.stats.exclusions >= 1)
            .map(|r| {
                (
                    r.first_point("exclusion.at_us").map_or(0.0, |(t, _)| t),
                    r.stats.wrong_accepted as f64,
                )
            })
            .collect();
        let n = caught.len() as f64;
        cell.push_metric("expected_slip", 1.0 / frac);
        cell.push_annotation("caught_ratio", format!("{}/{total}", caught.len()));
        let (slipped, time) = if caught.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (
                caught.iter().map(|&(_, s)| s).sum::<f64>() / n,
                caught.iter().map(|&(t, _)| t).sum::<f64>() / n,
            )
        };
        cell.push_metric("lies_slipped", slipped);
        cell.push_metric("time_to_exclusion_s", time);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E2: lies accepted before the audit's first catch vs audited fraction (always-liar, p=0)",
            r,
            &[
                Col::Coord { axis: "audit fraction", header: "audit fraction", prec: 2 },
                Col::Annot { name: "caught_ratio", header: "caught" },
                Col::Metric { name: "lies_slipped", header: "lies slipped (avg)", prec: 1 },
                Col::Metric { name: "expected_slip", header: "expected ~1/fraction", prec: 1 },
                Col::Metric {
                    name: "time_to_exclusion_s",
                    header: "time to exclusion (s)",
                    prec: 1,
                },
            ],
        );
        note("full audit catches the very first accepted lie (once its version bucket closes after max_latency); sampling f lets ~1/f lies through first — the paper's 'weaken the security guarantees' trade-off, with exclusion still guaranteed eventually.");
    });
}
