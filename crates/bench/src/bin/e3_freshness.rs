//! E3 — Freshness rejection vs. keep-alive period and client latency
//! (paper §3.1–3.2).
//!
//! Claims: (a) a result fresh when the slave sent it can be stale on
//! arrival, forcing a retry; careful choice of `max_latency` and keep-alive
//! frequency makes this rare.  (b) "clients with very slow or unreliable
//! network connections may never be able to get fresh-enough responses";
//! letting such clients relax their *own* `max_latency` restores service.

use sdr_bench::{f, note, print_table};
use sdr_core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use sdr_sim::{LinkModel, NetworkConfig, NodeId, SimDuration};

fn run(
    keepalive_ms: u64,
    all_clients_ms: u64,
    slow_client_ms: u64,
    relaxed: bool,
) -> (f64, f64, f64) {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 6,
        max_latency: SimDuration::from_millis(1_000),
        keepalive_period: SimDuration::from_millis(keepalive_ms),
        double_check_prob: 0.0,
        seed: 31,
        ..SystemConfig::default()
    };
    let mut workload = Workload {
        reads_per_sec: 5.0,
        writes_per_sec: 0.0,
        ..Workload::default()
    };
    if relaxed {
        // The slow client opts into a weaker freshness bound (paper's
        // "allow the max_latency to be set by the clients themselves").
        workload.client_max_latency = vec![(0, SimDuration::from_millis(6_000))];
    }

    let mut net = NetworkConfig::new(LinkModel::wan(SimDuration::from_millis(10)));
    // Node ids: masters 0..3, slaves 3..7, directory 7, clients 8..14.
    for c in 0..6u32 {
        net.set_node_link(
            NodeId(3 + 4 + 1 + c),
            LinkModel::wan(SimDuration::from_millis(all_clients_ms)),
        );
    }
    // Client 0 sits behind a (possibly) terrible link.
    let slow_node = NodeId(3 + 4 + 1);
    net.set_node_link(slow_node, LinkModel::wan(SimDuration::from_millis(slow_client_ms)));

    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 4])
        .workload(workload)
        .network(net)
        .build();
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    let slow = &stats.per_client[0];
    let slow_accept_rate = if slow.reads_issued > 0 {
        slow.reads_accepted as f64 / slow.reads_issued as f64
    } else {
        0.0
    };
    let overall_stale_rate = if stats.reads_issued > 0 {
        stats.rejected_stale as f64 / stats.reads_issued as f64
    } else {
        0.0
    };
    (
        overall_stale_rate,
        slow.stale_rejections as f64,
        slow_accept_rate,
    )
}

fn main() {
    // Part (a): keep-alive period sweep; every client sits behind a
    // realistic 50 ms WAN link, so the freshness budget left after the
    // keep-alive phase is what decides acceptance.
    let mut rows = Vec::new();
    for &ka in &[100u64, 250, 500, 800, 950] {
        let (stale_rate, _, _) = run(ka, 50, 50, false);
        rows.push(vec![
            ka.to_string(),
            "1000".into(),
            f(stale_rate * 100.0, 2),
        ]);
    }
    print_table(
        "E3a: stale-read rate vs keep-alive period (max_latency = 1000 ms, 50 ms client links)",
        &["keepalive (ms)", "max_latency (ms)", "stale rejects (%)"],
        &rows,
    );
    note("as the keep-alive period approaches max_latency, stamps arrive at clients with little freshness budget left and rejections climb.");

    // Part (b): one client behind a slow link, with and without a relaxed
    // personal freshness bound.
    let mut rows = Vec::new();
    for &(lat, relaxed) in &[
        (10u64, false),
        (300, false),
        (700, false),
        (700, true),
        (1500, false),
        (1500, true),
    ] {
        let (_, slow_stale, slow_accept) = run(250, 10, lat, relaxed);
        rows.push(vec![
            lat.to_string(),
            if relaxed { "6000".into() } else { "1000".into() },
            f(slow_stale, 0),
            f(slow_accept * 100.0, 1),
        ]);
    }
    print_table(
        "E3b: a slow client starves under the global bound; its own relaxed max_latency restores service",
        &[
            "client link median (ms)",
            "client max_latency (ms)",
            "stale rejections",
            "reads accepted (%)",
        ],
        &rows,
    );
    note("the paper's accommodation: slow clients set modest freshness expectations and become serviceable again.");
}
