//! E3 — Freshness rejection vs. keep-alive period and client latency
//! (paper §3.1–3.2).
//!
//! Claims: (a) a result fresh when the slave sent it can be stale on
//! arrival, forcing a retry; careful choice of `max_latency` and keep-alive
//! frequency makes this rare.  (b) "clients with very slow or unreliable
//! network connections may never be able to get fresh-enough responses";
//! letting such clients relax their *own* `max_latency` restores service.
//!
//! Two scenarios back the two claims: `e3_freshness` sweeps the
//! keep-alive period, `e3_slow_client` degrades one client's link with
//! and without a relaxed personal freshness bound.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::{RunReport, Runner};

fn run(name: &str, cli: &BenchCli) -> RunReport {
    let mut spec = must_lookup(name);
    cli.apply(&mut spec);
    Runner::new(spec).run().expect("scenario runs")
}

fn main() {
    let cli = BenchCli::parse();

    // Part (a): keep-alive period sweep; every client sits behind a
    // realistic 50 ms WAN link, so the freshness budget left after the
    // keep-alive phase is what decides acceptance.
    let mut part_a = run("e3_freshness", &cli);
    for cell in &mut part_a.cells {
        let stale_rate = if cell.mean("reads_issued") > 0.0 {
            cell.mean("rejected_stale") / cell.mean("reads_issued")
        } else {
            0.0
        };
        cell.push_metric("stale_pct", stale_rate * 100.0);
        cell.push_metric("max_latency_ms", 1000.0);
    }

    // Part (b): one client behind a degrading link, with and without a
    // relaxed personal freshness bound (zipped axes).
    let mut part_b = run("e3_slow_client", &cli);
    for cell in &mut part_b.cells {
        let n = cell.runs.len().max(1) as f64;
        let mut stale = 0.0;
        let mut accept = 0.0;
        for r in &cell.runs {
            if let Some(slow) = r.stats.per_client.first() {
                stale += slow.stale_rejections as f64;
                if slow.reads_issued > 0 {
                    accept += slow.reads_accepted as f64 / slow.reads_issued as f64;
                }
            }
        }
        cell.push_metric("slow_stale", stale / n);
        cell.push_metric("slow_accept_pct", accept / n * 100.0);
        // Render "global bound" (0) as the 1000 ms default.
        let bound = cell.coord("client max_latency (ms)").unwrap_or(0.0);
        cell.push_metric("bound_ms", if bound > 0.0 { bound } else { 1000.0 });
    }

    if cli.json {
        // One JSON document holding both parts, as an array.
        println!(
            "[{},{}]",
            part_a.to_json_string(),
            part_b.to_json_string()
        );
        return;
    }

    print_report_table(
        "E3a: stale-read rate vs keep-alive period (max_latency = 1000 ms, 50 ms client links)",
        &part_a,
        &[
            Col::Coord { axis: "keepalive (ms)", header: "keepalive (ms)", prec: 0 },
            Col::Metric { name: "max_latency_ms", header: "max_latency (ms)", prec: 0 },
            Col::Metric { name: "stale_pct", header: "stale rejects (%)", prec: 2 },
        ],
    );
    note("as the keep-alive period approaches max_latency, stamps arrive at clients with little freshness budget left and rejections climb.");

    print_report_table(
        "E3b: a slow client starves under the global bound; its own relaxed max_latency restores service",
        &part_b,
        &[
            Col::Coord {
                axis: "client link median (ms)",
                header: "client link median (ms)",
                prec: 0,
            },
            Col::Metric { name: "bound_ms", header: "client max_latency (ms)", prec: 0 },
            Col::Metric { name: "slow_stale", header: "stale rejections", prec: 0 },
            Col::Metric { name: "slow_accept_pct", header: "reads accepted (%)", prec: 1 },
        ],
    );
    note("the paper's accommodation: slow clients set modest freshness expectations and become serviceable again.");
}
