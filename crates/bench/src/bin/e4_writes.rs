//! E4 — Write throughput is bounded by `max_latency` (paper §3.1, §6).
//!
//! Claim: "two write operations cannot be, time-wise, closer than
//! `max_latency` to each other.  This obviously limits the number of write
//! operations that can be executed in a given time, which is why we
//! advocate our architecture only for applications where there is a high
//! reads to writes ratio."

use sdr_bench::{f, ms, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let sweeps_ms = [250u64, 500, 1_000, 2_000, 4_000];
    let run_secs = 120u64;
    let mut rows = Vec::new();

    for &ml in &sweeps_ms {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 8,
            max_latency: SimDuration::from_millis(ml),
            keepalive_period: SimDuration::from_millis(ml / 4),
            double_check_prob: 0.01,
            seed: 41,
            ..SystemConfig::default()
        };
        // Saturating write demand: far more writes offered than the
        // spacing rule can admit.
        let workload = Workload {
            reads_per_sec: 4.0,
            writes_per_sec: 50.0,
            writer_fraction: 0.5,
            ..Workload::default()
        };
        let mut sys = run_system(
            cfg,
            vec![SlaveBehavior::Honest; 4],
            workload,
            SimDuration::from_secs(run_secs),
        );
        let stats = sys.stats();

        let achieved = stats.writes_committed as f64 / run_secs as f64;
        let bound = 1_000.0 / ml as f64;
        let read_accept = if stats.reads_issued > 0 {
            stats.reads_accepted as f64 / stats.reads_issued as f64
        } else {
            0.0
        };
        rows.push(vec![
            ml.to_string(),
            f(achieved, 2),
            f(bound, 2),
            f(achieved / bound, 2),
            ms(stats.write_latency.p50),
            f(read_accept * 100.0, 1),
        ]);
    }

    print_table(
        "E4: achievable write throughput vs max_latency (offered load 50 writes/s)",
        &[
            "max_latency (ms)",
            "achieved writes/s",
            "bound 1/max_latency",
            "utilisation of bound",
            "write latency p50 (ms)",
            "reads accepted (%)",
        ],
        &rows,
    );
    note("committed writes track the 1/max_latency ceiling — the structural reason the paper restricts the design to read-heavy workloads.");
    note("read service stays high throughout: lazy updates decouple reads from write admission.");
}
