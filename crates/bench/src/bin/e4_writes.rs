//! E4 — Write throughput is bounded by `max_latency` (paper §3.1, §6).
//!
//! Claim: "two write operations cannot be, time-wise, closer than
//! `max_latency` to each other.  This obviously limits the number of write
//! operations that can be executed in a given time, which is why we
//! advocate our architecture only for applications where there is a high
//! reads to writes ratio."
//!
//! The `e4_writes` scenario zips `max_latency` with a proportional
//! keep-alive period under saturating write demand.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col, Stat};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e4_writes");
    cli.apply(&mut spec);
    let run_secs = spec.duration.as_secs_f64();

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let ml = cell.coord("max_latency (ms)").unwrap_or(1.0);
        let achieved = cell.mean("writes_committed") / run_secs;
        let bound = 1_000.0 / ml;
        cell.push_metric("achieved_wps", achieved);
        cell.push_metric("bound_wps", bound);
        cell.push_metric("bound_utilisation", achieved / bound);
        let accept = if cell.mean("reads_issued") > 0.0 {
            cell.mean("reads_accepted") / cell.mean("reads_issued") * 100.0
        } else {
            0.0
        };
        cell.push_metric("read_accept_pct", accept);
        cell.push_metric("write_p50_ms", cell.mean("write_latency_p50") / 1000.0);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E4: achievable write throughput vs max_latency (offered load 50 writes/s)",
            r,
            &[
                Col::Coord { axis: "max_latency (ms)", header: "max_latency (ms)", prec: 0 },
                Col::Metric { name: "achieved_wps", header: "achieved writes/s", prec: 2 },
                Col::Metric { name: "bound_wps", header: "bound 1/max_latency", prec: 2 },
                Col::Metric { name: "bound_utilisation", header: "utilisation of bound", prec: 2 },
                Col::Metric { name: "write_p50_ms", header: "write latency p50 (ms)", prec: 1 },
                Col::Metric { name: "read_accept_pct", header: "reads accepted (%)", prec: 1 },
                Col::Field {
                    field: "writes_denied",
                    stat: Stat::Mean,
                    header: "writes denied",
                    prec: 0,
                },
            ],
        );
        note("committed writes track the 1/max_latency ceiling — the structural reason the paper restricts the design to read-heavy workloads.");
        note("read service stays high throughout: lazy updates decouple reads from write admission.");
    });
}
