//! E5 — Master load vs. double-check probability (paper §3.3).
//!
//! Claim: the double-check probability "should be small enough so it does
//! not excessively increase the workload on the masters, but large enough
//! so it guarantees that a malicious slave is caught red-handed quickly."
//! The `e5_master_load` scenario sweeps `p` under a fixed read rate; this
//! binary reports trusted (master) vs. untrusted (slave) CPU utilisation.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e5_master_load");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let n = cell.runs.len().max(1) as f64;
        let mut serving = 0.0;
        let mut auditor = 0.0;
        let mut slave_avg = 0.0;
        let mut dc_rate = 0.0;
        for r in &cell.runs {
            // Masters 0..n-2 serve double-checks; the last is the auditor.
            let util = &r.stats.master_utilisation;
            let nm = util.len();
            serving += util[..nm - 1].iter().sum::<f64>() / (nm - 1) as f64;
            auditor += util[nm - 1];
            slave_avg += r.stats.slave_utilisation.iter().sum::<f64>()
                / r.stats.slave_utilisation.len() as f64;
            if r.stats.reads_issued > 0 {
                dc_rate += r.stats.dc_sent as f64 / r.stats.reads_issued as f64;
            }
        }
        cell.push_metric("dc_rate", dc_rate / n);
        cell.push_metric("serving_cpu_pct", serving / n * 100.0);
        cell.push_metric("auditor_cpu_pct", auditor / n * 100.0);
        cell.push_metric("slave_cpu_pct", slave_avg / n * 100.0);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E5: trusted-host load vs double-check probability p (96 reads/s offered)",
            r,
            &[
                Col::Coord { axis: "p", header: "p", prec: 2 },
                Col::Metric { name: "dc_rate", header: "measured DC rate", prec: 3 },
                Col::Metric { name: "serving_cpu_pct", header: "serving-master CPU (%)", prec: 2 },
                Col::Metric { name: "auditor_cpu_pct", header: "auditor CPU (%)", prec: 2 },
                Col::Metric { name: "slave_cpu_pct", header: "avg slave CPU (%)", prec: 2 },
            ],
        );
        note("serving-master load grows linearly in p while slave load is flat — the knob trades trusted CPU for detection speed (E1).");
        note("the auditor's load is independent of p: it re-executes every non-double-checked read regardless.");
    });
}
