//! E5 — Master load vs. double-check probability (paper §3.3).
//!
//! Claim: the double-check probability "should be small enough so it does
//! not excessively increase the workload on the masters, but large enough
//! so it guarantees that a malicious slave is caught red-handed quickly."
//! This sweeps `p` under a fixed read rate and reports trusted (master)
//! vs. untrusted (slave) CPU utilisation.

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let sweeps = [0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5];
    let mut rows = Vec::new();

    for &p in &sweeps {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            double_check_prob: p,
            audit_fraction: 1.0,
            seed: 51,
            ..SystemConfig::default()
        };
        let workload = Workload {
            reads_per_sec: 8.0,
            writes_per_sec: 0.2,
            ..Workload::default()
        };
        let mut sys = run_system(
            cfg,
            vec![SlaveBehavior::Honest; 6],
            workload,
            SimDuration::from_secs(60),
        );
        let stats = sys.stats();

        // Masters 0..n-2 serve double-checks; the last is the auditor.
        let nm = stats.master_utilisation.len();
        let serving: f64 = stats.master_utilisation[..nm - 1]
            .iter()
            .sum::<f64>()
            / (nm - 1) as f64;
        let auditor = stats.master_utilisation[nm - 1];
        let slave_avg: f64 =
            stats.slave_utilisation.iter().sum::<f64>() / stats.slave_utilisation.len() as f64;
        let dc_rate = if stats.reads_accepted > 0 {
            stats.dc_sent as f64 / stats.reads_issued as f64
        } else {
            0.0
        };
        rows.push(vec![
            f(p, 2),
            f(dc_rate, 3),
            f(serving * 100.0, 2),
            f(auditor * 100.0, 2),
            f(slave_avg * 100.0, 2),
        ]);
    }

    print_table(
        "E5: trusted-host load vs double-check probability p (96 reads/s offered)",
        &[
            "p",
            "measured DC rate",
            "serving-master CPU (%)",
            "auditor CPU (%)",
            "avg slave CPU (%)",
        ],
        &rows,
    );
    note("serving-master load grows linearly in p while slave load is flat — the knob trades trusted CPU for detection speed (E1).");
    note("the auditor's load is independent of p: it re-executes every non-double-checked read regardless.");
}
