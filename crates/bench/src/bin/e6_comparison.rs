//! E6 — Our scheme vs. state signing vs. state machine replication
//! (paper §1, §5).
//!
//! Claims: state signing forces dynamic queries onto trusted hosts; SMR
//! multiplies untrusted compute by the quorum size and its latency is set
//! by the slowest quorum member; our scheme serves dynamic queries on
//! single untrusted hosts with only statistical guarantees plus audit.
//!
//! All three schemes execute the *same* sampled query stream over the
//! *same* content with the *same* cost model.  No simulated system runs
//! here, so the `e6_comparison` scenario contributes the dataset, query
//! mix, and seed; the per-scheme numbers land in a [`RunReport`] cell
//! apiece (one row each), which `--json` emits like every other bin.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sdr_baselines::{SchemeCosts, SignedState, SmrCluster};
use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::{CellReport, RunReport};
use sdr_crypto::{HmacSigner, Signer};
use sdr_sim::{CostModel, LatencyModel, SimDuration};
use sdr_store::execute;

fn main() {
    let cli = BenchCli::parse();
    let spec = must_lookup("e6_comparison");

    let costs = CostModel::standard();
    let dataset = spec.workload.dataset;
    let db = dataset.build();
    let mix = spec.workload.mix;
    let mut rng = SmallRng::seed_from_u64(spec.config.seed);
    let n_queries = 2_000usize;
    let queries: Vec<_> = (0..n_queries).map(|_| mix.sample(&mut rng, &dataset)).collect();

    let mut report = RunReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        duration_secs: 0.0,
        seeds: vec![spec.config.seed],
        cells: Vec::new(),
    };
    let mut add_cell = |label: &str, c: &SchemeCosts, lat_sum: u64, guarantee: &str| {
        let mut cell = CellReport {
            label: label.to_string(),
            ..CellReport::default()
        };
        let per = |d: SimDuration| d.as_micros() as f64 / n_queries as f64;
        cell.push_metric("trusted_us_per_read", per(c.trusted));
        cell.push_metric("untrusted_us_per_read", per(c.untrusted));
        cell.push_metric("client_us_per_read", per(c.client));
        cell.push_metric("latency_mean_ms", lat_sum as f64 / n_queries as f64 / 1000.0);
        cell.push_annotation("guarantee", guarantee);
        report.cells.push(cell);
    };

    // --- Ours: slave executes + signs; client hashes + verifies twice;
    // trusted side pays p × double-check plus the audit re-execution
    // (cache-discounted).
    let p = 0.02;
    let audit_cache_hit = 0.5; // Measured in E7; conservative here.
    let mut ours = SchemeCosts::default();
    let mut ours_lat_sum = 0u64;
    let link = LatencyModel::LogNormal {
        median: SimDuration::from_millis(10),
        sigma: 0.4,
    };
    for q in &queries {
        let (r, qc) = execute(&db, q).expect("query ok");
        let exec = costs.query_fixed
            + costs.row_scan * qc.rows_scanned
            + costs.index_probe * qc.index_probes
            + costs.grep_cost(qc.bytes_processed as usize);
        let per = SchemeCosts {
            untrusted: exec + costs.hash_cost(r.size()) + costs.sign,
            client: costs.hash_cost(r.size()) + costs.verify * 2,
            trusted: (exec + costs.hash_cost(r.size())).mul_f64(p)
                + (exec.mul_f64(1.0 - audit_cache_hit) + costs.cache_lookup + costs.verify * 2)
                    .mul_f64(1.0 - p),
            wire_bytes: (r.size() + 200) as u64,
            latency: SimDuration::ZERO,
        };
        // Client latency: one round trip to the slave + slave work.
        let rtt = link.sample(&mut rng) + link.sample(&mut rng);
        ours_lat_sum += (rtt + per.untrusted).as_micros();
        ours.accumulate(&per);
    }
    add_cell(
        "ours (p=0.02 + full audit)",
        &ours,
        ours_lat_sum,
        "statistical + eventual detection",
    );

    // --- State signing.
    let mut owner = HmacSigner::from_seed_label(62, b"owner");
    let owner_pk = owner.public_key();
    let (signed, publish_cost) =
        SignedState::publish(db.clone(), &mut owner, &costs).expect("publish");
    let mut ss = SchemeCosts::default();
    let mut ss_lat_sum = 0u64;
    for q in &queries {
        let (_, c) = signed.serve_query(q, &owner_pk, &costs).expect("serve");
        let rtt = link.sample(&mut rng) + link.sample(&mut rng);
        // Dynamic queries add a hop to the trusted host.
        let extra = if c.trusted > SimDuration::ZERO {
            link.sample(&mut rng) + link.sample(&mut rng)
        } else {
            SimDuration::ZERO
        };
        ss_lat_sum += (rtt + extra + c.trusted + c.untrusted).as_micros();
        ss.accumulate(&c);
    }
    add_cell(
        "state signing",
        &ss,
        ss_lat_sum,
        "immediate (static reads only)",
    );

    // --- SMR at several quorum sizes.
    for &q in &[4usize, 7, 10] {
        let cluster = SmrCluster::new(&db, q, &[], link);
        let mut smr = SchemeCosts::default();
        let mut lat_sum = 0u64;
        for query in &queries {
            let o = cluster
                .quorum_read(query, q, &costs, &mut rng)
                .expect("quorum read");
            lat_sum += o.costs.latency.as_micros();
            smr.accumulate(&o.costs);
        }
        add_cell(
            &format!("SMR (q={q})"),
            &smr,
            lat_sum,
            "immediate (needs majority honest)",
        );
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E6: per-read cost comparison on an identical 2000-query stream",
            r,
            &[
                Col::Label("scheme"),
                Col::Metric { name: "trusted_us_per_read", header: "trusted us/read", prec: 1 },
                Col::Metric { name: "untrusted_us_per_read", header: "untrusted us/read", prec: 1 },
                Col::Metric { name: "client_us_per_read", header: "client us/read", prec: 1 },
                Col::Metric { name: "latency_mean_ms", header: "latency mean (ms)", prec: 2 },
                Col::Annot { name: "guarantee", header: "guarantee" },
            ],
        );
        note(&format!(
            "state-signing publish cost (per content update): {} of trusted CPU over {} leaves — paid again on every write.",
            publish_cost,
            signed.leaf_count()
        ));
        note("shape to check: SMR's untrusted cost ≈ q × ours; SMR latency grows with q (slowest-member effect); state signing's trusted cost ≫ ours because every dynamic query runs on trusted hardware.");
    });
}
