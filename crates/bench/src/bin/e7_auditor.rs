//! E7 — Auditor lag under diurnal load; caching and its advantages
//! (paper §3.4).
//!
//! Claims: the auditor out-runs slaves because it signs nothing, answers
//! nobody, and caches results over a known query stream; under "daily peak
//! patterns (few requests at 3AM …) it is possible that the auditor will
//! seriously lag behind during peak hours, but catch up during the night";
//! if it cannot keep up in the long run, sample the audit or add auditors.
//!
//! The `e7_auditor` scenario crosses auditor-cache on/off with a
//! generous/starved audit CPU slice over two compressed diurnal days and
//! captures the backlog and lag series.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::Runner;

fn sparkline(series: &[(f64, f64)], buckets: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let t_max = series.last().map(|(t, _)| *t).unwrap_or(1.0);
    let mut maxima = vec![0.0f64; buckets];
    for (t, v) in series {
        let b = ((t / t_max) * (buckets as f64 - 1.0)) as usize;
        maxima[b] = maxima[b].max(*v);
    }
    let peak = maxima.iter().copied().fold(1.0f64, f64::max);
    const BARS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    maxima
        .iter()
        .map(|v| BARS[((v / peak) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e7_auditor");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    let mut shapes = Vec::new();
    for cell in &mut report.cells {
        let cache_on = cell.coord("cache").unwrap_or(1.0) != 0.0;
        let slice = cell.coord("audit slice (ms)").unwrap_or(0.0);
        let label = format!(
            "cache {}, {} CPU",
            if cache_on { "on" } else { "off" },
            if slice >= 10.0 { "generous" } else { "starved" }
        );
        cell.label = label.clone();

        // Series-derived peaks come from the first run (one seed here).
        let (peak_backlog, peak_lag, final_lag, shape) = cell
            .runs
            .first()
            .map(|r| {
                let backlog = r.series("audit.backlog").map(|s| s.points.as_slice()).unwrap_or(&[]);
                let lag = r.series("audit.lag_us").map(|s| s.points.as_slice()).unwrap_or(&[]);
                (
                    backlog.iter().map(|&(_, v)| v).fold(0.0, f64::max),
                    lag.iter().map(|&(_, v)| v / 1000.0).fold(0.0, f64::max),
                    lag.last().map(|&(_, v)| v / 1000.0).unwrap_or(0.0),
                    sparkline(backlog, 48),
                )
            })
            .unwrap_or((0.0, 0.0, 0.0, String::new()));
        let hits = cell.mean("audit_cache_hits");
        let checked = cell.mean("audit_checked");
        let hit_rate = if hits + checked > 0.0 {
            hits / (hits + checked)
        } else {
            0.0
        };
        cell.push_metric("peak_backlog", peak_backlog);
        cell.push_metric("peak_lag_ms", peak_lag);
        cell.push_metric("final_lag_ms", final_lag);
        cell.push_metric("cache_hit_rate", hit_rate);
        shapes.push((label, shape));
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E7: auditor backlog/lag over two compressed diurnal days (peak 144 reads/s)",
            r,
            &[
                Col::Label("configuration"),
                Col::Metric { name: "peak_backlog", header: "peak backlog", prec: 0 },
                Col::Field {
                    field: "audit_backlog",
                    stat: sdr_bench::Stat::Mean,
                    header: "final backlog",
                    prec: 0,
                },
                Col::Metric { name: "peak_lag_ms", header: "peak lag (ms)", prec: 1 },
                Col::Metric { name: "final_lag_ms", header: "final lag (ms)", prec: 1 },
                Col::Metric { name: "cache_hit_rate", header: "cache hit rate", prec: 2 },
            ],
        );
        println!("\n  backlog over time (two days; expect humps at the two midday peaks):");
        for (label, shape) in &shapes {
            println!("  {label:>26}  |{shape}|");
        }
        note("backlog swells at the midday peak and drains overnight; the cache cuts re-execution work; a starved auditor without cache ends the day still behind — the paper's cue to add auditors or sample.");
    });
}
