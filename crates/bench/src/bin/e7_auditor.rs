//! E7 — Auditor lag under diurnal load; caching and its advantages
//! (paper §3.4).
//!
//! Claims: the auditor out-runs slaves because it signs nothing, answers
//! nobody, and caches results over a known query stream; under "daily peak
//! patterns (few requests at 3AM …) it is possible that the auditor will
//! seriously lag behind during peak hours, but catch up during the night";
//! if it cannot keep up in the long run, sample the audit or add auditors.

use sdr_bench::{f, note, print_table};
use sdr_core::{DiurnalPattern, SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use sdr_sim::{SimDuration, SimTime};

struct RunOut {
    peak_backlog: f64,
    final_backlog: u64,
    peak_lag_ms: f64,
    final_lag_ms: f64,
    cache_hits: u64,
    checked: u64,
    series: Vec<(f64, f64)>,
}

fn run(cache: bool, audit_slice_ms: u64) -> RunOut {
    // A compressed "day": 240 s period, peak at 120 s.
    let day = SimDuration::from_secs(240);
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 6,
        n_clients: 12,
        double_check_prob: 0.01,
        auditor_cache: cache,
        audit_slice: SimDuration::from_millis(audit_slice_ms),
        seed: 71,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 12.0, // Peak rate; the trough is 5% of this.
        writes_per_sec: 0.1,
        diurnal: Some(DiurnalPattern {
            period: day,
            trough: 0.05,
        }),
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 6])
        .workload(workload)
        .build();
    // Two full days.
    sys.run_until(SimTime::from_secs(480));

    let backlog_series: Vec<(f64, f64)> = sys
        .world
        .metrics()
        .series("audit.backlog")
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), *v))
        .collect();
    let lag_series: Vec<(f64, f64)> = sys
        .world
        .metrics()
        .series("audit.lag_us")
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), *v / 1000.0))
        .collect();
    let stats = sys.stats();

    RunOut {
        peak_backlog: backlog_series.iter().map(|(_, v)| *v).fold(0.0, f64::max),
        final_backlog: stats.audit_backlog,
        peak_lag_ms: lag_series.iter().map(|(_, v)| *v).fold(0.0, f64::max),
        final_lag_ms: lag_series.last().map(|(_, v)| *v).unwrap_or(0.0),
        cache_hits: stats.audit_cache_hits,
        checked: stats.audit_checked,
        series: backlog_series,
    }
}

fn sparkline(series: &[(f64, f64)], buckets: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let t_max = series.last().map(|(t, _)| *t).unwrap_or(1.0);
    let mut maxima = vec![0.0f64; buckets];
    for (t, v) in series {
        let b = ((t / t_max) * (buckets as f64 - 1.0)) as usize;
        maxima[b] = maxima[b].max(*v);
    }
    let peak = maxima.iter().copied().fold(1.0f64, f64::max);
    const BARS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
    maxima
        .iter()
        .map(|v| BARS[((v / peak) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    let mut shapes = Vec::new();
    for &(label, cache, slice) in &[
        ("cache on, generous CPU", true, 20u64),
        ("cache off, generous CPU", false, 20),
        ("cache on, starved CPU", true, 2),
        ("cache off, starved CPU", false, 2),
    ] {
        let out = run(cache, slice);
        let hit_rate = if out.cache_hits + out.checked > 0 {
            out.cache_hits as f64 / (out.cache_hits + out.checked) as f64
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            f(out.peak_backlog, 0),
            out.final_backlog.to_string(),
            f(out.peak_lag_ms, 1),
            f(out.final_lag_ms, 1),
            f(hit_rate, 2),
        ]);
        shapes.push((label, sparkline(&out.series, 48)));
    }

    print_table(
        "E7: auditor backlog/lag over two compressed diurnal days (peak 144 reads/s)",
        &[
            "configuration",
            "peak backlog",
            "final backlog",
            "peak lag (ms)",
            "final lag (ms)",
            "cache hit rate",
        ],
        &rows,
    );
    println!("\n  backlog over time (two days; expect humps at the two midday peaks):");
    for (label, shape) in shapes {
        println!("  {label:>26}  |{shape}|");
    }
    note("backlog swells at the midday peak and drains overnight; the cache cuts re-execution work; a starved auditor without cache ends the day still behind — the paper's cue to add auditors or sample.");
}
