//! E8 — Greedy-client detection (paper §3.3).
//!
//! Claim: "by keeping track of the number of double-check requests it
//! receives from each of its clients, a master can identify statistically
//! anomalous client behavior … [and] enforce fair play by simply ignoring a
//! large fraction of the double-check requests coming from clients
//! suspected to be greedy."
//!
//! The `e8_greedy` scenario sweeps client 0's private double-check
//! probability against the honest population's p = 0.02.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e8_greedy");
    cli.apply(&mut spec);

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let n = cell.runs.len().max(1) as f64;
        let mut g_sent = 0.0;
        let mut g_rate = 0.0;
        let mut h_sent = 0.0;
        let mut h_rate = 0.0;
        for r in &cell.runs {
            let g = &r.stats.per_client[0];
            g_sent += g.dc_sent as f64;
            if g.dc_sent > 0 {
                g_rate += g.dc_throttled as f64 / g.dc_sent as f64;
            }
            let sent: u64 = r.stats.per_client[1..].iter().map(|c| c.dc_sent).sum();
            let throttled: u64 = r.stats.per_client[1..].iter().map(|c| c.dc_throttled).sum();
            h_sent += sent as f64;
            if sent > 0 {
                h_rate += throttled as f64 / sent as f64;
            }
        }
        cell.push_metric("greedy_dc_sent", g_sent / n);
        cell.push_metric("greedy_throttled_pct", g_rate / n * 100.0);
        cell.push_metric("honest_dc_sent", h_sent / n);
        cell.push_metric("honest_throttled_pct", h_rate / n * 100.0);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E8: greedy-client throttling vs greediness (honest p = 0.02, window 30 s)",
            r,
            &[
                Col::Coord { axis: "greedy client p", header: "greedy client p", prec: 2 },
                Col::Metric { name: "greedy_dc_sent", header: "greedy DCs sent", prec: 0 },
                Col::Metric { name: "greedy_throttled_pct", header: "greedy throttled (%)", prec: 1 },
                Col::Metric { name: "honest_dc_sent", header: "honest DCs sent", prec: 0 },
                Col::Metric { name: "honest_throttled_pct", header: "honest throttled (%)", prec: 1 },
            ],
        );
        note("at p = 0.02 the 'greedy' client is indistinguishable from honest (false-positive row ≈ 0%); as its rate departs from the population median the master ignores most of its quota abuse.");
    });
}
