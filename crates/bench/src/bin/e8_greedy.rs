//! E8 — Greedy-client detection (paper §3.3).
//!
//! Claim: "by keeping track of the number of double-check requests it
//! receives from each of its clients, a master can identify statistically
//! anomalous client behavior … [and] enforce fair play by simply ignoring a
//! large fraction of the double-check requests coming from clients
//! suspected to be greedy."

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let greedy_probs = [0.02, 0.05, 0.1, 0.3, 0.6, 0.9];
    let mut rows = Vec::new();

    for &gp in &greedy_probs {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 10,
            double_check_prob: 0.02, // Honest rate.
            seed: 81,
            ..SystemConfig::default()
        };
        let workload = Workload {
            reads_per_sec: 8.0,
            writes_per_sec: 0.0,
            greedy_clients: vec![(0, gp)],
            ..Workload::default()
        };
        let mut sys = run_system(
            cfg,
            vec![SlaveBehavior::Honest; 4],
            workload,
            SimDuration::from_secs(120),
        );
        let stats = sys.stats();

        let g = &stats.per_client[0];
        let g_throttle_rate = if g.dc_sent > 0 {
            g.dc_throttled as f64 / g.dc_sent as f64
        } else {
            0.0
        };
        let honest_sent: u64 = stats.per_client[1..].iter().map(|c| c.dc_sent).sum();
        let honest_throttled: u64 = stats.per_client[1..].iter().map(|c| c.dc_throttled).sum();
        let h_throttle_rate = if honest_sent > 0 {
            honest_throttled as f64 / honest_sent as f64
        } else {
            0.0
        };
        rows.push(vec![
            f(gp, 2),
            g.dc_sent.to_string(),
            f(g_throttle_rate * 100.0, 1),
            honest_sent.to_string(),
            f(h_throttle_rate * 100.0, 1),
        ]);
    }

    print_table(
        "E8: greedy-client throttling vs greediness (honest p = 0.02, window 30 s)",
        &[
            "greedy client p",
            "greedy DCs sent",
            "greedy throttled (%)",
            "honest DCs sent",
            "honest throttled (%)",
        ],
        &rows,
    );
    note("at p = 0.02 the 'greedy' client is indistinguishable from honest (false-positive row ≈ 0%); as its rate departs from the population median the master ignores most of its quota abuse.");
}
