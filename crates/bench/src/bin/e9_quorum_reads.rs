//! E9 — Replicated-read variant: collusion resistance vs. cost (paper §4).
//!
//! Claim: sending each read to several untrusted slaves means "a number of
//! malicious slaves would have to collude in order to pass an incorrect
//! answer", at the price of more *untrusted* compute per request.
//!
//! We sweep the read quorum `k` and the number of colluding liars, and
//! report wrong-accepts, auto-double-checks (any disagreement forces one),
//! and the untrusted compute multiplier.

use sdr_bench::{f, note, print_table, run_system};
use sdr_core::{SlaveBehavior, SystemConfig, Workload};
use sdr_sim::SimDuration;

fn main() {
    let mut rows = Vec::new();

    for &k in &[1usize, 2, 3] {
        for &liars in &[1usize, 2, 3] {
            let n_slaves = 6;
            let cfg = SystemConfig {
                n_masters: 3,
                n_slaves,
                n_clients: 9,
                read_quorum: k,
                double_check_prob: 0.0, // Isolate the quorum mechanism.
                audit_fraction: 0.0,
                seed: 91,
                ..SystemConfig::default()
            };
            let mut behaviors = vec![SlaveBehavior::Honest; n_slaves];
            for b in behaviors.iter_mut().take(liars) {
                // Colluders agree on the forged answer (salt 0).
                *b = SlaveBehavior::ConsistentLiar {
                    prob: 0.3,
                    collude: true,
                };
            }
            let workload = Workload {
                reads_per_sec: 6.0,
                writes_per_sec: 0.0,
                ..Workload::default()
            };
            let mut sys = run_system(cfg, behaviors, workload, SimDuration::from_secs(60));
            let stats = sys.stats();

            let untrusted_per_read = if stats.reads_accepted > 0 {
                stats
                    .slave_utilisation
                    .iter()
                    .sum::<f64>()
                    * sys.now().as_secs_f64()
                    * 1e6
                    / stats.reads_accepted as f64
            } else {
                0.0
            };
            rows.push(vec![
                k.to_string(),
                liars.to_string(),
                stats.lies_told.to_string(),
                stats.wrong_accepted.to_string(),
                stats.dc_sent.to_string(),
                f(untrusted_per_read, 0),
            ]);
        }
    }

    print_table(
        "E9: quorum reads vs colluding liars (6 slaves, lie prob 0.3, p=0 and audit off)",
        &[
            "read quorum k",
            "colluders",
            "lies told",
            "wrong accepted",
            "auto double-checks",
            "untrusted us/read",
        ],
        &rows,
    );
    note("k=1 accepts every consistent lie (nothing else checks here); k>=2 accepts a lie only when ALL k assigned slaves collude on it, and any disagreement triggers a mandatory double-check.");
    note("untrusted us/read grows ~k-fold — the paper's 'more computing resources … but these resources need not be trusted'.");
}
