//! E9 — Replicated-read variant: collusion resistance vs. cost (paper §4).
//!
//! Claim: sending each read to several untrusted slaves means "a number of
//! malicious slaves would have to collude in order to pass an incorrect
//! answer", at the price of more *untrusted* compute per request.
//!
//! The `e9_quorum_reads` scenario crosses the read quorum `k` with the
//! number of colluding liars; this binary reports wrong-accepts,
//! auto-double-checks (any disagreement forces one), and the untrusted
//! compute multiplier.

use sdr_bench::{must_lookup, note, print_report_table, BenchCli, Col, Stat};
use sdr_core::scenario::Runner;

fn main() {
    let cli = BenchCli::parse();
    let mut spec = must_lookup("e9_quorum_reads");
    cli.apply(&mut spec);
    let duration_secs = spec.duration.as_secs_f64();

    let mut report = Runner::new(spec).run().expect("scenario runs");

    for cell in &mut report.cells {
        let n = cell.runs.len().max(1) as f64;
        let mut untrusted = 0.0;
        for r in &cell.runs {
            if r.stats.reads_accepted > 0 {
                untrusted += r.stats.slave_utilisation.iter().sum::<f64>() * duration_secs * 1e6
                    / r.stats.reads_accepted as f64;
            }
        }
        cell.push_metric("untrusted_us_per_read", untrusted / n);
    }

    cli.emit(&report, |r| {
        print_report_table(
            "E9: quorum reads vs colluding liars (6 slaves, lie prob 0.3, p=0 and audit off)",
            r,
            &[
                Col::Coord { axis: "read quorum k", header: "read quorum k", prec: 0 },
                Col::Coord { axis: "colluders", header: "colluders", prec: 0 },
                Col::Field { field: "lies_told", stat: Stat::Mean, header: "lies told", prec: 0 },
                Col::Field {
                    field: "wrong_accepted",
                    stat: Stat::Mean,
                    header: "wrong accepted",
                    prec: 0,
                },
                Col::Field {
                    field: "dc_sent",
                    stat: Stat::Mean,
                    header: "auto double-checks",
                    prec: 0,
                },
                Col::Metric {
                    name: "untrusted_us_per_read",
                    header: "untrusted us/read",
                    prec: 0,
                },
            ],
        );
        note("k=1 accepts every consistent lie (nothing else checks here); k>=2 accepts a lie only when ALL k assigned slaves collude on it, and any disagreement triggers a mandatory double-check.");
        note("untrusted us/read grows ~k-fold — the paper's 'more computing resources … but these resources need not be trusted'.");
    });
}
