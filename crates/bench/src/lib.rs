//! Shared helpers for the experiment harness.
//!
//! Each paper claim (E1..E12, see DESIGN.md) has a binary under `src/bin/`
//! that builds a deployment, runs it, and prints the table or series the
//! claim predicts.  This library holds the table formatter and common
//! run shorthand so the binaries stay focused on their experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdr_core::{SlaveBehavior, System, SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimDuration;

/// Prints a fixed-width table with a title and column headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i] + 2))
        .collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect();
        println!("{line}");
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// Builds and runs a system, returning it for stats harvesting.
pub fn run_system(
    cfg: SystemConfig,
    behaviors: Vec<SlaveBehavior>,
    workload: Workload,
    duration: SimDuration,
) -> System {
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(behaviors)
        .workload(workload)
        .build();
    sys.run_for(duration);
    sys
}

/// Prints a one-line experiment note (keeps binary output self-describing).
pub fn note(text: &str) {
    println!("  note: {text}");
}
