//! Shared harness for the experiment binaries.
//!
//! Every binary under `src/bin/` follows the same shape: parse the
//! shared CLI ([`BenchCli`]), fetch its [`ScenarioSpec`] from the
//! registry, run it through the scenario [`Runner`], attach derived
//! metrics, and emit — a human table ([`print_report_table`]) or the
//! report's JSON (`--json`).  This library holds the CLI, the table
//! renderer, and small formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdr_core::scenario::{RunReport, ScenarioSpec};
use sdr_sim::SimDuration;

/// Seed override: an explicit list or a replication count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeedArg {
    /// Run this many seeds, derived from the spec's base seed.
    Count(u64),
    /// Run exactly these seeds.
    List(Vec<u64>),
}

/// The CLI surface every experiment binary shares.
///
/// * `--json` — emit the [`RunReport`] as JSON instead of text tables.
/// * `--seeds a,b,c` — replace the spec's seed list (comma-separated);
///   a single integer `--seeds N` instead derives `N` seeds from the
///   spec's base seed.
/// * `--duration SECS` — override the spec's virtual run length.
///
/// The `QUICKSTART_SIM_SECS` environment variable acts as a default
/// `--duration` (CI uses it to shrink every run); an explicit flag wins.
#[derive(Clone, Debug, Default)]
pub struct BenchCli {
    /// Emit JSON instead of text.
    pub json: bool,
    /// Seed override.
    pub seeds: Option<SeedArg>,
    /// Duration override.
    pub duration: Option<SimDuration>,
}

impl BenchCli {
    /// Parses the process arguments (exits with a message on bad input).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut cli = BenchCli::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => cli.json = true,
                "--seeds" => {
                    let v = args.next().unwrap_or_else(|| usage("--seeds needs a value"));
                    cli.seeds = Some(parse_seeds(&v));
                }
                "--duration" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--duration needs seconds"));
                    let secs: f64 = v
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("bad --duration `{v}`")));
                    cli.duration = Some(SimDuration::from_micros((secs * 1e6) as u64));
                }
                "--help" | "-h" => {
                    println!(
                        "usage: [--json] [--seeds N | --seeds a,b,c] [--duration SECS]\n\
                         env: QUICKSTART_SIM_SECS caps the duration when --duration is absent"
                    );
                    std::process::exit(0);
                }
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        if cli.duration.is_none() {
            if let Some(secs) = std::env::var("QUICKSTART_SIM_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                cli.duration = Some(SimDuration::from_secs(secs));
            }
        }
        cli
    }

    /// Applies the overrides to a spec.
    pub fn apply(&self, spec: &mut ScenarioSpec) {
        match &self.seeds {
            Some(SeedArg::List(seeds)) => spec.seeds = seeds.clone(),
            Some(SeedArg::Count(n)) => {
                let base = spec.config.seed;
                spec.seeds = (0..*n).map(|i| base.wrapping_add(1_000 * i)).collect();
            }
            None => {}
        }
        if let Some(d) = self.duration {
            spec.duration = d;
            // Keep mid-run machinery inside the shortened run.
            spec.checkpoints.retain(|c| c.as_micros() <= d.as_micros());
        }
    }

    /// Emits the report: JSON on `--json`, otherwise the given renderer.
    pub fn emit(&self, report: &RunReport, render_text: impl FnOnce(&RunReport)) {
        if self.json {
            println!("{}", report.to_json_string());
        } else {
            render_text(report);
        }
    }
}

fn parse_seeds(v: &str) -> SeedArg {
    if v.contains(',') {
        SeedArg::List(
            v.split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    s.trim()
                        .parse::<u64>()
                        .unwrap_or_else(|_| usage(&format!("bad seed `{s}`")))
                })
                .collect(),
        )
    } else {
        SeedArg::Count(
            v.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| usage(&format!("bad seed count `{v}`"))),
        )
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: [--json] [--seeds N | --seeds a,b,c] [--duration SECS]");
    std::process::exit(2)
}

/// Which aggregate statistic a [`Col::Field`] column shows.
#[derive(Clone, Copy, Debug)]
pub enum Stat {
    /// Mean across the cell's runs.
    Mean,
    /// Minimum across the cell's runs.
    Min,
    /// Maximum across the cell's runs.
    Max,
}

/// One column of a rendered report table.
#[derive(Clone, Copy, Debug)]
pub enum Col {
    /// The cell's display label.
    Label(&'static str),
    /// A sweep coordinate.
    Coord {
        /// Axis name in the grid.
        axis: &'static str,
        /// Column header.
        header: &'static str,
        /// Decimal places.
        prec: usize,
    },
    /// An aggregated statistics field (see `SystemStats::numeric_fields`).
    Field {
        /// Field name.
        field: &'static str,
        /// Which aggregate.
        stat: Stat,
        /// Column header.
        header: &'static str,
        /// Decimal places.
        prec: usize,
    },
    /// A derived metric the experiment attached (NaN renders as `-`).
    Metric {
        /// Metric name.
        name: &'static str,
        /// Column header.
        header: &'static str,
        /// Decimal places.
        prec: usize,
    },
    /// A string annotation the experiment attached.
    Annot {
        /// Annotation name.
        name: &'static str,
        /// Column header.
        header: &'static str,
    },
}

impl Col {
    fn header(&self) -> &'static str {
        match self {
            Col::Label(h) => h,
            Col::Coord { header, .. }
            | Col::Field { header, .. }
            | Col::Metric { header, .. }
            | Col::Annot { header, .. } => header,
        }
    }

    fn render(&self, cell: &sdr_core::scenario::CellReport) -> String {
        match *self {
            Col::Label(_) => cell.display_label(),
            Col::Coord { axis, prec, .. } => match cell.coord(axis) {
                Some(v) => f(v, prec),
                None => "-".into(),
            },
            Col::Field { field, stat, prec, .. } => match cell.agg(field) {
                Some(a) => {
                    let v = match stat {
                        Stat::Mean => a.mean,
                        Stat::Min => a.min,
                        Stat::Max => a.max,
                    };
                    f(v, prec)
                }
                None => "-".into(),
            },
            Col::Metric { name, prec, .. } => match cell.metric(name) {
                Some(v) if v.is_finite() => f(v, prec),
                _ => "-".into(),
            },
            Col::Annot { name, .. } => cell.annotation(name).unwrap_or("-").to_string(),
        }
    }
}

/// Renders one table row per report cell using the given columns.
pub fn print_report_table(title: &str, report: &RunReport, columns: &[Col]) {
    let headers: Vec<&str> = columns.iter().map(|c| c.header()).collect();
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| columns.iter().map(|c| c.render(cell)).collect())
        .collect();
    print_table(title, &headers, &rows);
}

/// Prints a fixed-width table with a title and column headers.
///
/// Rows wider than the header list get empty-header columns sized to
/// their content (rather than a silent fixed-width fallback).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let n_cols = rows
        .iter()
        .map(Vec::len)
        .chain(std::iter::once(headers.len()))
        .max()
        .unwrap_or(0);
    let mut widths: Vec<usize> = (0..n_cols)
        .map(|i| headers.get(i).map_or(0, |h| h.len()))
        .collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line: String = (0..n_cols)
        .map(|i| format!("{:>w$}", headers.get(i).copied().unwrap_or(""), w = widths[i] + 2))
        .collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i] + 2))
            .collect();
        println!("{line}");
    }
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats microseconds as milliseconds.
pub fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// Prints a one-line experiment note (keeps binary output self-describing).
pub fn note(text: &str) {
    println!("  note: {text}");
}

/// Fetches a registered scenario or aborts with a clear message.
pub fn must_lookup(name: &str) -> ScenarioSpec {
    sdr_core::scenario::registry::lookup(name)
        .unwrap_or_else(|| panic!("scenario `{name}` is not registered"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags() {
        let cli = BenchCli::from_args(
            ["--json", "--seeds", "7,8", "--duration", "2.5"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(cli.json);
        assert_eq!(cli.seeds, Some(SeedArg::List(vec![7, 8])));
        assert_eq!(cli.duration, Some(SimDuration::from_micros(2_500_000)));
    }

    #[test]
    fn seed_count_expands_from_spec_base() {
        let cli = BenchCli::from_args(["--seeds", "3"].iter().map(|s| s.to_string()));
        let mut spec = must_lookup("quickstart");
        cli.apply(&mut spec);
        assert_eq!(spec.seeds.len(), 3);
        assert_eq!(spec.seeds[0], spec.config.seed);
    }

    #[test]
    fn duration_override_drops_late_checkpoints() {
        let cli = BenchCli {
            duration: Some(SimDuration::from_secs(10)),
            ..BenchCli::default()
        };
        let mut spec = must_lookup("e12_failover");
        assert!(!spec.checkpoints.is_empty());
        cli.apply(&mut spec);
        assert!(spec.checkpoints.is_empty());
        assert_eq!(spec.duration, SimDuration::from_secs(10));
    }

    #[test]
    fn wide_rows_get_content_sized_columns() {
        // Regression: rows wider than the header list used to fall back
        // to a silent width of 8; now they size to their content.
        print_table(
            "t",
            &["a"],
            &[vec!["x".into(), "a-cell-wider-than-eight".into()]],
        );
    }
}
