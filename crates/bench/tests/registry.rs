//! Registry completeness: every experiment binary must resolve to a
//! registered scenario, so `lookup`-by-bin-name never rots as bins are
//! added or renamed.

use sdr_core::scenario::registry;

/// Walks `src/bin/` and checks each `e*` binary's name resolves.
#[test]
fn every_experiment_bin_name_resolves() {
    let bin_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&bin_dir).expect("src/bin exists") {
        let path = entry.expect("dir entry").path();
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if path.extension().and_then(|e| e.to_str()) != Some("rs") || !stem.starts_with('e') {
            continue;
        }
        // Guard against non-experiment bins that happen to start with 'e'.
        if !stem[1..].starts_with(|c: char| c.is_ascii_digit()) {
            continue;
        }
        assert!(
            registry::lookup(stem).is_some(),
            "experiment binary `{stem}` has no registered scenario"
        );
        checked += 1;
    }
    assert!(checked >= 12, "expected at least 12 e* binaries, saw {checked}");
}

/// The registry's own invariants: names are unique and every spec
/// validates (including sweep applicability).
#[test]
fn registry_names_are_unique_and_valid() {
    let names = registry::names();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate registry names");
    for name in names {
        let spec = registry::lookup(name).expect("registered");
        spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The production-scale scenario actually runs: a shrunk `large_catalog`
/// (10k products) completes end-to-end — infeasible before the
/// copy-on-write store, when every committed write deep-cloned and every
/// digest re-encoded the whole dataset.
#[test]
fn large_catalog_scenario_runs_shrunk() {
    use sdr_core::scenario::Runner;
    use sdr_sim::SimDuration;

    let mut spec = registry::lookup("large_catalog").expect("registered");
    spec.duration = SimDuration::from_secs(10);
    spec.checkpoints.clear();
    spec.seeds = vec![spec.seeds[0]];
    let report = Runner::new(spec).run().expect("scenario runs");
    let stats = &report.cells[0].runs[0].stats;
    assert!(stats.reads_issued > 0, "no reads issued");
    assert!(stats.writes_committed > 0, "no writes committed");
}

/// The five examples are registered too (they fetch specs by name).
#[test]
fn example_scenarios_are_registered() {
    for name in [
        "quickstart",
        "byzantine_storm",
        "master_failover",
        "cdn_catalog",
        "medical_db",
    ] {
        assert!(
            registry::lookup(name).is_some(),
            "example scenario `{name}` missing from registry"
        );
    }
}
