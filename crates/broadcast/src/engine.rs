//! The sans-io total-order broadcast engine.
//!
//! See the crate docs for the protocol sketch.  The engine never performs
//! I/O: every entry point returns a list of [`Action`]s for the host
//! (simulated master, test harness, or a real network shim) to carry out.

use crate::view::{MemberId, View};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Timing configuration, in abstract ticks (the host decides tick length;
/// `sdr-core` ticks every 50 ms of simulated time).
#[derive(Clone, Copy, Debug)]
pub struct TobConfig {
    /// Send a heartbeat every this many ticks.
    pub heartbeat_every: u32,
    /// Suspect a member after this many ticks without hearing from it.
    pub suspect_after: u32,
    /// Retransmit unacknowledged publishes after this many ticks.
    pub resend_after: u32,
}

impl Default for TobConfig {
    fn default() -> Self {
        TobConfig {
            heartbeat_every: 2,
            suspect_after: 8,
            resend_after: 4,
        }
    }
}

/// Wire messages exchanged by group members.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TobMessage<T> {
    /// Publisher → sequencer: please order this payload.
    Publish {
        /// Publisher rank.
        origin: MemberId,
        /// Publisher-local dedup id.
        publish_id: u64,
        /// The payload.
        payload: T,
    },
    /// Sequencer → all: payload ordered at `seq`.
    Ordered {
        /// View in which the assignment was made.
        view_id: u64,
        /// Assigned sequence number.
        seq: u64,
        /// Original publisher.
        origin: MemberId,
        /// Publisher-local dedup id.
        publish_id: u64,
        /// The payload.
        payload: T,
    },
    /// Member → sequencer: I am missing `[from, to)` — retransmit.
    Nack {
        /// First missing sequence number.
        from_seq: u64,
        /// One past the last missing sequence number.
        to_seq: u64,
    },
    /// Liveness + progress gossip, sent every `heartbeat_every` ticks.
    Heartbeat {
        /// Sender's current view id.
        view_id: u64,
        /// Sender has delivered everything below this.
        delivered_up_to: u64,
        /// Sequencer only: next sequence number it will assign (lets
        /// members detect tail loss); 0 from non-sequencers.
        next_assign: u64,
        /// Sequencer only: everything below this is delivered everywhere
        /// and may be pruned.
        stable: u64,
    },
    /// View-change coordinator → survivors: send me your log.
    StateRequest {
        /// The proposed new view.
        proposed: View,
    },
    /// Survivor → coordinator: my log tail and delivery watermark.
    StateReply {
        /// Id of the proposed view this replies to.
        proposed_id: u64,
        /// Everything still in my log.
        log: Vec<(u64, MemberId, u64, T)>,
        /// I have delivered everything below this.
        delivered_up_to: u64,
    },
    /// "What view are you in?" — sent when a peer's message reveals a
    /// higher view id; the peer answers with [`TobMessage::NewView`].
    ViewProbe,
    /// Coordinator → survivors: install this view with this merged log.
    NewView {
        /// The new view.
        view: View,
        /// Merged log entries members may be missing.
        log: Vec<(u64, MemberId, u64, T)>,
        /// Sequencing continues from here.
        next_assign: u64,
    },
}

/// Instructions returned by the engine for the host to execute.
#[derive(Clone, Debug, PartialEq)]
pub enum Action<T> {
    /// Send `msg` to member `to`.
    Send {
        /// Destination member.
        to: MemberId,
        /// The message.
        msg: TobMessage<T>,
    },
    /// Deliver `payload` (ordered at `seq`, published by `origin`) to the
    /// application.  Deliveries are strictly in `seq` order.
    Deliver {
        /// Global sequence number.
        seq: u64,
        /// Original publisher.
        origin: MemberId,
        /// The payload.
        payload: T,
    },
    /// A new view was installed (membership/roles changed).
    ViewInstalled(View),
}

#[derive(Clone, Debug)]
struct PendingPublish<T> {
    publish_id: u64,
    payload: T,
    sent_tick: u64,
}

#[derive(Clone, Debug)]
struct ViewChange {
    proposed: View,
    waiting: HashSet<MemberId>,
    started_tick: u64,
}

/// The total-order broadcast state machine for one group member.
pub struct TotalOrder<T: Clone> {
    me: MemberId,
    config: TobConfig,
    view: View,
    /// Ordered log: seq → (origin, publish_id, payload).
    log: BTreeMap<u64, (MemberId, u64, T)>,
    /// Dedup of ordered publishes: (origin, publish_id) → seq.
    ordered_ids: HashMap<(MemberId, u64), u64>,
    /// Publishes already handed to the application (at-most-once delivery
    /// even across view-change re-assignments).
    delivered_ids: HashSet<(MemberId, u64)>,
    next_deliver: u64,
    /// Sequencer only: next seq to assign.
    next_assign: u64,
    /// Sequencer only: per-member delivery watermarks.
    delivered_watermarks: HashMap<MemberId, u64>,
    /// Sequencer's advertised tail (for gap detection at members).
    seq_next_assign_seen: u64,
    stable: u64,
    pending: Vec<PendingPublish<T>>,
    next_publish_id: u64,
    last_heard: HashMap<MemberId, u64>,
    tick: u64,
    view_change: Option<ViewChange>,
    /// The full static group (heartbeats gossip beyond the current view so
    /// falsely excluded members are always rediscovered).
    initial_members: Vec<MemberId>,
}

impl<T: Clone> TotalOrder<T> {
    /// Creates the engine for member `me` of a fresh `n`-member group.
    pub fn new(me: MemberId, n: usize, config: TobConfig) -> Self {
        let view = View::initial(n);
        let mut last_heard = HashMap::new();
        for &m in &view.members {
            last_heard.insert(m, 0);
        }
        let initial_members = view.members.clone();
        TotalOrder {
            initial_members,
            me,
            config,
            view,
            log: BTreeMap::new(),
            ordered_ids: HashMap::new(),
            delivered_ids: HashSet::new(),
            next_deliver: 0,
            next_assign: 0,
            delivered_watermarks: HashMap::new(),
            seq_next_assign_seen: 0,
            stable: 0,
            pending: Vec::new(),
            next_publish_id: 0,
            last_heard,
            tick: 0,
            view_change: None,
        }
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Whether this member is the current sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.view.sequencer() == self.me
    }

    /// Whether this member is the elected auditor.
    pub fn is_auditor(&self) -> bool {
        self.view.auditor() == self.me
    }

    /// Sequence number of the next message this member will deliver.
    pub fn delivered_up_to(&self) -> u64 {
        self.next_deliver
    }

    /// Number of publishes awaiting ordering.
    pub fn pending_publishes(&self) -> usize {
        self.pending.len()
    }

    /// Submits `payload` for total ordering.
    pub fn broadcast(&mut self, payload: T) -> Vec<Action<T>> {
        let publish_id = self.next_publish_id;
        self.next_publish_id += 1;
        self.pending.push(PendingPublish {
            publish_id,
            payload: payload.clone(),
            sent_tick: self.tick,
        });
        if self.is_sequencer() {
            self.assign(self.me, publish_id, payload)
        } else {
            vec![Action::Send {
                to: self.view.sequencer(),
                msg: TobMessage::Publish {
                    origin: self.me,
                    publish_id,
                    payload,
                },
            }]
        }
    }

    /// Sequencer path: assign the next seq and fan out.
    fn assign(&mut self, origin: MemberId, publish_id: u64, payload: T) -> Vec<Action<T>> {
        if let Some(&seq) = self.ordered_ids.get(&(origin, publish_id)) {
            // Duplicate publish (retransmission): re-send the assignment.
            let (o, p, pl) = self.log.get(&seq).cloned().expect("ordered in log");
            return if origin == self.me {
                vec![]
            } else {
                vec![Action::Send {
                    to: origin,
                    msg: TobMessage::Ordered {
                        view_id: self.view.id,
                        seq,
                        origin: o,
                        publish_id: p,
                        payload: pl,
                    },
                }]
            };
        }
        let seq = self.next_assign;
        self.next_assign += 1;
        self.ordered_ids.insert((origin, publish_id), seq);
        self.log.insert(seq, (origin, publish_id, payload.clone()));

        let mut actions = Vec::new();
        for &m in &self.view.members.clone() {
            if m != self.me {
                actions.push(Action::Send {
                    to: m,
                    msg: TobMessage::Ordered {
                        view_id: self.view.id,
                        seq,
                        origin,
                        publish_id,
                        payload: payload.clone(),
                    },
                });
            }
        }
        actions.extend(self.try_deliver());
        actions
    }

    /// Delivers every consecutive log entry from `next_deliver`.
    fn try_deliver(&mut self) -> Vec<Action<T>> {
        let mut actions = Vec::new();
        while let Some((origin, publish_id, payload)) = self.log.get(&self.next_deliver).cloned() {
            let seq = self.next_deliver;
            self.next_deliver += 1;
            // Completed publishes stop retransmitting.
            if origin == self.me {
                self.pending.retain(|p| p.publish_id != publish_id);
            }
            // At-most-once: a publish re-assigned across a view change must
            // not reach the application twice.
            if !self.delivered_ids.insert((origin, publish_id)) {
                continue;
            }
            actions.push(Action::Deliver {
                seq,
                origin,
                payload,
            });
        }
        actions
    }

    /// Handles an incoming protocol message.
    pub fn on_message(&mut self, from: MemberId, msg: TobMessage<T>) -> Vec<Action<T>> {
        self.last_heard.insert(from, self.tick);
        // False-suspicion repair: a member we excluded is demonstrably
        // alive (benign fault model: crashed members never speak).  The
        // sequencer proposes a view that re-admits it; the rejoiner
        // catches up through the ordinary StateRequest/NewView flow.
        let mut actions = if !self.view.contains(from)
            && self.view.contains(self.me)
            && self.view.sequencer() == self.me
            && self.view_change.is_none()
        {
            self.start_view_change_with(from)
        } else {
            Vec::new()
        };
        // View reconciliation: a peer ahead of us can catch us up; a peer
        // behind us (and still in our view) gets repaired by the
        // sequencer.  This heals dropped NewView messages.
        if let Some(view_id) = message_view_id(&msg) {
            if view_id > self.view.id {
                actions.push(Action::Send {
                    to: from,
                    msg: TobMessage::ViewProbe,
                });
            } else if view_id < self.view.id
                && self.is_sequencer()
                && self.view.contains(from)
            {
                actions.push(self.describe_view_to(from));
            }
        }
        actions.extend(self.handle_message(from, msg));
        actions
    }

    /// Builds a NewView snapshot of the current view for `to`.
    fn describe_view_to(&self, to: MemberId) -> Action<T> {
        let log: Vec<(u64, MemberId, u64, T)> = self
            .log
            .iter()
            .map(|(&s, (o, p, t))| (s, *o, *p, t.clone()))
            .collect();
        Action::Send {
            to,
            msg: TobMessage::NewView {
                view: self.view.clone(),
                log,
                next_assign: self.next_assign.max(self.seq_next_assign_seen),
            },
        }
    }

    fn start_view_change_with(&mut self, rejoiner: MemberId) -> Vec<Action<T>> {
        let mut members = self.view.members.clone();
        members.push(rejoiner);
        let proposed = View::new(self.view.id + 1, members);
        let waiting: HashSet<MemberId> = proposed
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect();
        let mut actions = Vec::new();
        for &m in &waiting {
            actions.push(Action::Send {
                to: m,
                msg: TobMessage::StateRequest {
                    proposed: proposed.clone(),
                },
            });
        }
        let empty = waiting.is_empty();
        self.view_change = Some(ViewChange {
            proposed,
            waiting,
            started_tick: self.tick,
        });
        if empty {
            actions.extend(self.finish_view_change());
        }
        actions
    }

    fn handle_message(&mut self, from: MemberId, msg: TobMessage<T>) -> Vec<Action<T>> {
        match msg {
            TobMessage::Publish {
                origin,
                publish_id,
                payload,
            } => {
                if !self.is_sequencer() || !self.view.contains(origin) {
                    return vec![];
                }
                self.assign(origin, publish_id, payload)
            }
            TobMessage::Ordered {
                view_id,
                seq,
                origin,
                publish_id,
                payload,
            } => {
                if view_id != self.view.id || from != self.view.sequencer() {
                    return vec![]; // Stale sequencer.
                }
                if seq >= self.next_deliver && !self.log.contains_key(&seq) {
                    self.ordered_ids.insert((origin, publish_id), seq);
                    self.log.insert(seq, (origin, publish_id, payload));
                }
                self.seq_next_assign_seen = self.seq_next_assign_seen.max(seq + 1);
                self.try_deliver()
            }
            TobMessage::Nack { from_seq, to_seq } => {
                if !self.is_sequencer() {
                    return vec![];
                }
                let mut actions = Vec::new();
                for seq in from_seq..to_seq.min(self.next_assign) {
                    if let Some((origin, publish_id, payload)) = self.log.get(&seq).cloned() {
                        actions.push(Action::Send {
                            to: from,
                            msg: TobMessage::Ordered {
                                view_id: self.view.id,
                                seq,
                                origin,
                                publish_id,
                                payload,
                            },
                        });
                    }
                }
                actions
            }
            TobMessage::Heartbeat {
                view_id,
                delivered_up_to,
                next_assign,
                stable,
            } => {
                if view_id != self.view.id {
                    return vec![];
                }
                if self.is_sequencer() {
                    self.delivered_watermarks.insert(from, delivered_up_to);
                }
                if from == self.view.sequencer() {
                    self.seq_next_assign_seen = self.seq_next_assign_seen.max(next_assign);
                    self.stable = self.stable.max(stable.min(self.next_deliver));
                    self.prune_log();
                }
                vec![]
            }
            TobMessage::StateRequest { proposed } => {
                if proposed.id <= self.view.id || !proposed.contains(self.me) {
                    return vec![];
                }
                let log: Vec<(u64, MemberId, u64, T)> = self
                    .log
                    .iter()
                    .map(|(&s, (o, p, t))| (s, *o, *p, t.clone()))
                    .collect();
                vec![Action::Send {
                    to: from,
                    msg: TobMessage::StateReply {
                        proposed_id: proposed.id,
                        log,
                        delivered_up_to: self.next_deliver,
                    },
                }]
            }
            TobMessage::StateReply {
                proposed_id,
                log,
                delivered_up_to: _,
            } => {
                let Some(vc) = self.view_change.as_mut() else {
                    return vec![];
                };
                if vc.proposed.id != proposed_id {
                    return vec![];
                }
                for (seq, origin, publish_id, payload) in log {
                    if seq >= self.next_deliver && !self.log.contains_key(&seq) {
                        self.ordered_ids.insert((origin, publish_id), seq);
                        self.log.insert(seq, (origin, publish_id, payload));
                    }
                }
                vc.waiting.remove(&from);
                let done = vc.waiting.is_empty();
                if done {
                    self.finish_view_change()
                } else {
                    vec![]
                }
            }
            TobMessage::ViewProbe => {
                vec![self.describe_view_to(from)]
            }
            TobMessage::NewView {
                view,
                log,
                next_assign,
            } => {
                if view.id <= self.view.id || !view.contains(self.me) {
                    return vec![];
                }
                for (seq, origin, publish_id, payload) in log {
                    if seq >= self.next_deliver && !self.log.contains_key(&seq) {
                        self.ordered_ids.insert((origin, publish_id), seq);
                        self.log.insert(seq, (origin, publish_id, payload));
                    }
                }
                self.install_view(view, next_assign)
            }
        }
    }

    fn install_view(&mut self, view: View, next_assign: u64) -> Vec<Action<T>> {
        self.view = view.clone();
        self.view_change = None;
        self.next_assign = next_assign;
        self.seq_next_assign_seen = self.seq_next_assign_seen.max(next_assign);
        self.delivered_watermarks.clear();
        // Reset suspicion for surviving members.
        self.last_heard = view.members.iter().map(|&m| (m, self.tick)).collect();

        let mut actions = vec![Action::ViewInstalled(view)];
        actions.extend(self.try_deliver());
        // Retransmit in-flight publishes to the (possibly new) sequencer.
        actions.extend(self.retransmit_pending());
        actions
    }

    fn finish_view_change(&mut self) -> Vec<Action<T>> {
        let vc = self.view_change.take().expect("in view change");
        let next_assign = self
            .log
            .keys()
            .next_back()
            .map(|&s| s + 1)
            .unwrap_or(0)
            .max(self.next_assign)
            .max(self.seq_next_assign_seen);
        let log: Vec<(u64, MemberId, u64, T)> = self
            .log
            .iter()
            .map(|(&s, (o, p, t))| (s, *o, *p, t.clone()))
            .collect();

        let mut actions = Vec::new();
        for &m in &vc.proposed.members {
            if m != self.me {
                actions.push(Action::Send {
                    to: m,
                    msg: TobMessage::NewView {
                        view: vc.proposed.clone(),
                        log: log.clone(),
                        next_assign,
                    },
                });
            }
        }
        actions.extend(self.install_view(vc.proposed, next_assign));
        actions
    }

    fn retransmit_pending(&mut self) -> Vec<Action<T>> {
        let seq_member = self.view.sequencer();
        let mut actions = Vec::new();
        let tick = self.tick;
        let me = self.me;
        let mut to_assign: Vec<(u64, T)> = Vec::new();
        for p in &mut self.pending {
            p.sent_tick = tick;
            if seq_member == me {
                to_assign.push((p.publish_id, p.payload.clone()));
            } else {
                actions.push(Action::Send {
                    to: seq_member,
                    msg: TobMessage::Publish {
                        origin: me,
                        publish_id: p.publish_id,
                        payload: p.payload.clone(),
                    },
                });
            }
        }
        for (publish_id, payload) in to_assign {
            actions.extend(self.assign(me, publish_id, payload));
        }
        actions
    }

    fn prune_log(&mut self) {
        let cut = self.stable.min(self.next_deliver);
        let keep = self.log.split_off(&cut);
        for (_, (origin, publish_id, _)) in std::mem::replace(&mut self.log, keep) {
            self.ordered_ids.remove(&(origin, publish_id));
        }
    }

    /// Advances the engine's clock by one tick: heartbeats, gap nacks,
    /// publish retransmission, failure suspicion, and view-change duty.
    pub fn on_tick(&mut self) -> Vec<Action<T>> {
        self.tick += 1;
        let mut actions = Vec::new();

        // Heartbeats.
        if self.tick.is_multiple_of(u64::from(self.config.heartbeat_every)) {
            let stable = if self.is_sequencer() {
                let mut min = self.next_deliver;
                for &m in &self.view.members {
                    if m != self.me {
                        min = min.min(*self.delivered_watermarks.get(&m).unwrap_or(&0));
                    }
                }
                self.stable = min;
                self.prune_log();
                min
            } else {
                0
            };
            let hb = TobMessage::Heartbeat {
                view_id: self.view.id,
                delivered_up_to: self.next_deliver,
                next_assign: if self.is_sequencer() {
                    self.next_assign
                } else {
                    0
                },
                stable,
            };
            // Gossip to the full static group, not just the current view:
            // a falsely excluded member keeps announcing itself and keeps
            // hearing about newer views, so partitions always heal.
            for &m in &self.initial_members {
                if m != self.me {
                    actions.push(Action::Send {
                        to: m,
                        msg: hb.clone(),
                    });
                }
            }
        }

        // Gap detection: the sequencer has advertised assignments past what
        // we hold contiguously.
        if !self.is_sequencer() && self.seq_next_assign_seen > self.next_deliver {
            let first_missing = (self.next_deliver..self.seq_next_assign_seen)
                .find(|s| !self.log.contains_key(s));
            if let Some(from_seq) = first_missing {
                actions.push(Action::Send {
                    to: self.view.sequencer(),
                    msg: TobMessage::Nack {
                        from_seq,
                        to_seq: self.seq_next_assign_seen,
                    },
                });
            }
        }

        // Publish retransmission.
        let resend_cut = self.tick.saturating_sub(u64::from(self.config.resend_after));
        if !self.is_sequencer() {
            let seq_member = self.view.sequencer();
            for p in &mut self.pending {
                if p.sent_tick <= resend_cut {
                    p.sent_tick = self.tick;
                    actions.push(Action::Send {
                        to: seq_member,
                        msg: TobMessage::Publish {
                            origin: self.me,
                            publish_id: p.publish_id,
                            payload: p.payload.clone(),
                        },
                    });
                }
            }
        }

        // Failure suspicion & view change coordination.
        let suspect_cut = self.tick.saturating_sub(u64::from(self.config.suspect_after));
        let suspected: Vec<MemberId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|&m| {
                m != self.me && *self.last_heard.get(&m).unwrap_or(&0) <= suspect_cut
            })
            .collect();

        if !suspected.is_empty() && self.tick > u64::from(self.config.suspect_after) {
            let survivors: Vec<MemberId> = self
                .view
                .members
                .iter()
                .copied()
                .filter(|m| !suspected.contains(m))
                .collect();
            let coordinator = survivors.first().copied();
            if coordinator == Some(self.me) && self.view_change.is_none() {
                let proposed = View::new(self.view.id + 1, survivors.clone());
                let waiting: HashSet<MemberId> = proposed
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != self.me)
                    .collect();
                if waiting.is_empty() {
                    self.view_change = Some(ViewChange {
                        proposed,
                        waiting,
                        started_tick: self.tick,
                    });
                    actions.extend(self.finish_view_change());
                } else {
                    for &m in &waiting.clone() {
                        actions.push(Action::Send {
                            to: m,
                            msg: TobMessage::StateRequest {
                                proposed: proposed.clone(),
                            },
                        });
                    }
                    self.view_change = Some(ViewChange {
                        proposed,
                        waiting,
                        started_tick: self.tick,
                    });
                }
            }
        }

        // View-change timeout: drop non-responders and re-propose.
        if let Some(vc) = &self.view_change {
            if self.tick.saturating_sub(vc.started_tick) > u64::from(self.config.suspect_after) {
                let stalled: Vec<MemberId> = vc.waiting.iter().copied().collect();
                let proposed = View::new(vc.proposed.id + 1, {
                    vc.proposed
                        .members
                        .iter()
                        .copied()
                        .filter(|m| !stalled.contains(m))
                        .collect()
                });
                let waiting: HashSet<MemberId> = proposed
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != self.me)
                    .collect();
                let mut acts = Vec::new();
                for &m in &waiting {
                    acts.push(Action::Send {
                        to: m,
                        msg: TobMessage::StateRequest {
                            proposed: proposed.clone(),
                        },
                    });
                }
                let empty = waiting.is_empty();
                self.view_change = Some(ViewChange {
                    proposed,
                    waiting,
                    started_tick: self.tick,
                });
                if empty {
                    acts.extend(self.finish_view_change());
                }
                actions.extend(acts);
            }
        }

        actions
    }
}

/// Extracts the view id advertised by a message, when it carries one.
fn message_view_id<T>(msg: &TobMessage<T>) -> Option<u64> {
    match msg {
        TobMessage::Ordered { view_id, .. } | TobMessage::Heartbeat { view_id, .. } => {
            Some(*view_id)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A tiny lockstep harness: delivers all actions, optionally dropping
    /// messages, and collects per-member delivery logs.
    struct Harness {
        engines: Vec<TotalOrder<String>>,
        delivered: Vec<Vec<(u64, String)>>,
        crashed: Vec<bool>,
        in_flight: VecDeque<(MemberId, MemberId, TobMessage<String>)>,
        drop_next: usize,
    }

    impl Harness {
        fn new(n: usize) -> Self {
            Harness {
                engines: (0..n)
                    .map(|i| TotalOrder::new(MemberId(i as u32), n, TobConfig::default()))
                    .collect(),
                delivered: vec![Vec::new(); n],
                crashed: vec![false; n],
                in_flight: VecDeque::new(),
                drop_next: 0,
            }
        }

        fn apply(&mut self, me: MemberId, actions: Vec<Action<String>>) {
            for a in actions {
                match a {
                    Action::Send { to, msg } => {
                        if self.drop_next > 0 {
                            self.drop_next -= 1;
                            continue;
                        }
                        self.in_flight.push_back((me, to, msg));
                    }
                    Action::Deliver { seq, payload, .. } => {
                        self.delivered[me.index()].push((seq, payload));
                    }
                    Action::ViewInstalled(_) => {}
                }
            }
        }

        fn pump(&mut self) {
            while let Some((from, to, msg)) = self.in_flight.pop_front() {
                if self.crashed[to.index()] {
                    continue;
                }
                let actions = self.engines[to.index()].on_message(from, msg);
                self.apply(to, actions);
            }
        }

        fn tick_all(&mut self) {
            for i in 0..self.engines.len() {
                if self.crashed[i] {
                    continue;
                }
                let actions = self.engines[i].on_tick();
                self.apply(MemberId(i as u32), actions);
            }
            self.pump();
        }

        fn broadcast(&mut self, from: usize, payload: &str) {
            let actions = self.engines[from].broadcast(payload.to_string());
            self.apply(MemberId(from as u32), actions);
            self.pump();
        }
    }

    #[test]
    fn all_members_deliver_in_same_order() {
        let mut h = Harness::new(4);
        h.broadcast(1, "a");
        h.broadcast(2, "b");
        h.broadcast(0, "c");
        h.broadcast(3, "d");
        let reference = h.delivered[0].clone();
        assert_eq!(reference.len(), 4);
        for d in &h.delivered {
            assert_eq!(*d, reference);
        }
    }

    #[test]
    fn sequencer_is_lowest_auditor_is_highest() {
        let h = Harness::new(3);
        assert!(h.engines[0].is_sequencer());
        assert!(!h.engines[2].is_sequencer());
        assert!(h.engines[2].is_auditor());
    }

    #[test]
    fn concurrent_publishes_get_distinct_seqs() {
        let mut h = Harness::new(3);
        for i in 0..10 {
            let from = i % 3;
            h.broadcast(from, &format!("m{i}"));
        }
        let seqs: Vec<u64> = h.delivered[1].iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        assert_eq!(h.delivered[0], h.delivered[2]);
    }

    #[test]
    fn lost_ordered_message_recovered_by_nack() {
        let mut h = Harness::new(3);
        h.broadcast(0, "first");
        // Drop the next 2 sends (the Ordered fan-out of "second").
        h.drop_next = 2;
        h.broadcast(0, "second");
        h.broadcast(0, "third");
        // Members 1,2 have a gap at seq 1; ticks trigger nacks.
        for _ in 0..6 {
            h.tick_all();
        }
        for d in &h.delivered {
            let payloads: Vec<&str> = d.iter().map(|(_, p)| p.as_str()).collect();
            assert_eq!(payloads, vec!["first", "second", "third"]);
        }
    }

    #[test]
    fn lost_publish_retransmitted() {
        let mut h = Harness::new(3);
        h.drop_next = 1; // Drop the Publish from member 2 to the sequencer.
        h.broadcast(2, "hello");
        assert!(h.delivered[0].is_empty());
        for _ in 0..8 {
            h.tick_all();
        }
        assert_eq!(h.delivered[0][0].1, "hello");
        assert_eq!(h.delivered[2][0].1, "hello");
        assert_eq!(h.engines[2].pending_publishes(), 0);
    }

    #[test]
    fn sequencer_crash_triggers_view_change_and_progress() {
        let mut h = Harness::new(4);
        h.broadcast(0, "before");
        h.crashed[0] = true;
        // Enough ticks for suspicion (suspect_after=8) + view change.
        for _ in 0..20 {
            h.tick_all();
        }
        assert_eq!(h.engines[1].view().sequencer(), MemberId(1));
        assert_eq!(h.engines[1].view().auditor(), MemberId(3));
        assert!(h.engines[1].view().id >= 1);
        assert_eq!(h.engines[2].view(), h.engines[1].view());

        // The group still makes progress.
        h.broadcast(2, "after");
        for _ in 0..4 {
            h.tick_all();
        }
        let p1: Vec<&str> = h.delivered[1].iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(p1, vec!["before", "after"]);
        assert_eq!(h.delivered[1], h.delivered[3]);
    }

    #[test]
    fn non_sequencer_crash_removes_it_from_view() {
        let mut h = Harness::new(4);
        h.crashed[2] = true;
        for _ in 0..20 {
            h.tick_all();
        }
        let v = h.engines[0].view();
        assert!(!v.contains(MemberId(2)));
        assert_eq!(v.sequencer(), MemberId(0));
        assert_eq!(v.auditor(), MemberId(3));
    }

    #[test]
    fn pending_publish_survives_sequencer_crash() {
        let mut h = Harness::new(3);
        // Member 1 publishes but the sequencer crashes before fan-out: drop
        // the publish entirely and crash 0.
        h.drop_next = 1;
        h.broadcast(1, "orphan");
        h.crashed[0] = true;
        for _ in 0..25 {
            h.tick_all();
        }
        // After the view change, member 1 retransmits to the new sequencer
        // (itself) and everyone delivers.
        let p2: Vec<&str> = h.delivered[2].iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(p2, vec!["orphan"]);
    }

    #[test]
    fn cascading_crashes_leave_singleton_view() {
        let mut h = Harness::new(3);
        h.broadcast(0, "x");
        h.crashed[0] = true;
        h.crashed[2] = true;
        for _ in 0..40 {
            h.tick_all();
        }
        let v = h.engines[1].view();
        assert_eq!(v.members, vec![MemberId(1)]);
        assert!(h.engines[1].is_sequencer());
        assert!(h.engines[1].is_auditor());
        // Still operational.
        h.broadcast(1, "alone");
        let p: Vec<&str> = h.delivered[1].iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(p, vec!["x", "alone"]);
    }

    #[test]
    fn no_duplicate_delivery_under_retransmission_storm() {
        let mut h = Harness::new(3);
        h.broadcast(1, "once");
        // Force many redundant retransmissions.
        for _ in 0..10 {
            let acts = h.engines[1].broadcast("again".to_string());
            h.apply(MemberId(1), acts);
            h.pump();
            h.tick_all();
        }
        let firsts = h.delivered[0]
            .iter()
            .filter(|(_, p)| p == "once")
            .count();
        assert_eq!(firsts, 1);
        for d in &h.delivered {
            assert_eq!(d, &h.delivered[0]);
        }
    }

    #[test]
    fn log_pruning_after_stability() {
        let mut h = Harness::new(3);
        for i in 0..20 {
            h.broadcast(0, &format!("m{i}"));
        }
        // Several heartbeat rounds let the sequencer learn watermarks and
        // advertise stability.
        for _ in 0..6 {
            h.tick_all();
        }
        assert!(
            h.engines[0].log.len() < 20,
            "sequencer log should be pruned, has {}",
            h.engines[0].log.len()
        );
    }
}
