//! Reliable total-order broadcast for the trusted master set.
//!
//! The paper assumes (Section 3): "masters [are] fully connected to each
//! other through secure communication links, and implement a reliable,
//! total-ordering, broadcast protocol that can tolerate benign
//! (non-malicious) server failures.  The broadcast protocol itself is
//! outside the scope of this paper; a good choice could be for example the
//! protocol described in [8]" — Kaashoek et al.'s sequencer-based protocol.
//! "Through the same broadcast protocol, the masters also elect one of them
//! to function as an auditor."
//!
//! This crate implements that substrate:
//!
//! * [`engine::TotalOrder`] — a **sans-io** protocol state machine: a
//!   fixed-at-construction group of members, one of which (the lowest
//!   ranked in the current view) acts as *sequencer*.  Publishers send to
//!   the sequencer, which assigns sequence numbers and re-broadcasts;
//!   members deliver strictly in sequence order, negative-acknowledge
//!   gaps, and the sequencer retransmits from its log.
//! * [`view::View`] — membership views.  Heartbeats detect benign crashes;
//!   the lowest surviving member runs a view change, reconciling logs with
//!   every survivor before installing the new view.  Election falls out of
//!   the view deterministically: the *sequencer* is the lowest surviving
//!   rank and the *auditor* the highest (matching the paper's "elect one
//!   of them to function as an auditor").
//!
//! Being sans-io, the engine returns [`engine::Action`]s (send / deliver /
//! view-installed) instead of doing I/O, so `sdr-core` embeds it inside
//! simulated master processes and unit tests drive it directly.
//!
//! Fault model: crash-stop (benign) failures, including the sequencer.
//! Masters are trusted, so Byzantine behaviour is out of scope by the
//! paper's own system model.  Data-plane messages (publish/ordered/nack)
//! tolerate arbitrary loss and reordering via retransmission; the
//! membership control plane (heartbeats, view changes) is assumed
//! reliable, matching the paper's "fully connected … through secure
//! communication links" masters.  False suspicion is healed: an excluded
//! member that is demonstrably alive is re-admitted by the sequencer, and
//! at-most-once delivery per publish is preserved across such view
//! changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod view;

pub use engine::{Action, TobConfig, TobMessage, TotalOrder};
pub use view::{MemberId, View};
