//! Membership views over the master group.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A member's rank within the (fixed) master group.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MemberId(pub u32);

impl MemberId {
    /// Dense index of this member.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An installed membership view: which masters are believed alive.
///
/// Roles are a deterministic function of the membership, so every member
/// that installs the view agrees without further messages:
/// the **sequencer** is the lowest-ranked member, the **auditor** the
/// highest-ranked (when the view has at least two members; in a singleton
/// view the survivor plays both roles).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Monotonic view number.
    pub id: u64,
    /// Live members, sorted ascending.
    pub members: Vec<MemberId>,
}

impl View {
    /// Creates the initial view over `n` members (view id 0).
    pub fn initial(n: usize) -> Self {
        View {
            id: 0,
            members: (0..n as u32).map(MemberId).collect(),
        }
    }

    /// Creates a view with the given id and members (sorted internally).
    pub fn new(id: u64, mut members: Vec<MemberId>) -> Self {
        members.sort_unstable();
        members.dedup();
        View { id, members }
    }

    /// The sequencer for this view (lowest rank).
    ///
    /// # Panics
    ///
    /// Panics on an empty view, which the engine never installs.
    pub fn sequencer(&self) -> MemberId {
        *self.members.first().expect("non-empty view")
    }

    /// The auditor elected by this view (highest rank).
    pub fn auditor(&self) -> MemberId {
        *self.members.last().expect("non-empty view")
    }

    /// Whether `m` is in the view.
    pub fn contains(&self, m: MemberId) -> bool {
        self.members.binary_search(&m).is_ok()
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty (never true for installed views).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The view resulting from removing `dead` members (id bumped).
    pub fn without(&self, dead: &[MemberId]) -> View {
        View {
            id: self.id + 1,
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !dead.contains(m))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_roles() {
        let v = View::initial(4);
        assert_eq!(v.id, 0);
        assert_eq!(v.len(), 4);
        assert_eq!(v.sequencer(), MemberId(0));
        assert_eq!(v.auditor(), MemberId(3));
    }

    #[test]
    fn roles_after_failures() {
        let v = View::initial(4).without(&[MemberId(0), MemberId(3)]);
        assert_eq!(v.id, 1);
        assert_eq!(v.sequencer(), MemberId(1));
        assert_eq!(v.auditor(), MemberId(2));
    }

    #[test]
    fn singleton_view_plays_both_roles() {
        let v = View::new(5, vec![MemberId(2)]);
        assert_eq!(v.sequencer(), MemberId(2));
        assert_eq!(v.auditor(), MemberId(2));
    }

    #[test]
    fn membership_queries() {
        let v = View::new(1, vec![MemberId(3), MemberId(1)]);
        assert!(v.contains(MemberId(1)));
        assert!(!v.contains(MemberId(2)));
        assert_eq!(v.members, vec![MemberId(1), MemberId(3)]);
    }

    #[test]
    fn new_dedups() {
        let v = View::new(1, vec![MemberId(1), MemberId(1), MemberId(2)]);
        assert_eq!(v.len(), 2);
    }
}
