//! Property-based tests for total-order broadcast: agreement and validity
//! under random publish interleavings and message loss.

use proptest::prelude::*;
use sdr_broadcast::{Action, MemberId, TobConfig, TobMessage, TotalOrder};
use std::collections::VecDeque;

/// Deterministic lockstep harness with scriptable drops.
struct Net {
    engines: Vec<TotalOrder<u32>>,
    delivered: Vec<Vec<(u64, u32)>>,
    in_flight: VecDeque<(MemberId, MemberId, TobMessage<u32>)>,
    drop_script: Vec<bool>,
    drop_pos: usize,
}

impl Net {
    fn new(n: usize) -> Self {
        Net {
            engines: (0..n)
                .map(|i| TotalOrder::new(MemberId(i as u32), n, TobConfig::default()))
                .collect(),
            delivered: vec![Vec::new(); n],
            in_flight: VecDeque::new(),
            drop_script: Vec::new(),
            drop_pos: 0,
        }
    }

    fn should_drop(&mut self) -> bool {
        let d = self.drop_script.get(self.drop_pos).copied().unwrap_or(false);
        self.drop_pos += 1;
        d
    }

    fn apply(&mut self, me: MemberId, actions: Vec<Action<u32>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    // The loss model covers the data plane only: the
                    // membership control plane (heartbeats, view changes)
                    // rides the masters' "secure communication links",
                    // which we model as reliable — see the crate docs.
                    let droppable = matches!(
                        msg,
                        TobMessage::Publish { .. }
                            | TobMessage::Ordered { .. }
                            | TobMessage::Nack { .. }
                    );
                    if droppable && self.should_drop() {
                        continue;
                    }
                    self.in_flight.push_back((me, to, msg));
                }
                Action::Deliver { seq, payload, .. } => {
                    self.delivered[me.index()].push((seq, payload));
                }
                Action::ViewInstalled(_) => {}
            }
        }
    }

    fn pump(&mut self) {
        while let Some((from, to, msg)) = self.in_flight.pop_front() {
            let acts = self.engines[to.index()].on_message(from, msg);
            self.apply(to, acts);
        }
    }

    fn tick_all(&mut self) {
        for i in 0..self.engines.len() {
            let acts = self.engines[i].on_tick();
            self.apply(MemberId(i as u32), acts);
        }
        self.pump();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Agreement + validity: whatever interleaving of publishers, every
    /// member delivers the same sequence, which contains exactly the
    /// published payloads.
    #[test]
    fn agreement_under_random_publish_order(
        publishes in proptest::collection::vec((0usize..4, any::<u32>()), 1..25),
    ) {
        let mut net = Net::new(4);
        for (from, payload) in &publishes {
            let acts = net.engines[*from].broadcast(*payload);
            net.apply(MemberId(*from as u32), acts);
            net.pump();
        }
        for _ in 0..4 {
            net.tick_all();
        }
        let reference = net.delivered[0].clone();
        prop_assert_eq!(reference.len(), publishes.len());
        for d in &net.delivered {
            prop_assert_eq!(d, &reference);
        }
        // Validity: multiset of payloads matches what was published.
        let mut got: Vec<u32> = reference.iter().map(|(_, p)| *p).collect();
        let mut want: Vec<u32> = publishes.iter().map(|(_, p)| *p).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Under random message loss, retransmission still delivers everything
    /// in agreement (given enough ticks).
    #[test]
    fn recovery_under_random_loss(
        publishes in proptest::collection::vec((0usize..3, any::<u32>()), 1..12),
        drops in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let mut net = Net::new(3);
        // Drop at most the scripted prefix; afterwards the network heals.
        net.drop_script = drops;
        for (from, payload) in &publishes {
            let acts = net.engines[*from].broadcast(*payload);
            net.apply(MemberId(*from as u32), acts);
            net.pump();
        }
        for _ in 0..60 {
            net.tick_all();
        }
        let reference = net.delivered[0].clone();
        prop_assert_eq!(reference.len(), publishes.len(),
            "lost messages never recovered");
        for d in &net.delivered {
            prop_assert_eq!(d, &reference);
        }
    }

    /// Sequence numbers are dense and start at zero.
    #[test]
    fn seqs_are_dense(publishes in proptest::collection::vec(any::<u32>(), 1..20)) {
        let mut net = Net::new(2);
        for p in &publishes {
            let acts = net.engines[1].broadcast(*p);
            net.apply(MemberId(1), acts);
            net.pump();
        }
        let seqs: Vec<u64> = net.delivered[0].iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(seqs, (0..publishes.len() as u64).collect::<Vec<_>>());
    }
}
