//! Write access control.
//!
//! Section 2: the content owner "is in charge of setting an access control
//! policy … only concerned with operations that modify the content" (data
//! secrecy is explicitly out of scope).

use sdr_sim::NodeId;
use sdr_store::UpdateOp;
use std::collections::HashSet;

/// The content owner's write policy, enforced by every master.
#[derive(Clone, Debug, Default)]
pub struct WritePolicy {
    /// Clients allowed to write anywhere.
    writers: HashSet<NodeId>,
    /// Clients allowed to write only under specific path prefixes /
    /// tables: `(client, prefix-or-table)` pairs.
    scoped: HashSet<(NodeId, String)>,
    /// When true, unknown clients may write (open policy — test rigs).
    pub open: bool,
}

impl WritePolicy {
    /// A policy that rejects every write from everyone.
    pub fn deny_all() -> Self {
        WritePolicy::default()
    }

    /// A policy that lets anyone write (simulation default).
    pub fn allow_all() -> Self {
        WritePolicy {
            open: true,
            ..WritePolicy::default()
        }
    }

    /// Grants `client` unrestricted write access.
    pub fn grant(&mut self, client: NodeId) {
        self.writers.insert(client);
    }

    /// Grants `client` write access to one table name or path prefix.
    pub fn grant_scope(&mut self, client: NodeId, scope: impl Into<String>) {
        self.scoped.insert((client, scope.into()));
    }

    /// Revokes all grants for `client`.
    pub fn revoke(&mut self, client: NodeId) {
        self.writers.remove(&client);
        self.scoped.retain(|(c, _)| *c != client);
    }

    fn op_scope(op: &UpdateOp) -> &str {
        match op {
            UpdateOp::CreateTable { table, .. }
            | UpdateOp::Insert { table, .. }
            | UpdateOp::Upsert { table, .. }
            | UpdateOp::Update { table, .. }
            | UpdateOp::Delete { table, .. } => table,
            UpdateOp::WriteFile { path, .. }
            | UpdateOp::AppendFile { path, .. }
            | UpdateOp::DeleteFile { path } => path,
        }
    }

    /// Whether `client` may apply every operation in `ops`.
    pub fn allows(&self, client: NodeId, ops: &[UpdateOp]) -> bool {
        if self.open || self.writers.contains(&client) {
            return true;
        }
        ops.iter().all(|op| {
            let scope = Self::op_scope(op);
            self.scoped
                .iter()
                .any(|(c, s)| *c == client && scope.starts_with(s.as_str()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_store::Document;

    fn table_op(table: &str) -> UpdateOp {
        UpdateOp::Upsert {
            table: table.into(),
            key: 1,
            doc: Document::new(),
        }
    }

    fn file_op(path: &str) -> UpdateOp {
        UpdateOp::WriteFile {
            path: path.into(),
            contents: String::new(),
        }
    }

    #[test]
    fn deny_all_denies() {
        let p = WritePolicy::deny_all();
        assert!(!p.allows(NodeId(1), &[table_op("t")]));
    }

    #[test]
    fn allow_all_allows() {
        let p = WritePolicy::allow_all();
        assert!(p.allows(NodeId(1), &[table_op("t"), file_op("/x")]));
    }

    #[test]
    fn full_grant() {
        let mut p = WritePolicy::deny_all();
        p.grant(NodeId(1));
        assert!(p.allows(NodeId(1), &[table_op("t")]));
        assert!(!p.allows(NodeId(2), &[table_op("t")]));
    }

    #[test]
    fn scoped_grant_checks_prefix() {
        let mut p = WritePolicy::deny_all();
        p.grant_scope(NodeId(1), "/home/alice");
        assert!(p.allows(NodeId(1), &[file_op("/home/alice/notes")]));
        assert!(!p.allows(NodeId(1), &[file_op("/home/bob/notes")]));
        // Mixed batches need every op allowed.
        assert!(!p.allows(
            NodeId(1),
            &[file_op("/home/alice/a"), file_op("/etc/passwd")]
        ));
    }

    #[test]
    fn scoped_grant_on_tables() {
        let mut p = WritePolicy::deny_all();
        p.grant_scope(NodeId(3), "inventory");
        assert!(p.allows(NodeId(3), &[table_op("inventory")]));
        assert!(!p.allows(NodeId(3), &[table_op("payroll")]));
    }

    #[test]
    fn revoke_removes_everything() {
        let mut p = WritePolicy::deny_all();
        p.grant(NodeId(1));
        p.grant_scope(NodeId(1), "t");
        p.revoke(NodeId(1));
        assert!(!p.allows(NodeId(1), &[table_op("t")]));
    }
}
