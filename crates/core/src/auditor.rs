//! The background auditor (Section 3.4).
//!
//! The auditor is the master elected by the group's broadcast protocol (the
//! highest rank in the current view; see `sdr-broadcast`).  It holds no
//! slave set and serves no double-checks.  Its sole duty is replaying every
//! pledged read and comparing hashes.
//!
//! Faithful to the paper, the auditor **lags on writes**: "it executes a
//! write only after it has audited all the read requests for the
//! `content_version` that precedes that write", and it advances to a new
//! version "only after a sufficiently large time interval (more than
//! `max_latency`) has elapsed since the rest of the trusted servers have
//! moved to that same content version", which guarantees no client will
//! still accept results for the version it is closing out.
//!
//! Its throughput advantages over slaves, all modeled here, are exactly the
//! paper's four: it signs nothing, it answers nobody, it may cache results
//! (it replays a known query stream), and it can spread work over idle
//! off-peak hours — the lag metric visualised by experiment E7.

use crate::config::SystemConfig;
use crate::evidence::{Discovery, Evidence};
use crate::pledge::{Pledge, ResultHash};
use sdr_crypto::PublicKey;
use sdr_sim::{Ctx, NodeId, SimTime};
use sdr_store::{execute, Database, QueryCache, UpdateOp};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Outcome of one audit slice, to be routed by the owning master.
#[derive(Debug)]
pub struct AuditFinding {
    /// The convicted slave.
    pub slave: NodeId,
    /// Self-contained proof.
    pub evidence: Evidence,
}

/// The auditor's private state (embedded in every master; only the elected
/// auditor receives pledges, but keeping the lagging replica warm on every
/// master makes auditor failover cheap).
pub struct AuditorState {
    cfg: SystemConfig,
    /// The lagging replica: at version `v` while pledges for `v` are
    /// being audited.
    db: Database,
    /// Committed writes not yet applied to the lagging replica.
    pending_writes: BTreeMap<u64, Vec<UpdateOp>>,
    /// When each version committed at this master (drives the advance
    /// rule).
    commit_times: BTreeMap<u64, SimTime>,
    /// Pledges bucketed by the version their stamp names.
    buckets: BTreeMap<u64, VecDeque<Pledge>>,
    cache: QueryCache,
    backlog: u64,
}

impl AuditorState {
    /// Creates the state from the initial replica.
    pub fn new(cfg: &SystemConfig, initial: Database, now: SimTime) -> Self {
        let mut commit_times = BTreeMap::new();
        commit_times.insert(initial.version(), now);
        AuditorState {
            cache: QueryCache::new(cfg.auditor_cache_capacity),
            cfg: cfg.clone(),
            db: initial,
            pending_writes: BTreeMap::new(),
            commit_times,
            buckets: BTreeMap::new(),
            backlog: 0,
        }
    }

    /// Version currently under audit.
    pub fn audit_version(&self) -> u64 {
        self.db.version()
    }

    /// Pledges waiting across all buckets.
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Result-cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Records a write the master group committed (the auditor applies it
    /// later, per the lag rule).
    pub fn on_write_committed(&mut self, version: u64, ops: Vec<UpdateOp>, now: SimTime) {
        self.commit_times.insert(version, now);
        self.pending_writes.insert(version, ops);
    }

    /// Accepts a pledge for background verification.
    pub fn enqueue(&mut self, pledge: Pledge, metrics: &mut sdr_sim::Metrics) {
        let version = pledge.stamp.version;
        if version < self.db.version() {
            // Its bucket already closed: under the advance rule no client
            // can still accept this answer, so it was either checked in
            // time or never mattered.
            metrics.inc("audit.late");
            return;
        }
        let newest_known = self
            .commit_times
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0);
        if version > newest_known + 8 {
            // A stamp for a far-future version cannot have a valid master
            // signature; don't let garbage accumulate.
            metrics.inc("audit.bogus_version");
            return;
        }
        metrics.inc("audit.submitted");
        self.backlog += 1;
        self.buckets.entry(version).or_default().push_back(pledge);
    }

    /// Seconds of audit lag: how far behind the newest committed version
    /// the lagging replica is, in commit-time terms.
    pub fn lag(&self, now: SimTime) -> sdr_sim::SimDuration {
        match self.pending_writes.keys().next() {
            Some(oldest_pending) => {
                let t = self
                    .commit_times
                    .get(oldest_pending)
                    .copied()
                    .unwrap_or(now);
                now.since(t)
            }
            None => sdr_sim::SimDuration::ZERO,
        }
    }

    /// Whether the advance rule permits moving to `version + 1` at `now`.
    fn may_advance(&self, now: SimTime) -> bool {
        let next = self.db.version() + 1;
        match (self.pending_writes.get(&next), self.commit_times.get(&next)) {
            (Some(_), Some(&committed)) => {
                now.since(committed) > self.cfg.max_latency + self.cfg.keepalive_period
            }
            _ => false,
        }
    }

    /// Runs one audit slice bounded by `cfg.audit_slice` of virtual CPU.
    ///
    /// Returns findings (wrong pledges with evidence) for the master to
    /// route to the slaves' owners.
    pub fn process_slice(
        &mut self,
        ctx: &mut Ctx<'_, crate::messages::Msg>,
        slave_keys: &HashMap<NodeId, PublicKey>,
        master_keys: &HashMap<NodeId, PublicKey>,
    ) -> Vec<AuditFinding> {
        let budget = self.cfg.audit_slice;
        let start = ctx.charged();
        let mut findings = Vec::new();

        loop {
            if ctx.charged().since_start(start) >= budget {
                break;
            }
            let va = self.db.version();
            let has_pledge = self
                .buckets
                .get(&va)
                .is_some_and(|b| !b.is_empty());

            if has_pledge {
                let pledge = self
                    .buckets
                    .get_mut(&va)
                    .and_then(VecDeque::pop_front)
                    .expect("checked non-empty");
                self.backlog = self.backlog.saturating_sub(1);

                // Sampled auditing (overload fallback, Section 3.4).
                if self.cfg.audit_fraction < 1.0 && ctx.coin() >= self.cfg.audit_fraction {
                    ctx.metrics().inc("audit.skipped_sampling");
                    continue;
                }

                // Verify the two signatures; unverifiable pledges cannot
                // convict anyone and are dropped.
                ctx.charge(ctx.costs().verify * 2);
                let sig_ok = slave_keys
                    .get(&pledge.slave)
                    .is_some_and(|k| pledge.verify_signature(k).is_ok());
                let stamp_ok = master_keys
                    .get(&pledge.stamp.master)
                    .is_some_and(|k| pledge.stamp.verify(k).is_ok());
                if !sig_ok || !stamp_ok {
                    ctx.metrics().inc("audit.unverifiable");
                    continue;
                }

                // Re-execute (with the cache — the paper's optimisation).
                let result = if self.cfg.auditor_cache {
                    ctx.charge(ctx.costs().cache_lookup);
                    match self.cache.get(va, &pledge.query) {
                        Some(r) => {
                            ctx.metrics().inc("audit.cache_hit");
                            Some(r)
                        }
                        None => match execute(&self.db, &pledge.query) {
                            Ok((r, qcost)) => {
                                ctx.charge(crate::cost::query_charge(
                                    &qcost,
                                    r.size(),
                                    ctx.costs(),
                                ));
                                self.cache.put(va, &pledge.query, r.clone());
                                Some(r)
                            }
                            Err(_) => None,
                        },
                    }
                } else {
                    match execute(&self.db, &pledge.query) {
                        Ok((r, qcost)) => {
                            ctx.charge(crate::cost::query_charge(&qcost, r.size(), ctx.costs()));
                            Some(r)
                        }
                        Err(_) => None,
                    }
                };
                let Some(result) = result else {
                    ctx.metrics().inc("audit.query_errors");
                    continue;
                };
                ctx.charge(ctx.costs().hash_cost(result.size()));
                ctx.metrics().inc("audit.checked");

                let correct_hash = ResultHash::of(&result, pledge.result_hash.algo());
                if correct_hash != pledge.result_hash {
                    ctx.metrics().inc("audit.mismatch");
                    findings.push(AuditFinding {
                        slave: pledge.slave,
                        evidence: Evidence {
                            pledge,
                            correct_hash,
                            discovery: Discovery::Delayed,
                            found_at: ctx.now(),
                        },
                    });
                }
            } else if self.may_advance(ctx.now()) {
                let next = self.db.version() + 1;
                let ops = self.pending_writes.remove(&next).expect("may_advance");
                ctx.charge(ctx.costs().write_apply * ops.len() as u64);
                if self.db.apply_write(&ops).is_err() {
                    // Committed writes applied deterministically cannot
                    // fail here unless state diverged — surface loudly.
                    ctx.metrics().inc("audit.apply_errors");
                }
                self.buckets.remove(&(next - 1));
                ctx.metrics().inc("audit.version_advances");
            } else {
                break;
            }
        }

        // Telemetry for E7.
        let lag = self.lag(ctx.now());
        let now = ctx.now();
        ctx.metrics().series_push("audit.lag_us", now, lag.as_micros() as f64);
        ctx.metrics()
            .series_push("audit.backlog", now, self.backlog as f64);
        ctx.metrics().observe("audit.lag_hist_us", lag.as_micros());
        findings
    }
}

/// Extension trait: duration since a starting charge mark.
trait ChargedSince {
    fn since_start(&self, start: sdr_sim::SimDuration) -> sdr_sim::SimDuration;
}

impl ChargedSince for sdr_sim::SimDuration {
    fn since_start(&self, start: sdr_sim::SimDuration) -> sdr_sim::SimDuration {
        self.saturating_sub(start)
    }
}
