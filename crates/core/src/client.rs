//! Clients: issue reads/writes, verify everything, sample double-checks.
//!
//! Reads are verified by one of two strategies, selected per query by
//! [`crate::verify::strategy_for`]:
//!
//! * **Pledged** (computed queries) — Section 3.2 verbatim: compute the
//!   result hash and compare with the pledge, verify the slave's
//!   signature, verify the master stamp, and check the stamp is no older
//!   than `max_latency` (possibly the client's *own* bound — the paper's
//!   slow-client accommodation).  Accepted results are either
//!   double-checked with the master (probability `p`) or their pledge is
//!   forwarded to the auditor — acceptance happens only after the pledge
//!   is on its way, as Section 3.4 requires.
//! * **Proof-verified** (static `GetRow`/`ReadFile` lookups) — the slave
//!   answers with an O(log n) Merkle path against a master-signed state
//!   digest; the client verifies it locally and accepts *finally*: no
//!   pledge, no double-check, no auditor traffic.  A failed proof (a
//!   lying or corrupt slave) falls the read back to the pledged path.
//!
//! The Section 4 variants live here too: security-sensitive reads go
//! straight to the trusted master, and `read_quorum > 1` sends the same
//! query to several slaves, auto-double-checking on any disagreement.

use crate::config::SystemConfig;
use crate::messages::{CheckVerdict, Msg, RefuseReason, StateDigestStamp, WriteOutcome};
use crate::pledge::Pledge;
use crate::verify::{self, ReadStrategy, RejectReason, VerifyEnv};
use crate::workload::Workload;
use rand::Rng;
use sdr_crypto::{CertRole, PublicKey};
use sdr_sim::{Ctx, NodeId, Process, SimDuration, SimTime};
use sdr_store::{Query, QueryResult, StateProof, UpdateOp};
use std::collections::{HashMap, HashSet};

const K_BOOT: u64 = 1;
const K_NEXT_READ: u64 = 2;
const K_NEXT_WRITE: u64 = 3;
const K_READ_TIMEOUT: u64 = 4;
const K_WRITE_TIMEOUT: u64 = 5;
const K_SETUP_TIMEOUT: u64 = 6;

fn tag(kind: u64, req: u64) -> u64 {
    (kind << 40) | req
}
fn tag_kind(t: u64) -> u64 {
    t >> 40
}
fn tag_req(t: u64) -> u64 {
    t & ((1 << 40) - 1)
}

/// Setup/operation phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Boot,
    AwaitDir,
    AwaitSetup,
    Ready,
}

struct PendingRead {
    query: Query,
    sensitive: bool,
    /// Which verification pipeline this read runs; flips from `Proof` to
    /// `Pledged` when a proof attempt is rejected (fallback).
    strategy: ReadStrategy,
    attempts: u32,
    issued_at: SimTime,
    awaiting: HashSet<NodeId>,
    responses: Vec<(NodeId, QueryResult, Pledge)>,
    mismatch_check_sent: bool,
}

/// Per-client counters used by experiments (E8 needs per-client views).
#[derive(Clone, Copy, Debug, Default, serde::ToJson, serde::FromJson)]
pub struct ClientCounters {
    /// Reads issued.
    pub reads_issued: u64,
    /// Reads accepted after full verification.
    pub reads_accepted: u64,
    /// Reads that exhausted their retries.
    pub reads_failed: u64,
    /// Double-checks sent.
    pub dc_sent: u64,
    /// Double-checks the master throttled (greedy enforcement).
    pub dc_throttled: u64,
    /// Stale-stamp rejections observed.
    pub stale_rejections: u64,
    /// Times this client had to redo the setup phase.
    pub re_setups: u64,
    /// Static reads issued on the proof path.
    pub proof_reads_issued: u64,
    /// Proof-verified reads accepted (these never touch the auditor).
    pub proof_reads_accepted: u64,
}

/// A client process.
pub struct ClientProcess {
    cfg: SystemConfig,
    workload: Workload,
    index: usize,
    directory: NodeId,
    content_key: PublicKey,
    is_writer: bool,
    dc_prob: f64,
    my_max_latency: SimDuration,

    phase: Phase,
    masters: Vec<(NodeId, PublicKey)>,
    master: Option<(NodeId, PublicKey)>,
    blacklist: HashSet<NodeId>,
    slaves: Vec<(NodeId, PublicKey)>,
    auditor: NodeId,

    next_req: u64,
    pending: HashMap<u64, PendingRead>,
    pending_writes: HashMap<u64, (SimTime, Vec<UpdateOp>)>,

    /// `(slave, accepted result-hash bytes)` — joined post-run against
    /// slave lie logs to count wrong answers that slipped through.
    acceptances: Vec<(NodeId, Vec<u8>)>,
    counters: ClientCounters,
}

impl ClientProcess {
    /// Creates a client.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        workload: Workload,
        index: usize,
        directory: NodeId,
        content_key: PublicKey,
        is_writer: bool,
    ) -> Self {
        let dc_prob = workload
            .greedy_clients
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, p)| *p)
            .unwrap_or(cfg.double_check_prob);
        let my_max_latency = workload
            .client_max_latency
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, d)| *d)
            .unwrap_or(cfg.max_latency);
        ClientProcess {
            cfg,
            workload,
            index,
            directory,
            content_key,
            is_writer,
            dc_prob,
            my_max_latency,
            phase: Phase::Boot,
            masters: Vec::new(),
            master: None,
            blacklist: HashSet::new(),
            slaves: Vec::new(),
            auditor: NodeId(0),
            next_req: 1,
            pending: HashMap::new(),
            pending_writes: HashMap::new(),
            acceptances: Vec::new(),
            counters: ClientCounters::default(),
        }
    }

    /// Acceptance log: `(slave, result-hash bytes)` of every accepted read.
    pub fn acceptances(&self) -> &[(NodeId, Vec<u8>)] {
        &self.acceptances
    }

    /// Per-client counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// The client's assigned slaves (test inspection).
    pub fn assigned_slaves(&self) -> Vec<NodeId> {
        self.slaves.iter().map(|(n, _)| *n).collect()
    }

    /// Whether setup completed.
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    fn boot(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.phase = Phase::AwaitDir;
        self.master = None;
        self.slaves.clear();
        ctx.send(self.directory, Msg::DirLookup);
        ctx.set_timer(self.cfg.read_timeout * 4, tag(K_SETUP_TIMEOUT, 0));
    }

    fn choose_master(&mut self, auditor: NodeId) -> Option<(NodeId, PublicKey)> {
        let eligible: Vec<&(NodeId, PublicKey)> = self
            .masters
            .iter()
            .filter(|(n, _)| *n != auditor && !self.blacklist.contains(n))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Deterministic spread of clients across masters ("the closest one
        // for example" — we model proximity as static preference).
        Some(*eligible[self.index % eligible.len()])
    }

    fn schedule_next_read(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let gap = self.workload.read_gap(ctx.rng(), now);
        ctx.set_timer(gap, tag(K_NEXT_READ, 0));
    }

    fn schedule_next_write(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let gap = self.workload.write_gap(ctx.rng(), 1);
        ctx.set_timer(gap, tag(K_NEXT_WRITE, 0));
    }

    /// Picks the slave a proof read targets: rotated by request id and
    /// attempt so retries (after timeouts) try a different replica.
    /// `None` when the client currently has no slaves (mid-reassignment;
    /// the read then waits for its timeout like the pledged path does).
    fn proof_target(&self, req: u64, attempts: u32) -> Option<NodeId> {
        if self.slaves.is_empty() {
            return None;
        }
        let i = (req as usize + attempts as usize) % self.slaves.len();
        Some(self.slaves[i].0)
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.phase != Phase::Ready || self.slaves.is_empty() {
            return;
        }
        let query = self.workload.mix.sample(ctx.rng(), &self.workload.dataset);
        let req = self.next_req;
        self.next_req += 1;
        self.counters.reads_issued += 1;
        ctx.metrics().inc("read.issued");

        let sensitive =
            self.cfg.sensitive_fraction > 0.0 && ctx.coin() < self.cfg.sensitive_fraction;
        let strategy = if sensitive {
            // Trusted hardware is its own (stronger) guarantee.
            ReadStrategy::Pledged
        } else {
            verify::strategy_for(&query, self.cfg.proof_reads)
        };
        let mut awaiting = HashSet::new();
        if sensitive {
            // Section 4 variant: run on trusted hardware only.
            ctx.metrics().inc("read.sensitive");
            let (m, _) = self.master.expect("ready implies master");
            ctx.send(
                m,
                Msg::TrustedRead {
                    req_id: req,
                    query: query.clone(),
                },
            );
            awaiting.insert(m);
        } else if strategy == ReadStrategy::Proof {
            // One slave suffices: the proof is self-certifying, so there
            // is nothing a quorum would vote on.
            self.counters.proof_reads_issued += 1;
            ctx.metrics().inc("read.proof_issued");
            let s = self.proof_target(req, 0).expect("checked non-empty above");
            ctx.send(
                s,
                Msg::ProofRead {
                    req_id: req,
                    query: query.clone(),
                },
            );
            awaiting.insert(s);
        } else {
            for (s, _) in &self.slaves {
                ctx.send(
                    *s,
                    Msg::ReadRequest {
                        req_id: req,
                        query: query.clone(),
                    },
                );
                awaiting.insert(*s);
            }
        }
        self.pending.insert(
            req,
            PendingRead {
                query,
                sensitive,
                strategy,
                attempts: 0,
                issued_at: ctx.now(),
                awaiting,
                responses: Vec::new(),
                mismatch_check_sent: false,
            },
        );
        ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
    }

    fn retry_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: u64) {
        let Some(p) = self.pending.get_mut(&req) else { return };
        p.attempts += 1;
        if p.attempts > self.cfg.read_retries {
            self.pending.remove(&req);
            self.counters.reads_failed += 1;
            ctx.metrics().inc("read.failed");
            return;
        }
        ctx.metrics().inc("read.retry");
        p.responses.clear();
        p.mismatch_check_sent = false;
        p.awaiting.clear();
        if p.sensitive {
            let (m, _) = self.master.expect("ready implies master");
            ctx.send(
                m,
                Msg::TrustedRead {
                    req_id: req,
                    query: p.query.clone(),
                },
            );
            p.awaiting.insert(m);
        } else if p.strategy == ReadStrategy::Proof {
            let (query, attempts) = (p.query.clone(), p.attempts);
            if let Some(s) = self.proof_target(req, attempts) {
                ctx.send(s, Msg::ProofRead { req_id: req, query });
                self.pending
                    .get_mut(&req)
                    .expect("present")
                    .awaiting
                    .insert(s);
            }
            // No slaves right now (mid-reassignment): the read idles on
            // its timeout, exactly like the pledged branch below.
        } else {
            let targets: Vec<NodeId> = self.slaves.iter().map(|(n, _)| *n).collect();
            for s in targets {
                let q = self.pending.get(&req).expect("present").query.clone();
                ctx.send(s, Msg::ReadRequest { req_id: req, query: q });
                self.pending
                    .get_mut(&req)
                    .expect("present")
                    .awaiting
                    .insert(s);
            }
        }
        ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
    }

    /// The verification environment for this client at `now`.
    fn verify_env(&self, now: SimTime) -> VerifyEnv<'_> {
        VerifyEnv {
            masters: &self.masters,
            slaves: &self.slaves,
            now,
            max_latency: self.my_max_latency,
        }
    }

    /// Records a rejection: the reason-specific metric plus the
    /// per-client staleness counter the experiments watch.
    fn note_rejection(&mut self, ctx: &mut Ctx<'_, Msg>, reason: RejectReason) {
        if reason == RejectReason::Stale {
            self.counters.stale_rejections += 1;
        }
        ctx.metrics().inc(reason.metric());
    }

    /// Full verification of one pledged slave response (Section 3.2's
    /// client checks, shared with the proof pipeline via
    /// [`crate::verify`]).  Returns false when the response must be
    /// discarded.
    fn verify_response(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        slave: NodeId,
        result: &QueryResult,
        pledge: &Pledge,
    ) -> bool {
        // One result hash plus two signature verifications.
        ctx.charge(ctx.costs().hash_cost(result.size()));
        ctx.charge(ctx.costs().verify * 2u64);
        let env = self.verify_env(ctx.now());
        match verify::verify_pledged_read(&env, slave, result, pledge) {
            Ok(()) => true,
            Err(reason) => {
                self.note_rejection(ctx, reason);
                false
            }
        }
    }

    /// Handles one proof-read reply: verify the digest stamp and the
    /// Merkle path, then accept *finally* — proof-verified reads never
    /// touch the double-check or audit machinery.  A rejected proof
    /// falls the read back to the pledged path.
    fn handle_proof_reply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req: u64,
        result: QueryResult,
        proof: StateProof,
        stamp: StateDigestStamp,
    ) {
        let Some(p) = self.pending.get(&req) else { return };
        if p.strategy != ReadStrategy::Proof || !p.awaiting.contains(&from) {
            return; // Duplicate, unsolicited, or already fallen back.
        }
        // Stamp signature + O(log n) path hashes.
        ctx.charge(ctx.costs().verify);
        ctx.charge(ctx.costs().hash_cost(64) * (1 + proof.depth() as u64));
        ctx.charge(ctx.costs().hash_cost(result.size()));
        let env = self.verify_env(ctx.now());
        let verdict = verify::verify_proof_read(&env, from, &p.query, &result, &proof, &stamp);
        match verdict {
            Ok(()) => {
                let p = self.pending.remove(&req).expect("present");
                self.acceptances.push((
                    from,
                    crate::pledge::ResultHash::of(&result, self.cfg.pledge_hash)
                        .bytes()
                        .to_vec(),
                ));
                self.counters.reads_accepted += 1;
                self.counters.proof_reads_accepted += 1;
                ctx.metrics().inc("read.accepted");
                ctx.metrics().inc("read.proof_accepted");
                ctx.metrics()
                    .observe("proof.bytes", proof.wire_len() as u64);
                ctx.metrics().observe("proof.depth", proof.depth() as u64);
                let latency = ctx.now().since(p.issued_at);
                ctx.metrics().observe("read.latency_us", latency.as_micros());
                ctx.metrics()
                    .observe("read.proof_latency_us", latency.as_micros());
            }
            Err(reason) => {
                // Deterministic lie detection: the slave shipped a result
                // its proof cannot cover (or a stale/forged anchor).
                // Fall back to the pledged pipeline for the retries.
                self.note_rejection(ctx, reason);
                // Umbrella counter: *any* rejected proof reply, whatever
                // the reason (the reason-specific metric has the detail).
                ctx.metrics().inc("read.proof_rejected");
                ctx.metrics().inc("read.proof_fallback");
                let p = self.pending.get_mut(&req).expect("present");
                p.strategy = ReadStrategy::Pledged;
                p.awaiting.remove(&from);
                self.retry_read(ctx, req);
            }
        }
    }

    fn finalize_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: u64) {
        let Some(p) = self.pending.get(&req) else { return };
        debug_assert!(!p.responses.is_empty());

        let first_hash = p.responses[0].2.result_hash;
        let unanimous = p
            .responses
            .iter()
            .all(|(_, _, pl)| pl.result_hash == first_hash);

        if !unanimous {
            // Section 4: "If not all answers match, the client
            // automatically double-checks, since at least one of the
            // slaves has to be malicious."
            if !p.mismatch_check_sent {
                ctx.metrics().inc("read.quorum_mismatch");
                let (m, _) = self.master.expect("ready implies master");
                let pledges: Vec<Pledge> =
                    p.responses.iter().map(|(_, _, pl)| pl.clone()).collect();
                self.pending.get_mut(&req).expect("present").mismatch_check_sent = true;
                for pl in pledges {
                    self.counters.dc_sent += 1;
                    ctx.metrics().inc("dc.sent");
                    ctx.send(m, Msg::DoubleCheck { req_id: req, pledge: pl });
                }
            }
            return;
        }

        let p = self.pending.remove(&req).expect("present");
        // Forward pledges to the auditor *before* accepting (Section 3.4),
        // unless this read is the sampled double-check.
        let double_check = ctx.coin() < self.dc_prob;
        if double_check {
            let (m, _) = self.master.expect("ready implies master");
            self.counters.dc_sent += 1;
            ctx.metrics().inc("dc.sent");
            ctx.send(
                m,
                Msg::DoubleCheck {
                    req_id: req,
                    pledge: p.responses[0].2.clone(),
                },
            );
        } else {
            for (_, _, pl) in &p.responses {
                ctx.send(self.auditor, Msg::AuditSubmit { pledge: pl.clone() });
            }
        }
        for (slave, _, pl) in &p.responses {
            self.acceptances.push((*slave, pl.result_hash.bytes().to_vec()));
        }
        self.counters.reads_accepted += 1;
        ctx.metrics().inc("read.accepted");
        let latency = ctx.now().since(p.issued_at);
        ctx.metrics().observe("read.latency_us", latency.as_micros());
    }

    fn handle_reassign(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        excluded: NodeId,
        replacement: Option<(NodeId, sdr_crypto::Certificate)>,
    ) {
        if excluded == NodeId(u32::MAX) {
            // Master retiring (became auditor): full re-setup.
            self.counters.re_setups += 1;
            self.phase = Phase::Boot;
            self.boot(ctx);
            return;
        }
        ctx.metrics().inc("client.reassigned");
        self.slaves.retain(|(n, _)| *n != excluded);
        if let Some((node, cert)) = replacement {
            ctx.charge(ctx.costs().verify);
            let master_key = self.master.map(|(_, k)| k);
            let valid = master_key.is_some_and(|k| cert.verify_role(&k, CertRole::Slave).is_ok());
            if valid {
                self.slaves.push((node, cert.body.subject_key));
            }
        }
        if self.slaves.is_empty() {
            // No replacement capacity here: redo setup.
            self.counters.re_setups += 1;
            self.boot(ctx);
            return;
        }
        // Re-issue still-pending reads that were waiting on the excluded
        // slave ("the client that has made the discovery connects to its
        // newly assigned slave and issues the same read request again").
        let mut stalled: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.awaiting.contains(&excluded) && !p.sensitive)
            .map(|(r, _)| *r)
            .collect();
        // Sort: HashMap iteration order is process-random, and each retry
        // draws from the client RNG, so the order must be reproducible.
        stalled.sort_unstable();
        for req in stalled {
            self.retry_read(ctx, req);
        }
    }
}

impl Process<Msg> for ClientProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Jittered boot spreads directory load and client phase.
        let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..200_000));
        ctx.set_timer(jitter, tag(K_BOOT, 0));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, t: u64) {
        match (tag_kind(t), tag_req(t)) {
            (K_BOOT, _) => self.boot(ctx),
            (K_NEXT_READ, _) => {
                self.issue_read(ctx);
                self.schedule_next_read(ctx);
            }
            (K_NEXT_WRITE, _) => {
                if self.phase == Phase::Ready {
                    if let Some((m, _)) = self.master {
                        let req = self.next_req;
                        self.next_req += 1;
                        let ops = self.workload.sample_write(ctx.rng());
                        ctx.metrics().inc("write.issued");
                        self.pending_writes.insert(req, (ctx.now(), ops.clone()));
                        ctx.send(m, Msg::WriteRequest { req_id: req, ops });
                        ctx.set_timer(
                            self.cfg.max_latency * 4 + self.cfg.read_timeout,
                            tag(K_WRITE_TIMEOUT, req),
                        );
                    }
                }
                self.schedule_next_write(ctx);
            }
            (K_READ_TIMEOUT, req)
                if self.pending.contains_key(&req) => {
                    let sensitive = self.pending.get(&req).map(|p| p.sensitive).unwrap_or(false);
                    let got_nothing = self
                        .pending
                        .get(&req)
                        .map(|p| p.responses.is_empty())
                        .unwrap_or(false);
                    ctx.metrics().inc("read.timeout");
                    if sensitive && got_nothing {
                        // Master unresponsive: fail over.
                        if let Some((m, _)) = self.master {
                            self.blacklist.insert(m);
                        }
                        self.pending.remove(&req);
                        self.counters.re_setups += 1;
                        self.boot(ctx);
                    } else {
                        self.retry_read(ctx, req);
                    }
                }
            (K_WRITE_TIMEOUT, req)
                if self.pending_writes.remove(&req).is_some() => {
                    ctx.metrics().inc("write.timeout");
                    // Master presumed crashed: redo the setup phase
                    // (Section 3: "all the clients connected to the crashed
                    // server will have to go through the setup process
                    // again").
                    if let Some((m, _)) = self.master {
                        self.blacklist.insert(m);
                    }
                    self.counters.re_setups += 1;
                    self.boot(ctx);
                }
            (K_SETUP_TIMEOUT, _)
                if self.phase != Phase::Ready => {
                    if let Some((m, _)) = self.master.take() {
                        self.blacklist.insert(m);
                    }
                    self.boot(ctx);
                }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::DirResponse {
                certs,
                nodes,
                auditor,
            } => {
                if self.phase != Phase::AwaitDir {
                    return;
                }
                self.masters.clear();
                for (cert, node) in certs.iter().zip(nodes.iter()) {
                    ctx.charge(ctx.costs().verify);
                    if cert.verify_role(&self.content_key, CertRole::Master).is_ok() {
                        self.masters.push((*node, cert.body.subject_key));
                    } else {
                        ctx.metrics().inc("client.bad_master_cert");
                    }
                }
                self.auditor = auditor;
                match self.choose_master(auditor) {
                    Some(m) => {
                        self.master = Some(m);
                        self.phase = Phase::AwaitSetup;
                        ctx.send(m.0, Msg::SetupRequest);
                    }
                    None => {
                        // All masters blacklisted: clear and retry later.
                        self.blacklist.clear();
                        ctx.set_timer(self.cfg.read_timeout, tag(K_BOOT, 0));
                    }
                }
            }
            Msg::SetupResponse { slaves, auditor } => {
                if self.phase != Phase::AwaitSetup {
                    return;
                }
                let Some((_, mkey)) = self.master else { return };
                if slaves.is_empty() {
                    // This master has no capacity (e.g. it is the auditor).
                    self.blacklist.insert(from);
                    self.boot(ctx);
                    return;
                }
                self.slaves.clear();
                for (node, cert) in slaves {
                    ctx.charge(ctx.costs().verify);
                    if cert.verify_role(&mkey, CertRole::Slave).is_ok() {
                        self.slaves.push((node, cert.body.subject_key));
                    } else {
                        ctx.metrics().inc("client.bad_slave_cert");
                    }
                }
                if self.slaves.is_empty() {
                    self.blacklist.insert(from);
                    self.boot(ctx);
                    return;
                }
                self.auditor = auditor;
                let first_ready = self.phase != Phase::Ready;
                self.phase = Phase::Ready;
                ctx.metrics().inc("client.ready");
                if first_ready {
                    self.schedule_next_read(ctx);
                    if self.is_writer {
                        self.schedule_next_write(ctx);
                    }
                }
            }
            Msg::ReadResponse {
                req_id,
                result,
                pledge,
            } => {
                if !self.pending.contains_key(&req_id) {
                    return;
                }
                let valid = self.verify_response(ctx, from, &result, &pledge);
                let Some(p) = self.pending.get_mut(&req_id) else { return };
                if !p.awaiting.remove(&from) {
                    return; // Duplicate or unsolicited.
                }
                if valid {
                    p.responses.push((from, result, pledge));
                }
                if p.awaiting.is_empty() {
                    if p.responses.is_empty() {
                        self.retry_read(ctx, req_id);
                    } else {
                        self.finalize_read(ctx, req_id);
                    }
                }
            }
            Msg::ProofReadReply {
                req_id,
                result,
                proof,
                digest_stamp,
            } => self.handle_proof_reply(ctx, from, req_id, result, proof, digest_stamp),
            Msg::ReadRefused { req_id, reason } => {
                if !self.pending.contains_key(&req_id) {
                    return;
                }
                ctx.metrics().inc("read.refused");
                match reason {
                    RefuseReason::Excluded => {
                        // Learn of exclusions we missed; ask for a new slave.
                        self.slaves.retain(|(n, _)| *n != from);
                        if let Some((m, _)) = self.master {
                            self.phase = Phase::AwaitSetup;
                            ctx.send(m, Msg::SetupRequest);
                            ctx.set_timer(self.cfg.read_timeout * 4, tag(K_SETUP_TIMEOUT, 0));
                        }
                        self.retry_read(ctx, req_id);
                    }
                    RefuseReason::OutOfSync => {
                        let Some(p) = self.pending.get_mut(&req_id) else { return };
                        p.awaiting.remove(&from);
                        if p.awaiting.is_empty() && p.responses.is_empty() {
                            // Everyone refused: retry after timeout fires.
                        } else if p.awaiting.is_empty() {
                            self.finalize_read(ctx, req_id);
                        }
                    }
                }
            }
            Msg::TrustedReadResponse { req_id, result } => {
                if let Some(p) = self.pending.remove(&req_id) {
                    // Results from trusted hardware are authoritative.
                    self.counters.reads_accepted += 1;
                    ctx.metrics().inc("read.accepted");
                    ctx.metrics().inc("read.accepted_sensitive");
                    let latency = ctx.now().since(p.issued_at);
                    ctx.metrics().observe("read.latency_us", latency.as_micros());
                    ctx.metrics()
                        .observe("read.sensitive_latency_us", latency.as_micros());
                    let _ = result;
                }
            }
            Msg::DoubleCheckResponse { req_id, verdict } => match verdict {
                CheckVerdict::Match => {
                    ctx.metrics().inc("client.dc_match");
                    // Quorum-mismatch path: a Match identifies an honest
                    // pledge; accept pending read if still open.
                    if self.pending.contains_key(&req_id) {
                        let p = self.pending.remove(&req_id).expect("present");
                        self.counters.reads_accepted += 1;
                        ctx.metrics().inc("read.accepted");
                        let latency = ctx.now().since(p.issued_at);
                        ctx.metrics().observe("read.latency_us", latency.as_micros());
                    }
                }
                CheckVerdict::Mismatch { correct } => {
                    ctx.metrics().inc("client.dc_mismatch");
                    ctx.charge(ctx.costs().hash_cost(correct.size()));
                    if self.pending.contains_key(&req_id) {
                        let p = self.pending.remove(&req_id).expect("present");
                        // The master's answer is authoritative.
                        self.counters.reads_accepted += 1;
                        ctx.metrics().inc("read.accepted");
                        ctx.metrics().inc("read.corrected_by_master");
                        let latency = ctx.now().since(p.issued_at);
                        ctx.metrics().observe("read.latency_us", latency.as_micros());
                    }
                }
                CheckVerdict::VersionUnavailable => {
                    ctx.metrics().inc("client.dc_version_unavailable");
                    self.pending.remove(&req_id);
                }
                CheckVerdict::Throttled => {
                    self.counters.dc_throttled += 1;
                    ctx.metrics().inc("client.dc_throttled");
                    self.pending.remove(&req_id);
                }
            },
            Msg::WriteResponse { req_id, outcome } => {
                if let Some((sent_at, _)) = self.pending_writes.remove(&req_id) {
                    match outcome {
                        WriteOutcome::Committed { .. } => {
                            ctx.metrics().inc("write.committed");
                            let latency = ctx.now().since(sent_at);
                            ctx.metrics().observe("write.latency_us", latency.as_micros());
                        }
                        WriteOutcome::AccessDenied => {
                            ctx.metrics().inc("write.denied_seen");
                        }
                        WriteOutcome::Failed(_) => {
                            ctx.metrics().inc("write.failed_seen");
                        }
                    }
                }
            }
            Msg::Reassign {
                excluded,
                replacement,
            } => self.handle_reassign(ctx, excluded, replacement),
            Msg::AuditorChanged { auditor } => {
                self.auditor = auditor;
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("client-{}", self.index)
    }
}
