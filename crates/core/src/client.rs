//! Clients: issue reads/writes, verify everything, sample double-checks.
//!
//! Reads are verified by one of two strategies, selected per query by
//! [`crate::verify::strategy_for`]:
//!
//! * **Pledged** (computed queries) — Section 3.2 verbatim: compute the
//!   result hash and compare with the pledge, verify the slave's
//!   signature, verify the master stamp, and check the stamp is no older
//!   than `max_latency` (possibly the client's *own* bound — the paper's
//!   slow-client accommodation).  Accepted results are either
//!   double-checked with the master (probability `p`) or their pledge is
//!   forwarded to the auditor — acceptance happens only after the pledge
//!   is on its way, as Section 3.4 requires.
//! * **Proof-verified** (static `GetRow`/`ReadFile` lookups) — the slave
//!   answers with an O(log n) Merkle path against a master-signed state
//!   digest; the client verifies it locally and accepts *finally*: no
//!   pledge, no double-check, no auditor traffic.  A failed proof (a
//!   lying or corrupt slave) first retries one *other* replica of the
//!   same shard on the proof path; only a second failure falls the read
//!   back to the pledged pipeline.
//!
//! With the content space sharded, the client is the router: every
//! query and write batch is mapped to its owning shard by the
//! [`ShardMap`], and the whole pipeline for that request — slaves,
//! master, auditor, verification keys — is the owning shard's.  Each
//! shard independently carries the paper's trust argument; a Byzantine
//! replica in one shard never appears on another shard's read path.
//!
//! The Section 4 variants live here too: security-sensitive reads go
//! straight to the owning shard's trusted master, and `read_quorum > 1`
//! sends the same query to several of that shard's slaves,
//! auto-double-checking on any disagreement.

use crate::config::SystemConfig;
use crate::messages::{CheckVerdict, Msg, RefuseReason, StateDigestStamp, WriteOutcome};
use crate::pledge::Pledge;
use crate::shard::ShardMap;
use crate::verify::{self, ReadStrategy, RejectReason, VerifyEnv};
use crate::workload::Workload;
use rand::Rng;
use sdr_crypto::{CertRole, Certificate, Digest as _, PublicKey, Sha256};
use sdr_sim::{Ctx, NodeId, Process, SimDuration, SimTime};
use sdr_store::{LruByteCache, ProofError, Query, QueryResult, StateProof, StreamProof, UpdateOp};
use std::collections::{HashMap, HashSet, VecDeque};

const K_BOOT: u64 = 1;
const K_NEXT_READ: u64 = 2;
const K_NEXT_WRITE: u64 = 3;
const K_READ_TIMEOUT: u64 = 4;
const K_WRITE_TIMEOUT: u64 = 5;
const K_SETUP_TIMEOUT: u64 = 6;
const K_CHURN: u64 = 7;

fn tag(kind: u64, req: u64) -> u64 {
    (kind << 40) | req
}
fn tag_kind(t: u64) -> u64 {
    t >> 40
}
fn tag_req(t: u64) -> u64 {
    t & ((1 << 40) - 1)
}

/// Setup/operation phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Boot,
    AwaitDir,
    AwaitSetup,
    Ready,
    /// Churned away: no reads, no writes, all inbound traffic dropped.
    /// The next churn flip reboots through the full setup phase.
    Offline,
}

/// The client's view of one shard: its masters, the chosen setup master,
/// the assigned slaves, and the shard's auditor.
#[derive(Clone, Debug, Default)]
struct ShardView {
    masters: Vec<(NodeId, PublicKey)>,
    master: Option<(NodeId, PublicKey)>,
    slaves: Vec<(NodeId, PublicKey)>,
    /// Spare replicas of the shard: outside the read quorum, targeted
    /// only by proof-path retries.
    spares: Vec<(NodeId, PublicKey)>,
    auditor: NodeId,
}

struct PendingRead {
    query: Query,
    /// Owning shard (routing key of the whole pipeline).
    shard: usize,
    sensitive: bool,
    /// Which verification pipeline this read runs; flips from `Proof` to
    /// `Pledged` when the proof attempts are exhausted (fallback).
    strategy: ReadStrategy,
    /// Whether the one extra same-shard proof-path replica retry has
    /// been spent (proof-path hardening).
    proof_retried: bool,
    attempts: u32,
    issued_at: SimTime,
    awaiting: HashSet<NodeId>,
    responses: Vec<(NodeId, QueryResult, Pledge)>,
    mismatch_check_sent: bool,
    /// In-flight chunk stream (`ReadFileRange` on the proof path): the
    /// verified header plus per-chunk progress.  The client never holds
    /// the file — only the manifest and which chunk indexes verified.
    stream: Option<StreamState>,
    /// Chunks that arrived before their stream header (per-message
    /// network latency can reorder the slave's sends).  Held unverified
    /// until the header opens the window, then replayed; bounded so a
    /// flood before any header cannot grow client memory.
    early_chunks: Vec<(NodeId, u32, Vec<u8>)>,
    /// Set when this read is one per-shard sub-scan of a scattered
    /// cross-shard `ScanRange`: the parent scan's id.  Sub-scans accept
    /// into the parent's stitcher instead of counting their own read,
    /// and never fall back to the pledged path — a stitched scan is
    /// only as strong as its weakest piece.
    parent_scan: Option<u64>,
}

/// One scattered cross-shard range scan: the parent of `parts.len()`
/// per-shard sub-scans, each a normal proof-path [`PendingRead`].  The
/// parent accepts only when every part verified against its own shard's
/// signed digest *and* the parts tile the scanned interval exactly —
/// gap, overlap, or any per-shard proof failure rejects the whole scan.
struct ScanState {
    /// Scanned half-open key interval.
    start: u64,
    end: u64,
    issued_at: SimTime,
    /// `(sub_start, sub_end, verified_rows)` per part, ascending;
    /// `None` = still in flight.
    parts: Vec<(u64, u64, Option<u64>)>,
    /// Sub-request id → index into `parts`.
    by_req: HashMap<u64, usize>,
}

/// Progress of one verified chunk stream.
struct StreamState {
    /// The header proof (manifest pinned to the signed digest).
    proof: StreamProof,
    /// The slave streaming to us; chunks from anyone else are ignored.
    source: NodeId,
    /// First manifest index the stream carries.
    first: u32,
    /// Number of chunks announced.
    count: u32,
    /// Manifest indexes verified so far (the network may reorder
    /// chunks; verification is per-index so order never matters).
    received: HashSet<u32>,
    /// Verified payload bytes so far.
    bytes: u64,
}

/// Per-client counters used by experiments (E8 needs per-client views).
#[derive(Clone, Copy, Debug, Default, serde::ToJson, serde::FromJson)]
pub struct ClientCounters {
    /// Reads issued.
    pub reads_issued: u64,
    /// Reads accepted after full verification.
    pub reads_accepted: u64,
    /// Reads that exhausted their retries.
    pub reads_failed: u64,
    /// Double-checks sent.
    pub dc_sent: u64,
    /// Double-checks the master throttled (greedy enforcement).
    pub dc_throttled: u64,
    /// Stale-stamp rejections observed.
    pub stale_rejections: u64,
    /// Times this client had to redo the setup phase.
    pub re_setups: u64,
    /// Static reads issued on the proof path.
    pub proof_reads_issued: u64,
    /// Proof-verified reads accepted (these never touch the auditor).
    pub proof_reads_accepted: u64,
    /// Rejected proof replies retried on another replica of the same
    /// shard, still on the proof path (before any pledged fallback).
    pub proof_retries: u64,
}

/// A client process.
pub struct ClientProcess {
    cfg: SystemConfig,
    workload: Workload,
    index: usize,
    directory: NodeId,
    content_key: PublicKey,
    is_writer: bool,
    dc_prob: f64,
    my_max_latency: SimDuration,
    map: ShardMap,

    phase: Phase,
    /// Whether this client participates in session churn (drawn once at
    /// start from [`crate::workload::ChurnModel::fraction`]).
    churns: bool,
    /// Whether a read/write workload timer chain is currently ticking.
    /// Guards re-arming on every `Ready` transition: without it each
    /// re-setup (and each churn rejoin) would stack another perpetual
    /// timer chain, inflating the event rate cycle after cycle.
    read_timer_live: bool,
    write_timer_live: bool,
    shards: Vec<ShardView>,
    /// Shards with an outstanding `SetupRequest`: exactly these have an
    /// unresponsive master to blame when the setup timeout fires.
    awaiting_setup: HashSet<usize>,
    blacklist: HashSet<NodeId>,

    next_req: u64,
    pending: HashMap<u64, PendingRead>,
    /// In-flight scattered cross-shard scans, by parent id.
    scans: HashMap<u64, ScanState>,
    pending_writes: HashMap<u64, (SimTime, usize)>,
    /// Per-shard overflow of sampled-but-unsent writes: with
    /// `max_write_batch > 1` the client keeps up to a batch of writes
    /// outstanding per shard (pipelining into the sequencer's round) and
    /// parks the rest here until responses drain the window.  Unused —
    /// and unallocated per-entry — at `max_write_batch = 1`.
    deferred_writes: Vec<VecDeque<Vec<UpdateOp>>>,

    /// Stamp-verification cache: digests of `(master key, stamp
    /// statement)` pairs whose signature already verified.  A repeat
    /// read anchored in the same stamp skips the signature check — the
    /// dominant cost of a verified hot read — while freshness is still
    /// re-checked on every reply and the Merkle fold always runs.
    /// Entry weight is 1, so the byte budget doubles as an entry count.
    stamp_cache: LruByteCache<()>,
    /// Verified-certificate set: `scoped_cache_key` digests of
    /// certificates that passed `verify_scoped` for a given issuer,
    /// role, and shard.  Re-setups after churn re-admit the same
    /// replica roster with a table lookup per certificate.
    cert_cache: LruByteCache<()>,

    /// `(slave, accepted result-hash bytes)` — joined post-run against
    /// slave lie logs to count wrong answers that slipped through.
    acceptances: Vec<(NodeId, Vec<u8>)>,
    counters: ClientCounters,
}

impl ClientProcess {
    /// Creates a client.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        workload: Workload,
        index: usize,
        directory: NodeId,
        content_key: PublicKey,
        is_writer: bool,
    ) -> Self {
        let dc_prob = workload
            .greedy_clients
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, p)| *p)
            .unwrap_or(cfg.double_check_prob);
        let my_max_latency = workload
            .client_max_latency
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, d)| *d)
            .unwrap_or(cfg.max_latency);
        let map = ShardMap::new(cfg.n_shards, &workload.dataset);
        let cfg_shards = cfg.n_shards.max(1);
        let shards = vec![ShardView::default(); cfg_shards];
        let stamp_cache = LruByteCache::new(cfg.stamp_cache_entries);
        let cert_cache = LruByteCache::new(cfg.cert_cache_entries);
        ClientProcess {
            cfg,
            workload,
            index,
            directory,
            content_key,
            is_writer,
            dc_prob,
            my_max_latency,
            map,
            phase: Phase::Boot,
            churns: false,
            read_timer_live: false,
            write_timer_live: false,
            shards,
            awaiting_setup: HashSet::new(),
            blacklist: HashSet::new(),
            next_req: 1,
            pending: HashMap::new(),
            scans: HashMap::new(),
            pending_writes: HashMap::new(),
            deferred_writes: vec![VecDeque::new(); cfg_shards],
            stamp_cache,
            cert_cache,
            acceptances: Vec::new(),
            counters: ClientCounters::default(),
        }
    }

    /// Acceptance log: `(slave, result-hash bytes)` of every accepted read.
    pub fn acceptances(&self) -> &[(NodeId, Vec<u8>)] {
        &self.acceptances
    }

    /// Per-client counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// The client's assigned slaves across all shards (test inspection).
    pub fn assigned_slaves(&self) -> Vec<NodeId> {
        self.shards
            .iter()
            .flat_map(|sv| sv.slaves.iter().map(|(n, _)| *n))
            .collect()
    }

    /// The client's assigned slaves of one shard (test inspection).
    pub fn assigned_slaves_of_shard(&self, shard: usize) -> Vec<NodeId> {
        self.shards[shard].slaves.iter().map(|(n, _)| *n).collect()
    }

    /// Whether setup completed (every shard has at least one slave).
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// Current Byzantine-evidence blacklist (test inspection).
    pub fn blacklisted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.blacklist.iter().copied().collect();
        v.sort();
        v
    }

    /// Plants Byzantine evidence against a node (test injection).
    pub fn blacklist_insert(&mut self, node: NodeId) {
        self.blacklist.insert(node);
    }

    /// The master this client set up shard `shard` with (test inspection).
    pub fn chosen_master(&self, shard: usize) -> Option<NodeId> {
        self.shards[shard].master.map(|(n, _)| n)
    }

    /// The master roster this client learned for shard `shard` from the
    /// directory (test inspection).
    pub fn shard_masters(&self, shard: usize) -> Vec<NodeId> {
        self.shards[shard].masters.iter().map(|(n, _)| *n).collect()
    }

    fn boot(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.phase = Phase::AwaitDir;
        for sv in &mut self.shards {
            sv.master = None;
            sv.slaves.clear();
            sv.spares.clear();
            sv.masters.clear();
        }
        self.awaiting_setup.clear();
        // Parked writes reference the pre-reboot pipeline; drop them (the
        // workload timer keeps producing fresh ones once Ready again).
        for q in &mut self.deferred_writes {
            q.clear();
        }
        for shard in 0..self.shards.len() {
            ctx.send(self.directory, Msg::DirLookup { shard: shard as u32 });
        }
        ctx.set_timer(self.cfg.read_timeout * 4, tag(K_SETUP_TIMEOUT, 0));
    }

    fn choose_master(&self, shard: usize, auditor: NodeId) -> Option<(NodeId, PublicKey)> {
        let eligible: Vec<&(NodeId, PublicKey)> = self.shards[shard]
            .masters
            .iter()
            .filter(|(n, _)| *n != auditor && !self.blacklist.contains(n))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Deterministic spread of clients across masters ("the closest one
        // for example" — we model proximity as static preference).
        Some(*eligible[self.index % eligible.len()])
    }

    fn schedule_next_read(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let gap = self.workload.read_gap(ctx.rng(), now);
        self.read_timer_live = true;
        ctx.set_timer(gap, tag(K_NEXT_READ, 0));
    }

    fn schedule_next_write(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let gap = self.workload.write_gap(ctx.rng(), 1);
        self.write_timer_live = true;
        ctx.set_timer(gap, tag(K_NEXT_WRITE, 0));
    }

    /// Leaves the system: drops every in-flight request so late replies
    /// and timeouts find nothing to act on, and lets the workload timer
    /// chains die at their next tick.
    fn go_offline(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.phase = Phase::Offline;
        self.pending.clear();
        self.scans.clear();
        self.pending_writes.clear();
        for q in &mut self.deferred_writes {
            q.clear();
        }
        self.awaiting_setup.clear();
        ctx.metrics().inc("client.churn_leave");
    }

    /// Writes in flight to one shard's master (response still pending).
    fn outstanding_writes(&self, shard: usize) -> usize {
        self.pending_writes
            .values()
            .filter(|(_, s)| *s == shard)
            .count()
    }

    /// Sends one write to the owning shard's master with the usual
    /// timeout; drops it silently when the shard has no chosen master
    /// (the periodic write timer just moves on, as before batching).
    fn send_write(&mut self, ctx: &mut Ctx<'_, Msg>, shard: usize, ops: Vec<UpdateOp>) {
        if let Some((m, _)) = self.shards[shard].master {
            let req = self.next_req;
            self.next_req += 1;
            ctx.metrics().inc("write.issued");
            self.pending_writes.insert(req, (ctx.now(), shard));
            ctx.send(m, Msg::WriteRequest { req_id: req, ops });
            ctx.set_timer(
                self.cfg.max_latency * 4 + self.cfg.read_timeout,
                tag(K_WRITE_TIMEOUT, req),
            );
        }
    }

    /// Refills the shard's pipeline window from the deferred queue.
    fn flush_deferred_writes(&mut self, ctx: &mut Ctx<'_, Msg>, shard: usize) {
        while !self.deferred_writes[shard].is_empty()
            && self.outstanding_writes(shard) < self.cfg.max_write_batch
        {
            let ops = self.deferred_writes[shard].pop_front().expect("non-empty");
            self.send_write(ctx, shard, ops);
        }
    }

    /// The message a proof-path read sends: file ranges stream
    /// (header + chunks); everything else is a single proof reply.
    fn proof_read_msg(req: u64, query: Query) -> Msg {
        match query {
            q @ Query::ReadFileRange { .. } => Msg::StreamRead { req_id: req, query: q },
            q => Msg::ProofRead { req_id: req, query: q },
        }
    }

    /// Rotation cursor shared by every proof-path target pick: request
    /// id plus attempt count, wrapped over the replica list.
    fn proof_rotation(req: u64, attempts: u32, n: usize) -> usize {
        (req as usize + attempts as usize) % n.max(1)
    }

    /// Picks the slave a proof read targets within the owning shard:
    /// rotated by request id and attempt so retries (after timeouts) try
    /// a different replica.  `None` when the shard currently has no
    /// slaves (mid-reassignment; the read then waits for its timeout
    /// like the pledged path does).
    fn proof_target(&self, shard: usize, req: u64, attempts: u32) -> Option<NodeId> {
        let slaves = &self.shards[shard].slaves;
        if slaves.is_empty() {
            return None;
        }
        Some(slaves[Self::proof_rotation(req, attempts, slaves.len())].0)
    }

    /// Picks the replica a *rejected* proof retries: the next assigned
    /// replica in the same rotation that is not the one that failed, or
    /// — with a quorum of one — the setup-issued spare of the shard.
    fn proof_retry_target(
        &self,
        shard: usize,
        req: u64,
        attempts: u32,
        failed: NodeId,
    ) -> Option<NodeId> {
        let sv = &self.shards[shard];
        let n = sv.slaves.len();
        let start = Self::proof_rotation(req, attempts, n);
        (1..=n)
            .map(|i| sv.slaves[(start + i) % n].0)
            .find(|s| *s != failed)
            .or_else(|| sv.spares.iter().map(|(s, _)| *s).find(|s| *s != failed))
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.phase != Phase::Ready {
            return;
        }
        let query = self.workload.mix.sample(ctx.rng(), &self.workload.dataset);
        // A `ScanRange` crossing shard boundaries scatters: one
        // proof-path sub-scan per owning shard, stitched client-side.
        // Single-shard scans fall through to the ordinary proof path.
        if let Query::ScanRange { start, end, .. } = &query {
            if self.cfg.proof_reads {
                let parts = self.map.split_scan(*start, *end);
                if parts.len() > 1 {
                    self.issue_scatter_scan(ctx, query, parts);
                    return;
                }
            }
        }
        let shard = self.map.shard_of_query(&query);
        if self.shards[shard].slaves.is_empty() {
            return;
        }
        let req = self.next_req;
        self.next_req += 1;
        self.counters.reads_issued += 1;
        ctx.metrics().inc("read.issued");

        let sensitive =
            self.cfg.sensitive_fraction > 0.0 && ctx.coin() < self.cfg.sensitive_fraction;
        let strategy = if sensitive {
            // Trusted hardware is its own (stronger) guarantee.
            ReadStrategy::Pledged
        } else {
            verify::strategy_for(&query, self.cfg.proof_reads)
        };
        let mut awaiting = HashSet::new();
        if sensitive {
            // Section 4 variant: run on the owning shard's trusted master.
            ctx.metrics().inc("read.sensitive");
            let (m, _) = self.shards[shard].master.expect("ready implies master");
            ctx.send(
                m,
                Msg::TrustedRead {
                    req_id: req,
                    query: query.clone(),
                },
            );
            awaiting.insert(m);
        } else if strategy == ReadStrategy::Proof {
            // One slave suffices: the proof is self-certifying, so there
            // is nothing a quorum would vote on.
            self.counters.proof_reads_issued += 1;
            ctx.metrics().inc("read.proof_issued");
            if matches!(query, Query::ReadFileRange { .. }) {
                ctx.metrics().inc("read.stream_issued");
            }
            let s = self
                .proof_target(shard, req, 0)
                .expect("checked non-empty above");
            ctx.send(s, Self::proof_read_msg(req, query.clone()));
            awaiting.insert(s);
        } else {
            for (s, _) in &self.shards[shard].slaves {
                ctx.send(
                    *s,
                    Msg::ReadRequest {
                        req_id: req,
                        query: query.clone(),
                    },
                );
                awaiting.insert(*s);
            }
        }
        self.pending.insert(
            req,
            PendingRead {
                query,
                shard,
                sensitive,
                strategy,
                proof_retried: false,
                attempts: 0,
                issued_at: ctx.now(),
                awaiting,
                responses: Vec::new(),
                mismatch_check_sent: false,
                stream: None,
                early_chunks: Vec::new(),
                parent_scan: None,
            },
        );
        ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
    }

    /// Scatters one cross-shard `ScanRange` into per-shard sub-scans:
    /// each part is an ordinary proof-path read of its owning shard
    /// (verified against *that shard's* signed digest), registered under
    /// a parent [`ScanState`] that stitches the verified pieces.  The
    /// parent counts as one issued read; the fan-out is bookkeeping.
    fn issue_scatter_scan(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        query: Query,
        parts: Vec<(usize, u64, u64)>,
    ) {
        if parts.iter().any(|(s, _, _)| self.shards[*s].slaves.is_empty()) {
            return; // Some target shard is mid-reassignment; skip the tick.
        }
        let Query::ScanRange { table, start, end } = query else {
            unreachable!("caller matched ScanRange");
        };
        let parent = self.next_req;
        self.next_req += 1;
        self.counters.reads_issued += 1;
        self.counters.proof_reads_issued += 1;
        ctx.metrics().inc("read.issued");
        ctx.metrics().inc("read.proof_issued");
        ctx.metrics().inc("read.range_scattered");
        let mut scan = ScanState {
            start,
            end,
            issued_at: ctx.now(),
            parts: Vec::with_capacity(parts.len()),
            by_req: HashMap::new(),
        };
        for (i, (shard, lo, hi)) in parts.into_iter().enumerate() {
            let req = self.next_req;
            self.next_req += 1;
            let sub = Query::ScanRange {
                table: table.clone(),
                start: lo,
                end: hi,
            };
            let s = self
                .proof_target(shard, req, 0)
                .expect("checked non-empty above");
            ctx.send(s, Self::proof_read_msg(req, sub.clone()));
            let mut awaiting = HashSet::new();
            awaiting.insert(s);
            scan.parts.push((lo, hi, None));
            scan.by_req.insert(req, i);
            self.pending.insert(
                req,
                PendingRead {
                    query: sub,
                    shard,
                    sensitive: false,
                    strategy: ReadStrategy::Proof,
                    proof_retried: false,
                    attempts: 0,
                    issued_at: ctx.now(),
                    awaiting,
                    responses: Vec::new(),
                    mismatch_check_sent: false,
                    stream: None,
                    early_chunks: Vec::new(),
                    parent_scan: Some(parent),
                },
            );
            ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
        }
        self.scans.insert(parent, scan);
    }

    /// Fails a scattered scan: the parent and every sibling sub-scan die
    /// together (a stitched result with a missing piece is no result).
    fn fail_scan(&mut self, ctx: &mut Ctx<'_, Msg>, parent: u64) {
        let Some(scan) = self.scans.remove(&parent) else { return };
        for req in scan.by_req.keys() {
            self.pending.remove(req);
        }
        self.counters.reads_failed += 1;
        ctx.metrics().inc("read.failed");
        ctx.metrics().inc("read.range_failed");
    }

    /// Records one verified sub-scan; when the last part lands, runs the
    /// stitch check — the parts must tile `[start, end)` exactly — and
    /// accepts the parent scan.
    fn scan_part_done(&mut self, ctx: &mut Ctx<'_, Msg>, parent: u64, req: u64, rows: u64) {
        let Some(scan) = self.scans.get_mut(&parent) else { return };
        let Some(&idx) = scan.by_req.get(&req) else { return };
        scan.parts[idx].2 = Some(rows);
        if scan.parts.iter().any(|(_, _, r)| r.is_none()) {
            return;
        }
        let scan = self.scans.remove(&parent).expect("present");
        // Every part carries its own shard's range proof, so each piece
        // is complete *within its bounds*; the stitch check makes the
        // bounds themselves airtight: ascending, gapless, covering.
        let mut cursor = scan.start;
        let mut exact = true;
        for (lo, hi, _) in &scan.parts {
            exact &= *lo == cursor && *hi > *lo;
            cursor = *hi;
        }
        exact &= cursor == scan.end;
        if !exact {
            ctx.metrics().inc("read.range_stitch_rejected");
            self.counters.reads_failed += 1;
            ctx.metrics().inc("read.failed");
            return;
        }
        let total: u64 = scan.parts.iter().filter_map(|(_, _, r)| *r).sum();
        self.counters.reads_accepted += 1;
        self.counters.proof_reads_accepted += 1;
        ctx.metrics().inc("read.accepted");
        ctx.metrics().inc("read.proof_accepted");
        ctx.metrics().inc("read.range_stitched");
        ctx.metrics().observe("range.scan_rows", total);
        let latency = ctx.now().since(scan.issued_at);
        ctx.metrics().observe("read.latency_us", latency.as_micros());
        ctx.metrics()
            .observe("read.proof_latency_us", latency.as_micros());
    }

    fn retry_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: u64) {
        let Some(p) = self.pending.get_mut(&req) else { return };
        p.attempts += 1;
        if p.attempts > self.cfg.read_retries {
            let parent = self.pending.remove(&req).expect("present").parent_scan;
            match parent {
                Some(par) => self.fail_scan(ctx, par),
                None => {
                    self.counters.reads_failed += 1;
                    ctx.metrics().inc("read.failed");
                }
            }
            return;
        }
        ctx.metrics().inc("read.retry");
        p.responses.clear();
        p.mismatch_check_sent = false;
        p.awaiting.clear();
        p.stream = None;
        p.early_chunks.clear();
        let shard = p.shard;
        if p.sensitive {
            let (m, _) = self.shards[shard].master.expect("ready implies master");
            ctx.send(
                m,
                Msg::TrustedRead {
                    req_id: req,
                    query: p.query.clone(),
                },
            );
            p.awaiting.insert(m);
        } else if p.strategy == ReadStrategy::Proof {
            let (query, attempts) = (p.query.clone(), p.attempts);
            if let Some(s) = self.proof_target(shard, req, attempts) {
                ctx.send(s, Self::proof_read_msg(req, query));
                self.pending
                    .get_mut(&req)
                    .expect("present")
                    .awaiting
                    .insert(s);
            }
            // No slaves right now (mid-reassignment): the read idles on
            // its timeout, exactly like the pledged branch below.
        } else {
            let targets: Vec<NodeId> =
                self.shards[shard].slaves.iter().map(|(n, _)| *n).collect();
            for s in targets {
                let q = self.pending.get(&req).expect("present").query.clone();
                ctx.send(s, Msg::ReadRequest { req_id: req, query: q });
                self.pending
                    .get_mut(&req)
                    .expect("present")
                    .awaiting
                    .insert(s);
            }
        }
        ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
    }

    /// The verification environment for one shard's pipeline at `now`:
    /// only the owning shard's masters and slaves are trusted
    /// verification keys, so stamps and pledges from another shard's
    /// subgroup never verify here.
    fn verify_env(&self, shard: usize, now: SimTime) -> VerifyEnv<'_> {
        VerifyEnv {
            masters: &self.shards[shard].masters,
            slaves: &self.shards[shard].slaves,
            spares: &self.shards[shard].spares,
            now,
            max_latency: self.my_max_latency,
        }
    }

    /// Records a rejection: the reason-specific metric plus the
    /// per-client staleness counter the experiments watch.
    fn note_rejection(&mut self, ctx: &mut Ctx<'_, Msg>, reason: RejectReason) {
        if reason == RejectReason::Stale {
            self.counters.stale_rejections += 1;
        }
        ctx.metrics().inc(reason.metric());
    }

    /// Checks a digest stamp's master signature, memoized per statement.
    ///
    /// The cache key binds the *current* verification key of the
    /// stamping master to the stamp's signing bytes, so a forged
    /// statement, a different master, or a rotated key all hash to
    /// fresh keys and take the full signature check — a hit proves
    /// exactly "this statement verified under this key before".
    /// Freshness is deliberately not part of the statement: the caller
    /// re-checks it on every reply.
    fn check_stamp_cached(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        shard: usize,
        stamp: &StateDigestStamp,
    ) -> Result<(), RejectReason> {
        let mkey = {
            let env = self.verify_env(shard, ctx.now());
            env.master_key_of(stamp.master).copied()
        };
        let Some(mkey) = mkey else {
            return Err(RejectReason::BadStampSignature);
        };
        if self.cfg.stamp_cache_entries == 0 {
            ctx.charge(ctx.costs().verify);
            return stamp
                .verify(&mkey)
                .map_err(|_| RejectReason::BadStampSignature);
        }
        let key = Sha256::digest_parts(&[
            b"sdr/stamp-cache/v1",
            &mkey.encode(),
            &stamp.signing_bytes(),
        ]);
        if self.stamp_cache.get(&key).is_some() {
            ctx.charge(ctx.costs().cache_lookup);
            ctx.metrics().inc("client.stamp_cache_hit");
            if self.cfg.cache_verify && stamp.verify(&mkey).is_err() {
                ctx.metrics().inc("client.cache_divergence");
            }
            return Ok(());
        }
        ctx.metrics().inc("client.stamp_cache_miss");
        ctx.charge(ctx.costs().verify);
        match stamp.verify(&mkey) {
            Ok(()) => {
                self.stamp_cache.put(key, (), 1);
                Ok(())
            }
            Err(_) => Err(RejectReason::BadStampSignature),
        }
    }

    /// Checks one certificate's scoped signature, memoized in the
    /// verified-certificate set.  The cache key already binds issuer
    /// key, role, shard, and the full certificate statement
    /// ([`Certificate::scoped_cache_key`]), so a hit cannot launder a
    /// certificate across scopes.
    fn verify_cert_cached(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        issuer: &PublicKey,
        role: CertRole,
        shard: u32,
        cert: &Certificate,
    ) -> bool {
        if self.cfg.cert_cache_entries == 0 {
            ctx.charge(ctx.costs().verify);
            return cert.verify_scoped(issuer, role, shard).is_ok();
        }
        let key = cert.scoped_cache_key(issuer, role, shard);
        if self.cert_cache.get(&key).is_some() {
            ctx.charge(ctx.costs().cache_lookup);
            ctx.metrics().inc("client.cert_cache_hit");
            if self.cfg.cache_verify && cert.verify_scoped(issuer, role, shard).is_err() {
                ctx.metrics().inc("client.cache_divergence");
            }
            return true;
        }
        ctx.metrics().inc("client.cert_cache_miss");
        ctx.charge(ctx.costs().verify);
        if cert.verify_scoped(issuer, role, shard).is_ok() {
            self.cert_cache.put(key, (), 1);
            true
        } else {
            false
        }
    }

    /// Full verification of one pledged slave response (Section 3.2's
    /// client checks, shared with the proof pipeline via
    /// [`crate::verify`]).  Returns false when the response must be
    /// discarded.
    fn verify_response(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        shard: usize,
        slave: NodeId,
        result: &QueryResult,
        pledge: &Pledge,
    ) -> bool {
        // One result hash plus two signature verifications.
        ctx.charge(ctx.costs().hash_cost(result.size()));
        ctx.charge(ctx.costs().verify * 2u64);
        let env = self.verify_env(shard, ctx.now());
        match verify::verify_pledged_read(&env, slave, result, pledge) {
            Ok(()) => true,
            Err(reason) => {
                self.note_rejection(ctx, reason);
                false
            }
        }
    }

    /// Handles one proof-read reply: verify the digest stamp and the
    /// Merkle path, then accept *finally* — proof-verified reads never
    /// touch the double-check or audit machinery.
    ///
    /// Rejection runs the hardened path: the first rejected reply
    /// retries one *other* replica of the same shard, still on the proof
    /// path (a single bad replica should not cost the read its
    /// deterministic verification); only when that is spent does the
    /// read fall back to pledge+audit.
    fn handle_proof_reply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req: u64,
        result: QueryResult,
        proof: StateProof,
        stamp: StateDigestStamp,
    ) {
        let Some(p) = self.pending.get(&req) else { return };
        if p.strategy != ReadStrategy::Proof || !p.awaiting.contains(&from) {
            return; // Duplicate, unsolicited, or already fallen back.
        }
        let (shard, query) = (p.shard, p.query.clone());
        // O(log n) path hashes: the fold always runs — it is what ties
        // *this* result to the signed digest.  The stamp signature is
        // the memoized part: a repeat read under the same anchor pays a
        // cache lookup instead of a signature verification.
        ctx.charge(ctx.costs().hash_cost(64) * (1 + proof.depth() as u64));
        ctx.charge(ctx.costs().hash_cost(result.size()));
        let verdict = if !self.verify_env(shard, ctx.now()).knows_slave(from) {
            Err(RejectReason::UnknownSlave)
        } else {
            self.check_stamp_cached(ctx, shard, &stamp).and_then(|()| {
                let env = self.verify_env(shard, ctx.now());
                verify::verify_proof_read_stampless(&env, &query, &result, &proof, &stamp)
            })
        };
        match verdict {
            Ok(()) => {
                let p = self.pending.remove(&req).expect("present");
                self.acceptances.push((
                    from,
                    crate::pledge::ResultHash::of(&result, self.cfg.pledge_hash)
                        .bytes()
                        .to_vec(),
                ));
                ctx.metrics()
                    .observe("proof.bytes", proof.wire_len() as u64);
                ctx.metrics().observe("proof.depth", proof.depth() as u64);
                if matches!(query, Query::ScanRange { .. }) {
                    ctx.metrics()
                        .observe("range.proof_bytes", proof.wire_len() as u64);
                    ctx.metrics()
                        .add("range.rows_verified", result.row_count() as u64);
                }
                if let Some(parent) = p.parent_scan {
                    // One verified piece of a scattered scan: report to
                    // the parent's stitcher instead of accepting a read.
                    self.scan_part_done(ctx, parent, req, result.row_count() as u64);
                    return;
                }
                self.counters.reads_accepted += 1;
                self.counters.proof_reads_accepted += 1;
                ctx.metrics().inc("read.accepted");
                ctx.metrics().inc("read.proof_accepted");
                let latency = ctx.now().since(p.issued_at);
                ctx.metrics().observe("read.latency_us", latency.as_micros());
                ctx.metrics()
                    .observe("read.proof_latency_us", latency.as_micros());
            }
            Err(reason) => self.reject_proof_path(ctx, req, from, reason),
        }
    }

    /// Shared rejection path for proof-verified replies — point proofs,
    /// stream headers, and streamed chunks alike.  Deterministic lie
    /// detection: the slave shipped something its proof cannot cover (or
    /// a stale/forged anchor).  The first rejection retries one *other*
    /// replica of the same shard, still on the proof path; only when
    /// that is spent does the read fall back to pledge+audit.
    fn reject_proof_path(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: u64,
        from: NodeId,
        reason: RejectReason,
    ) {
        self.note_rejection(ctx, reason);
        // Umbrella counter: *any* rejected proof reply, whatever
        // the reason (the reason-specific metric has the detail).
        ctx.metrics().inc("read.proof_rejected");
        let Some(p) = self.pending.get_mut(&req) else { return };
        p.awaiting.remove(&from);
        p.stream = None;
        p.early_chunks.clear();
        let (shard, attempts) = (p.shard, p.attempts);
        let retry_target = (!p.proof_retried)
            .then(|| self.proof_retry_target(shard, req, attempts, from))
            .flatten();
        let p = self.pending.get_mut(&req).expect("present");
        match retry_target {
            Some(s) => {
                // Proof-path hardening: one same-shard replica
                // retry before any pledged fallback.
                p.proof_retried = true;
                p.awaiting.insert(s);
                let query = p.query.clone();
                self.counters.proof_retries += 1;
                ctx.metrics().inc("read.proof_retry");
                ctx.send(s, Self::proof_read_msg(req, query));
                ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
            }
            None => {
                if let Some(parent) = p.parent_scan {
                    // No pledged fallback for sub-scans: a stitched scan
                    // is only as strong as its weakest piece, so a part
                    // whose proof path is exhausted fails the whole scan.
                    self.pending.remove(&req);
                    self.fail_scan(ctx, parent);
                    return;
                }
                // Fall back to the pledged pipeline for the
                // remaining retries.
                ctx.metrics().inc("read.proof_fallback");
                p.strategy = ReadStrategy::Pledged;
                self.retry_read(ctx, req);
            }
        }
    }

    /// Handles a stream header: verify the manifest proof against the
    /// signed digest, then open the per-chunk verification window.  An
    /// empty stream (absent file or empty range) accepts immediately.
    #[allow(clippy::too_many_arguments)]
    fn handle_stream_header(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req: u64,
        proof: StreamProof,
        stamp: StateDigestStamp,
        first_chunk: u32,
        chunk_count: u32,
    ) {
        let Some(p) = self.pending.get(&req) else { return };
        if p.strategy != ReadStrategy::Proof || !p.awaiting.contains(&from) || p.stream.is_some()
        {
            return; // Duplicate, unsolicited, or already fallen back.
        }
        let (shard, query) = (p.shard, p.query.clone());
        // O(log n) header fold always runs; the stamp signature check
        // is memoized, exactly as on the point-proof path.
        ctx.charge(ctx.costs().hash_cost(64) * (1 + proof.depth() as u64));
        let verdict = if !self.verify_env(shard, ctx.now()).knows_slave(from) {
            Err(RejectReason::UnknownSlave)
        } else {
            self.check_stamp_cached(ctx, shard, &stamp).and_then(|()| {
                let env = self.verify_env(shard, ctx.now());
                verify::verify_stream_header_stampless(&env, &query, &proof, &stamp)
            })
        };
        if let Err(reason) = verdict {
            self.reject_proof_path(ctx, req, from, reason);
            return;
        }
        ctx.metrics().observe("proof.bytes", proof.wire_len() as u64);
        ctx.metrics().observe("proof.depth", proof.depth() as u64);
        // The announced window must lie within the verified manifest
        // slice — a slave cannot promise chunks the slice's proof does
        // not commit to.
        let (slice_lo, slice_hi) = proof.slice.as_ref().map_or((0, 0), |s| {
            (s.first as usize, s.first as usize + s.entries.len())
        });
        if (first_chunk as usize) < slice_lo
            || first_chunk as usize + chunk_count as usize > slice_hi
        {
            self.reject_proof_path(
                ctx,
                req,
                from,
                RejectReason::BadProof(ProofError::ShapeMismatch),
            );
            return;
        }
        if chunk_count == 0 {
            // Nothing to stream: proven absence or an empty range.
            self.accept_stream(ctx, req, 0, 0);
        } else {
            let p = self.pending.get_mut(&req).expect("present");
            p.stream = Some(StreamState {
                proof,
                source: from,
                first: first_chunk,
                count: chunk_count,
                received: HashSet::new(),
                bytes: 0,
            });
            // Chunks are in flight: give them a fresh timeout window.
            ctx.set_timer(self.cfg.read_timeout, tag(K_READ_TIMEOUT, req));
            // Replay any chunks the network delivered ahead of this
            // header; they verify exactly as if they had just arrived.
            let early = std::mem::take(
                &mut self.pending.get_mut(&req).expect("present").early_chunks,
            );
            for (src, index, data) in early {
                self.handle_stream_chunk(ctx, src, req, index, data);
            }
        }
    }

    /// Handles one streamed chunk: hash it, compare against the verified
    /// manifest entry, and accept the read once every announced chunk
    /// verified.  A bad chunk rejects the stream *at that chunk* — the
    /// already-verified prefix needed no buffering and no re-transfer.
    fn handle_stream_chunk(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        req: u64,
        index: u32,
        data: Vec<u8>,
    ) {
        let Some(p) = self.pending.get_mut(&req) else { return };
        let Some(st) = p.stream.as_mut() else {
            // Header not here yet (per-message latency reorders the
            // slave's sends): hold the chunk for replay, bounded.
            if p.strategy == ReadStrategy::Proof
                && p.awaiting.contains(&from)
                && p.early_chunks.len() < 1024
            {
                p.early_chunks.push((from, index, data));
            }
            return;
        };
        if st.source != from
            || index < st.first
            || index >= st.first + st.count
            || st.received.contains(&index)
        {
            return; // Wrong sender, outside the window, or duplicate.
        }
        ctx.charge(ctx.costs().hash_cost(data.len()));
        match st.proof.verify_chunk(index as usize, &data) {
            Ok(()) => {
                st.received.insert(index);
                st.bytes += data.len() as u64;
                ctx.metrics().inc("read.stream_chunks_verified");
                if st.received.len() as u32 == st.count {
                    let (chunks, bytes) = (u64::from(st.count), st.bytes);
                    self.accept_stream(ctx, req, chunks, bytes);
                }
            }
            Err(e) => {
                ctx.metrics().inc("read.stream_chunk_rejected");
                self.reject_proof_path(ctx, req, from, RejectReason::BadProof(e));
            }
        }
    }

    /// Final acceptance of a verified stream (all chunks checked, or an
    /// empty/absent result proven by the header alone).
    fn accept_stream(&mut self, ctx: &mut Ctx<'_, Msg>, req: u64, chunks: u64, bytes: u64) {
        let Some(p) = self.pending.remove(&req) else { return };
        self.counters.reads_accepted += 1;
        self.counters.proof_reads_accepted += 1;
        ctx.metrics().inc("read.accepted");
        ctx.metrics().inc("read.proof_accepted");
        ctx.metrics().inc("read.stream_accepted");
        ctx.metrics().observe("stream.chunks", chunks);
        ctx.metrics().observe("stream.bytes", bytes);
        let latency = ctx.now().since(p.issued_at);
        ctx.metrics().observe("read.latency_us", latency.as_micros());
        ctx.metrics()
            .observe("read.proof_latency_us", latency.as_micros());
    }

    fn finalize_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: u64) {
        let Some(p) = self.pending.get(&req) else { return };
        debug_assert!(!p.responses.is_empty());

        let first_hash = p.responses[0].2.result_hash;
        let unanimous = p
            .responses
            .iter()
            .all(|(_, _, pl)| pl.result_hash == first_hash);

        if !unanimous {
            // Section 4: "If not all answers match, the client
            // automatically double-checks, since at least one of the
            // slaves has to be malicious."
            if !p.mismatch_check_sent {
                ctx.metrics().inc("read.quorum_mismatch");
                let (m, _) = self.shards[p.shard]
                    .master
                    .expect("ready implies master");
                let pledges: Vec<Pledge> =
                    p.responses.iter().map(|(_, _, pl)| pl.clone()).collect();
                self.pending.get_mut(&req).expect("present").mismatch_check_sent = true;
                for pl in pledges {
                    self.counters.dc_sent += 1;
                    ctx.metrics().inc("dc.sent");
                    ctx.send(m, Msg::DoubleCheck { req_id: req, pledge: Box::new(pl) });
                }
            }
            return;
        }

        let p = self.pending.remove(&req).expect("present");
        // Forward pledges to the owning shard's auditor *before*
        // accepting (Section 3.4), unless this read is the sampled
        // double-check.
        let double_check = ctx.coin() < self.dc_prob;
        if double_check {
            let (m, _) = self.shards[p.shard].master.expect("ready implies master");
            self.counters.dc_sent += 1;
            ctx.metrics().inc("dc.sent");
            ctx.send(
                m,
                Msg::DoubleCheck {
                    req_id: req,
                    pledge: Box::new(p.responses[0].2.clone()),
                },
            );
        } else {
            let auditor = self.shards[p.shard].auditor;
            for (_, _, pl) in &p.responses {
                ctx.send(auditor, Msg::AuditSubmit { pledge: Box::new(pl.clone()) });
            }
        }
        for (slave, _, pl) in &p.responses {
            self.acceptances.push((*slave, pl.result_hash.bytes().to_vec()));
        }
        self.counters.reads_accepted += 1;
        ctx.metrics().inc("read.accepted");
        let latency = ctx.now().since(p.issued_at);
        ctx.metrics().observe("read.latency_us", latency.as_micros());
    }

    /// Shard whose subgroup contains master node `m` (by directory
    /// listing, falling back to the chosen setup master).
    fn shard_of_master(&self, m: NodeId) -> Option<usize> {
        self.shards.iter().position(|sv| {
            sv.master.map(|(n, _)| n) == Some(m) || sv.masters.iter().any(|(n, _)| *n == m)
        })
    }

    fn handle_reassign(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        excluded: NodeId,
        replacement: Option<(NodeId, sdr_crypto::Certificate)>,
    ) {
        if excluded == NodeId(u32::MAX) {
            // Master retiring (became auditor): full re-setup.
            self.counters.re_setups += 1;
            self.phase = Phase::Boot;
            self.boot(ctx);
            return;
        }
        let Some(shard) = self.shard_of_master(from) else { return };
        ctx.metrics().inc("client.reassigned");
        self.shards[shard].slaves.retain(|(n, _)| *n != excluded);
        self.shards[shard].spares.retain(|(n, _)| *n != excluded);
        if let Some((node, cert)) = replacement {
            let master_key = self.shards[shard].master.map(|(_, k)| k);
            let valid = master_key.is_some_and(|k| {
                self.verify_cert_cached(ctx, &k, CertRole::Slave, shard as u32, &cert)
            });
            if valid {
                self.shards[shard].slaves.push((node, cert.body.subject_key));
            }
        }
        if self.shards[shard].slaves.is_empty() {
            // No replacement capacity here: redo setup.
            self.counters.re_setups += 1;
            self.boot(ctx);
            return;
        }
        // Re-issue still-pending reads that were waiting on the excluded
        // slave ("the client that has made the discovery connects to its
        // newly assigned slave and issues the same read request again").
        let mut stalled: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.awaiting.contains(&excluded) && !p.sensitive)
            .map(|(r, _)| *r)
            .collect();
        // Sort: HashMap iteration order is process-random, and each retry
        // draws from the client RNG, so the order must be reproducible.
        stalled.sort_unstable();
        for req in stalled {
            self.retry_read(ctx, req);
        }
    }
}

impl Process<Msg> for ClientProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Jittered boot spreads directory load and client phase.
        let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..200_000));
        ctx.set_timer(jitter, tag(K_BOOT, 0));
        // Churn participation and the first leave time draw only when the
        // workload models churn at all, so non-churn runs consume an
        // identical RNG stream to the pre-churn simulator.
        if let Some(churn) = self.workload.churn {
            self.churns = ctx.rng().gen_bool(churn.fraction.clamp(0.0, 1.0));
            if self.churns {
                let first = jitter + churn.sample_session(ctx.rng());
                ctx.set_timer(first, tag(K_CHURN, 0));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, t: u64) {
        match (tag_kind(t), tag_req(t)) {
            (K_BOOT, _) => self.boot(ctx),
            (K_CHURN, _) => {
                let Some(churn) = self.workload.churn else { return };
                if self.phase == Phase::Offline {
                    // Rejoin: full setup phase, like any cold client.
                    ctx.metrics().inc("client.churn_join");
                    self.counters.re_setups += 1;
                    self.boot(ctx);
                    let gap = churn.sample_session(ctx.rng());
                    ctx.set_timer(gap, tag(K_CHURN, 0));
                } else {
                    self.go_offline(ctx);
                    let gap = churn.sample_offline(ctx.rng());
                    ctx.set_timer(gap, tag(K_CHURN, 0));
                }
            }
            (K_NEXT_READ, _) => {
                if self.phase == Phase::Offline {
                    self.read_timer_live = false;
                    return;
                }
                self.issue_read(ctx);
                self.schedule_next_read(ctx);
            }
            (K_NEXT_WRITE, _) => {
                if self.phase == Phase::Offline {
                    self.write_timer_live = false;
                    return;
                }
                if self.phase == Phase::Ready {
                    let ops = self.workload.sample_write(ctx.rng());
                    let shard = self.map.shard_of_ops(&ops);
                    if self.cfg.max_write_batch > 1
                        && self.outstanding_writes(shard) >= self.cfg.max_write_batch
                    {
                        // Pipeline window full: park the write until a
                        // response frees a slot.  Keeping a batch-sized
                        // window outstanding lets the sequencer fill its
                        // rounds without the client flooding a master
                        // that can only drain one batch per max_latency.
                        ctx.metrics().inc("write.deferred");
                        self.deferred_writes[shard].push_back(ops);
                    } else {
                        self.send_write(ctx, shard, ops);
                    }
                }
                self.schedule_next_write(ctx);
            }
            (K_READ_TIMEOUT, req)
                if self.pending.contains_key(&req) => {
                    let (sensitive, shard) = self
                        .pending
                        .get(&req)
                        .map(|p| (p.sensitive, p.shard))
                        .unwrap_or((false, 0));
                    let got_nothing = self
                        .pending
                        .get(&req)
                        .map(|p| p.responses.is_empty())
                        .unwrap_or(false);
                    ctx.metrics().inc("read.timeout");
                    if sensitive && got_nothing {
                        // Master unresponsive: fail over.
                        if let Some((m, _)) = self.shards[shard].master {
                            self.blacklist.insert(m);
                        }
                        self.pending.remove(&req);
                        self.counters.re_setups += 1;
                        self.boot(ctx);
                    } else {
                        self.retry_read(ctx, req);
                    }
                }
            (K_WRITE_TIMEOUT, req) => {
                if let Some((_, shard)) = self.pending_writes.remove(&req) {
                    ctx.metrics().inc("write.timeout");
                    // Master presumed crashed: redo the setup phase
                    // (Section 3: "all the clients connected to the crashed
                    // server will have to go through the setup process
                    // again").
                    if let Some((m, _)) = self.shards[shard].master {
                        self.blacklist.insert(m);
                    }
                    self.counters.re_setups += 1;
                    self.boot(ctx);
                }
            }
            (K_SETUP_TIMEOUT, _)
                if !matches!(self.phase, Phase::Ready | Phase::Offline) => {
                    // Blame exactly the masters that owe a SetupResponse
                    // (shards that answered are innocent; shards still
                    // waiting on the directory have no master to blame).
                    for shard in 0..self.shards.len() {
                        if self.awaiting_setup.contains(&shard) {
                            if let Some((m, _)) = self.shards[shard].master.take() {
                                self.blacklist.insert(m);
                            }
                        }
                    }
                    self.boot(ctx);
                }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        // A churned-away client has no socket to receive on: late replies
        // from its previous session fall on the floor.
        if self.phase == Phase::Offline {
            return;
        }
        match msg {
            Msg::DirResponse {
                shard,
                certs,
                nodes,
                auditor,
            } => {
                let shard = shard as usize;
                if self.phase != Phase::AwaitDir && self.phase != Phase::AwaitSetup {
                    return;
                }
                if shard >= self.shards.len() || self.shards[shard].master.is_some() {
                    return; // Unknown shard or duplicate response.
                }
                self.shards[shard].masters.clear();
                let content_key = self.content_key;
                for (cert, node) in certs.iter().zip(nodes.iter()) {
                    // The certificate must grant the master role *for
                    // this shard* — a master certificate of another
                    // subgroup must not authenticate here.
                    if self.verify_cert_cached(
                        ctx,
                        &content_key,
                        CertRole::Master,
                        shard as u32,
                        cert,
                    ) {
                        self.shards[shard].masters.push((*node, cert.body.subject_key));
                    } else {
                        ctx.metrics().inc("client.bad_master_cert");
                    }
                }
                self.shards[shard].auditor = auditor;
                match self.choose_master(shard, auditor) {
                    Some(m) => {
                        self.shards[shard].master = Some(m);
                        self.awaiting_setup.insert(shard);
                        ctx.send(m.0, Msg::SetupRequest);
                        if self.shards.iter().all(|sv| sv.master.is_some()) {
                            self.phase = Phase::AwaitSetup;
                        }
                    }
                    None => {
                        // All of this shard's masters blacklisted: forgive
                        // *this shard's* masters and retry later.  Evidence
                        // against other shards' masters must survive — a
                        // global clear would let a Byzantine master in
                        // shard j be re-chosen because shard k ran dry.
                        for (n, _) in &self.shards[shard].masters {
                            self.blacklist.remove(n);
                        }
                        ctx.set_timer(self.cfg.read_timeout, tag(K_BOOT, 0));
                    }
                }
            }
            Msg::SetupResponse {
                shard,
                slaves,
                spares,
                auditor,
            } => {
                let shard = shard as usize;
                // Accept during AwaitDir too: with several shards, a
                // fast shard's SetupResponse can overtake a slow shard's
                // DirResponse (the phase flips to AwaitSetup only once
                // every shard has chosen a master).  Staleness is still
                // caught below — boot() clears every chosen master, so a
                // pre-reboot response fails the sender check.
                if !matches!(self.phase, Phase::AwaitDir | Phase::AwaitSetup)
                    || shard >= self.shards.len()
                {
                    return;
                }
                let Some((master_node, mkey)) = self.shards[shard].master else { return };
                if from != master_node {
                    return; // Not the master this shard set up with.
                }
                self.awaiting_setup.remove(&shard);
                if slaves.is_empty() {
                    // This master has no capacity (e.g. it is the auditor).
                    self.blacklist.insert(from);
                    self.boot(ctx);
                    return;
                }
                self.shards[shard].slaves.clear();
                for (node, cert) in slaves {
                    if self.verify_cert_cached(ctx, &mkey, CertRole::Slave, shard as u32, &cert) {
                        self.shards[shard].slaves.push((node, cert.body.subject_key));
                    } else {
                        ctx.metrics().inc("client.bad_slave_cert");
                    }
                }
                if self.shards[shard].slaves.is_empty() {
                    self.blacklist.insert(from);
                    self.boot(ctx);
                    return;
                }
                // Spares are optional: verify what the master offered,
                // keep whatever passes (an empty list just means the
                // proof path has no same-shard retry target).
                self.shards[shard].spares.clear();
                for (node, cert) in spares {
                    if self.verify_cert_cached(ctx, &mkey, CertRole::Slave, shard as u32, &cert) {
                        self.shards[shard].spares.push((node, cert.body.subject_key));
                    } else {
                        ctx.metrics().inc("client.bad_slave_cert");
                    }
                }
                self.shards[shard].auditor = auditor;
                if self.shards.iter().all(|sv| !sv.slaves.is_empty()) {
                    self.phase = Phase::Ready;
                    ctx.metrics().inc("client.ready");
                    if !self.read_timer_live {
                        self.schedule_next_read(ctx);
                    }
                    if self.is_writer && !self.write_timer_live {
                        self.schedule_next_write(ctx);
                    }
                }
            }
            Msg::ReadResponse {
                req_id,
                result,
                pledge,
            } => {
                let Some(shard) = self.pending.get(&req_id).map(|p| p.shard) else {
                    return;
                };
                let valid = self.verify_response(ctx, shard, from, &result, &pledge);
                let Some(p) = self.pending.get_mut(&req_id) else { return };
                if !p.awaiting.remove(&from) {
                    return; // Duplicate or unsolicited.
                }
                if valid {
                    p.responses.push((from, result, *pledge));
                }
                if p.awaiting.is_empty() {
                    if p.responses.is_empty() {
                        self.retry_read(ctx, req_id);
                    } else {
                        self.finalize_read(ctx, req_id);
                    }
                }
            }
            Msg::ProofReadReply {
                query,
                result,
                proof,
                digest_stamp,
            }
            | Msg::RangeReadReply {
                query,
                result,
                proof,
                digest_stamp,
            } => {
                // The reply is content-addressed (no request id), so one
                // cached `Arc<Msg>` can answer every reader of a hot key
                // or hot range.  Route it to the lowest-numbered pending
                // proof read for this exact query still awaiting this
                // slave — lowest so duplicate replies resolve reads in
                // issue order, deterministically.
                let req = self
                    .pending
                    .iter()
                    .filter(|(_, p)| {
                        p.strategy == ReadStrategy::Proof
                            && p.awaiting.contains(&from)
                            && p.query == *query
                    })
                    .map(|(r, _)| *r)
                    .min();
                if let Some(req) = req {
                    self.handle_proof_reply(ctx, from, req, result, *proof, digest_stamp);
                }
            }
            Msg::StreamHeader {
                req_id,
                proof,
                digest_stamp,
                first_chunk,
                chunk_count,
            } => self.handle_stream_header(
                ctx,
                from,
                req_id,
                *proof,
                digest_stamp,
                first_chunk,
                chunk_count,
            ),
            Msg::StreamChunk { req_id, index, data } => {
                self.handle_stream_chunk(ctx, from, req_id, index, data)
            }
            Msg::ReadRefused { req_id, reason } => {
                if !self.pending.contains_key(&req_id) {
                    return;
                }
                ctx.metrics().inc("read.refused");
                match reason {
                    RefuseReason::Excluded => {
                        // Learn of exclusions we missed; ask the owning
                        // shard's master for a new slave.
                        let shard = self.pending.get(&req_id).map(|p| p.shard).unwrap_or(0);
                        self.shards[shard].slaves.retain(|(n, _)| *n != from);
                        self.shards[shard].spares.retain(|(n, _)| *n != from);
                        if let Some((m, _)) = self.shards[shard].master {
                            self.phase = Phase::AwaitSetup;
                            self.awaiting_setup.insert(shard);
                            ctx.send(m, Msg::SetupRequest);
                            ctx.set_timer(self.cfg.read_timeout * 4, tag(K_SETUP_TIMEOUT, 0));
                        }
                        self.retry_read(ctx, req_id);
                    }
                    RefuseReason::OutOfSync => {
                        let Some(p) = self.pending.get_mut(&req_id) else { return };
                        p.awaiting.remove(&from);
                        if p.awaiting.is_empty() && p.responses.is_empty() {
                            // Everyone refused: retry after timeout fires.
                        } else if p.awaiting.is_empty() {
                            self.finalize_read(ctx, req_id);
                        }
                    }
                }
            }
            Msg::TrustedReadResponse { req_id, result } => {
                if let Some(p) = self.pending.remove(&req_id) {
                    // Results from trusted hardware are authoritative.
                    self.counters.reads_accepted += 1;
                    ctx.metrics().inc("read.accepted");
                    ctx.metrics().inc("read.accepted_sensitive");
                    let latency = ctx.now().since(p.issued_at);
                    ctx.metrics().observe("read.latency_us", latency.as_micros());
                    ctx.metrics()
                        .observe("read.sensitive_latency_us", latency.as_micros());
                    let _ = result;
                }
            }
            Msg::DoubleCheckResponse { req_id, verdict } => match verdict {
                CheckVerdict::Match => {
                    ctx.metrics().inc("client.dc_match");
                    // Quorum-mismatch path: a Match identifies an honest
                    // pledge; accept pending read if still open.
                    if self.pending.contains_key(&req_id) {
                        let p = self.pending.remove(&req_id).expect("present");
                        self.counters.reads_accepted += 1;
                        ctx.metrics().inc("read.accepted");
                        let latency = ctx.now().since(p.issued_at);
                        ctx.metrics().observe("read.latency_us", latency.as_micros());
                    }
                }
                CheckVerdict::Mismatch { correct } => {
                    ctx.metrics().inc("client.dc_mismatch");
                    ctx.charge(ctx.costs().hash_cost(correct.size()));
                    if self.pending.contains_key(&req_id) {
                        let p = self.pending.remove(&req_id).expect("present");
                        // The master's answer is authoritative.
                        self.counters.reads_accepted += 1;
                        ctx.metrics().inc("read.accepted");
                        ctx.metrics().inc("read.corrected_by_master");
                        let latency = ctx.now().since(p.issued_at);
                        ctx.metrics().observe("read.latency_us", latency.as_micros());
                    }
                }
                CheckVerdict::VersionUnavailable => {
                    ctx.metrics().inc("client.dc_version_unavailable");
                    self.pending.remove(&req_id);
                }
                CheckVerdict::Throttled => {
                    self.counters.dc_throttled += 1;
                    ctx.metrics().inc("client.dc_throttled");
                    self.pending.remove(&req_id);
                }
            },
            Msg::WriteResponse { req_id, outcome } => {
                if let Some((sent_at, shard)) = self.pending_writes.remove(&req_id) {
                    match outcome {
                        WriteOutcome::Committed { .. } => {
                            ctx.metrics().inc("write.committed");
                            let latency = ctx.now().since(sent_at);
                            ctx.metrics().observe("write.latency_us", latency.as_micros());
                        }
                        WriteOutcome::AccessDenied => {
                            ctx.metrics().inc("write.denied_seen");
                        }
                        WriteOutcome::Failed(_) => {
                            ctx.metrics().inc("write.failed_seen");
                        }
                    }
                    // The response freed a slot in the shard's pipeline
                    // window; refill it from the deferred queue.
                    self.flush_deferred_writes(ctx, shard);
                }
            }
            Msg::Reassign {
                excluded,
                replacement,
            } => self.handle_reassign(ctx, from, excluded, replacement),
            Msg::AuditorChanged { shard, auditor } => {
                if let Some(sv) = self.shards.get_mut(shard as usize) {
                    sv.auditor = auditor;
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("client-{}", self.index)
    }
}
