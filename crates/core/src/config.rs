//! System configuration: every knob the paper names, plus simulation knobs.

use sdr_crypto::SignatureScheme;
use sdr_sim::SimDuration;
use serde::{FromJson, ToJson};

/// Which hash goes into pledge packets.
///
/// The paper specifies SHA-1 [1]; SHA-256 is offered as the modern choice.
/// Either way the protocol logic is identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, ToJson, FromJson)]
pub enum HashAlgo {
    /// SHA-1 (the paper's choice).
    Sha1,
    /// SHA-256.
    Sha256,
}

/// Security level of a read, for the Section 4 variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReadLevel {
    /// Normal read: slave executes, double-checked with probability `p`.
    Normal,
    /// Security-sensitive read: executed only by the trusted master
    /// ("the probability … can be set to 1, which means execute only on
    /// trusted hosts").
    Sensitive,
}

/// Greedy-client detector configuration (Section 3.3).
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct GreedyConfig {
    /// Sliding-window length over which double-checks are counted.
    pub window: SimDuration,
    /// A client is suspected greedy when its double-check count exceeds
    /// `factor ×` the expected count (`p ×` its reads in the window).
    pub factor: f64,
    /// Suspicion requires at least this many double-checks in the window
    /// (avoids flagging unlucky low-volume clients).
    pub min_count: u64,
    /// Fraction of a suspected client's double-checks the master ignores
    /// ("enforce fair play by simply ignoring a large fraction of the
    /// double-check requests coming from clients suspected to be greedy").
    pub ignore_fraction: f64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            window: SimDuration::from_secs(30),
            factor: 4.0,
            min_count: 12,
            ignore_fraction: 0.9,
        }
    }
}

/// Full system configuration.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct SystemConfig {
    /// Number of master subgroups, each owning one contiguous shard of
    /// the key/path space with its own write queue, sequencer, digest
    /// stamps, slave set, and elected auditor.  `1` reproduces the
    /// paper's single-group deployment exactly; higher values scale
    /// commit throughput, since the `max_latency` write-spacing rule is
    /// per-queue.
    pub n_shards: usize,
    /// Number of master servers *per shard* (the trusted core).  The
    /// highest-ranked master in each shard's current view is that
    /// shard's elected auditor and holds no slaves.
    pub n_masters: usize,
    /// Number of slave servers *per shard* (assigned round-robin to the
    /// shard's non-auditor masters).
    pub n_slaves: usize,
    /// Number of clients.
    pub n_clients: usize,
    /// The paper's `max_latency`: bound on the inconsistency window, the
    /// minimum spacing between writes, and the pledge freshness horizon.
    pub max_latency: SimDuration,
    /// Period between master keep-alive broadcasts (must be well under
    /// `max_latency` for slaves to stay serviceable).
    pub keepalive_period: SimDuration,
    /// The "double-check" probability `p` (Section 3.3).
    pub double_check_prob: f64,
    /// Fraction of pledges the auditor verifies (1.0 = every read, the
    /// paper's default; lower values model the overload fallback of
    /// Section 3.4).
    pub audit_fraction: f64,
    /// Whether the auditor uses its query-result cache.
    pub auditor_cache: bool,
    /// Capacity of the auditor's result cache.
    pub auditor_cache_capacity: usize,
    /// Maximum virtual CPU the auditor spends per audit slice (bounds how
    /// long its event handler can stay busy between heartbeats).
    pub audit_slice: SimDuration,
    /// Interval between audit slices.
    pub audit_tick: SimDuration,
    /// Client-side read timeout before a retry.
    pub read_timeout: SimDuration,
    /// Retries before the client gives up on a read.
    pub read_retries: u32,
    /// Number of slaves each client reads from (1 = basic protocol;
    /// >1 = the Section 4 replicated-read variant).
    pub read_quorum: usize,
    /// Whether static point reads (`GetRow`/`ReadFile`) take the
    /// authenticated proof path: the slave answers with an O(log n)
    /// Merkle path against a master-signed state digest, the client
    /// verifies deterministically, and the auditor never sees the read.
    /// When off, every read goes through pledge + audit.
    pub proof_reads: bool,
    /// Byte budget of each slave's hot-read proof cache: assembled
    /// `ProofReadReply` payloads and `StreamProof` headers memoized per
    /// `(anchor stamp, query)` and wiped whenever the replica state or
    /// anchor changes.  `0` disables the cache (every read rebuilds its
    /// proof, the pre-cache pipeline).
    pub proof_cache_bytes: usize,
    /// Entries in each client's stamp-verification cache: accepted
    /// `StateDigestStamp` statements remembered by digest so repeat
    /// reads under one anchor skip the signature check.  `0` disables.
    pub stamp_cache_entries: usize,
    /// Entries in each client's verified-certificate set (memoized
    /// `verify_scoped` outcomes).  `0` disables.
    pub cert_cache_entries: usize,
    /// Recheck mode: on every cache hit the host *also* recomputes the
    /// value fresh and compares, counting any divergence in the
    /// `slave.cache_divergence` / `client.cache_divergence` metrics.
    /// Purely a host-side oracle — virtual charges, message bytes, and
    /// the `RunReport` are byte-identical with it on or off.
    pub cache_verify: bool,
    /// Fraction of reads that are security-sensitive (Section 4 variant;
    /// 0.0 = everything normal).
    pub sensitive_fraction: f64,
    /// Greedy-client detection parameters.
    pub greedy: GreedyConfig,
    /// Hash algorithm inside pledges.
    pub pledge_hash: HashAlgo,
    /// Signature scheme for all parties (HMAC stand-in for large sims,
    /// MSS for real end-to-end security).
    pub signer: SignatureScheme,
    /// MSS tree height when `signer == Mss` (2^height signatures/node).
    pub mss_height: u8,
    /// Upper bound on client writes the shard's sequencer packs into one
    /// totally-ordered round.  `1` reproduces the paper's pipeline
    /// exactly — one write, one ordered round, one signed stamp pair per
    /// `max_latency` window.  Higher values amortise the ordering round
    /// and the stamp signatures over the whole batch: the queue still
    /// opens only once per `max_latency`, but drains up to
    /// `max_write_batch` writes as one multi-version commit anchored by
    /// a single [`crate::messages::StateDigestStamp`].
    pub max_write_batch: usize,
    /// Tick period for the masters' broadcast engine.
    pub tob_tick: SimDuration,
    /// Per-version snapshots retained by masters and auditor.
    pub snapshot_capacity: usize,
    /// World seed (drives all randomness).
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_shards: 1,
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            max_latency: SimDuration::from_millis(2_000),
            keepalive_period: SimDuration::from_millis(500),
            double_check_prob: 0.02,
            audit_fraction: 1.0,
            auditor_cache: true,
            auditor_cache_capacity: 4_096,
            audit_slice: SimDuration::from_millis(20),
            audit_tick: SimDuration::from_millis(25),
            read_timeout: SimDuration::from_millis(1_500),
            read_retries: 3,
            read_quorum: 1,
            proof_reads: true,
            proof_cache_bytes: 1 << 20,
            stamp_cache_entries: 64,
            cert_cache_entries: 256,
            cache_verify: false,
            sensitive_fraction: 0.0,
            greedy: GreedyConfig::default(),
            pledge_hash: HashAlgo::Sha1,
            signer: SignatureScheme::Hmac,
            mss_height: 10,
            max_write_batch: 1,
            tob_tick: SimDuration::from_millis(50),
            snapshot_capacity: 64,
            seed: 42,
        }
    }
}

impl SystemConfig {
    /// Sanity-checks the configuration, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("need at least 1 shard".into());
        }
        if self.n_masters < 2 {
            return Err("need at least 2 masters per shard (one is the auditor)".into());
        }
        if self.n_slaves == 0 || self.n_clients == 0 {
            return Err("need at least one slave and one client".into());
        }
        if !(0.0..=1.0).contains(&self.double_check_prob) {
            return Err("double_check_prob must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.audit_fraction) {
            return Err("audit_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.sensitive_fraction) {
            return Err("sensitive_fraction must be in [0,1]".into());
        }
        if self.keepalive_period >= self.max_latency {
            return Err("keepalive_period must be below max_latency".into());
        }
        if self.read_quorum == 0 || self.read_quorum > self.n_slaves {
            return Err("read_quorum must be in 1..=n_slaves".into());
        }
        if self.max_write_batch == 0 {
            return Err("max_write_batch must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SystemConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = SystemConfig {
            n_masters: 1,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            double_check_prob: 1.5,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            keepalive_period: SystemConfig::default().max_latency,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            read_quorum: 99,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            n_shards: 0,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            max_write_batch: 0,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
