//! Converts store-level query costs into virtual CPU time.

use sdr_sim::{CostModel, SimDuration};
use sdr_store::QueryCost;

/// CPU time to execute a query with cost profile `cost` producing
/// `result_bytes` of output.
pub fn query_charge(cost: &QueryCost, result_bytes: usize, m: &CostModel) -> SimDuration {
    m.query_fixed
        + m.row_scan * cost.rows_scanned
        + m.index_probe * cost.index_probes
        + m.grep_cost(cost.bytes_processed as usize)
        + m.serde_cost(result_bytes)
}

/// CPU time to hash `bytes` of result data (client verification, pledge
/// construction).
pub fn hash_charge(bytes: usize, m: &CostModel) -> SimDuration {
    m.hash_cost(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_with_work() {
        let m = CostModel::standard();
        let cheap = QueryCost {
            rows_scanned: 1,
            index_probes: 0,
            bytes_processed: 0,
            rows_returned: 1,
        };
        let expensive = QueryCost {
            rows_scanned: 10_000,
            index_probes: 0,
            bytes_processed: 1 << 20,
            rows_returned: 100,
        };
        assert!(query_charge(&expensive, 4096, &m) > query_charge(&cheap, 64, &m) * 100);
    }

    #[test]
    fn index_cheaper_than_scan_for_selective_queries() {
        let m = CostModel::standard();
        let scan = QueryCost {
            rows_scanned: 10_000,
            index_probes: 0,
            bytes_processed: 0,
            rows_returned: 3,
        };
        let probe = QueryCost {
            rows_scanned: 0,
            index_probes: 3,
            bytes_processed: 0,
            rows_returned: 3,
        };
        assert!(query_charge(&probe, 64, &m) < query_charge(&scan, 64, &m));
    }
}
