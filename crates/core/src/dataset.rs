//! Deterministic initial content generation.
//!
//! Builds the replicated data content every replica starts from: a product
//! catalogue with a secondary index (the paper's CDN/e-commerce scenario,
//! Section 6), a reviews table (join workloads), and a tree of text files
//! (the `grep Expression Path` workloads of Section 2).

use sdr_crypto::HmacDrbg;
use sdr_store::{Database, Document, UpdateOp};
use serde::{FromJson, ToJson};

/// Shape of the generated dataset.
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct DatasetSpec {
    /// Rows in the `products` table.
    pub n_products: usize,
    /// Rows in the `reviews` table.
    pub n_reviews: usize,
    /// Number of text files under `/docs`.
    pub n_files: usize,
    /// Lines per file.
    pub lines_per_file: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            n_products: 500,
            n_reviews: 1_000,
            n_files: 40,
            lines_per_file: 30,
            seed: 7,
        }
    }
}

/// Product categories (also used by workload generators).
pub const CATEGORIES: [&str; 6] = [
    "tools",
    "explosives",
    "adhesives",
    "optics",
    "rockets",
    "decoys",
];

/// Words sprinkled into generated file lines (grep targets).
pub const LOG_WORDS: [&str; 8] = [
    "shipment", "error", "restock", "audit", "returned", "damaged", "express", "backorder",
];

impl DatasetSpec {
    /// Builds the initial database (applied as committed writes, so the
    /// resulting `content_version` is deterministic).
    pub fn build(&self) -> Database {
        let mut db = Database::new();
        let mut drbg = HmacDrbg::from_seed_label(self.seed, b"dataset");

        // Schema.
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "products".into(),
                indexes: vec!["category".into()],
            },
            UpdateOp::CreateTable {
                table: "reviews".into(),
                indexes: vec!["product_id".into()],
            },
        ])
        .expect("schema applies");

        // Products.
        let ops: Vec<UpdateOp> = (0..self.n_products)
            .map(|i| {
                let cat = CATEGORIES[(drbg.next_u64() % CATEGORIES.len() as u64) as usize];
                let price = 5 + (drbg.next_u64() % 995) as i64;
                let stock = (drbg.next_u64() % 200) as i64;
                UpdateOp::Insert {
                    table: "products".into(),
                    key: i as u64 + 1,
                    doc: Document::new()
                        .with("id", i as i64 + 1)
                        .with("name", format!("product-{i:04}"))
                        .with("category", cat)
                        .with("price", price)
                        .with("stock", stock),
                }
            })
            .collect();
        db.apply_write(&ops).expect("products apply");

        // Reviews.
        let ops: Vec<UpdateOp> = (0..self.n_reviews)
            .map(|i| {
                let product = 1 + (drbg.next_u64() % self.n_products.max(1) as u64) as i64;
                let stars = 1 + (drbg.next_u64() % 5) as i64;
                UpdateOp::Insert {
                    table: "reviews".into(),
                    key: i as u64 + 1,
                    doc: Document::new()
                        .with("product_id", product)
                        .with("stars", stars)
                        .with("text", format!("review {i}: {} stars", stars)),
                }
            })
            .collect();
        db.apply_write(&ops).expect("reviews apply");

        // Files.
        let ops: Vec<UpdateOp> = (0..self.n_files)
            .map(|f| {
                let mut contents = String::new();
                for l in 0..self.lines_per_file {
                    let word = LOG_WORDS[(drbg.next_u64() % LOG_WORDS.len() as u64) as usize];
                    let code = drbg.next_u64() % 10_000;
                    contents.push_str(&format!("entry {l:03} {word} code={code:04}\n"));
                }
                UpdateOp::WriteFile {
                    path: format!("/docs/file-{f:03}.log"),
                    contents,
                }
            })
            .collect();
        db.apply_write(&ops).expect("files apply");

        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_build() {
        let spec = DatasetSpec::default();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn different_seed_different_content() {
        let a = DatasetSpec::default().build();
        let b = DatasetSpec {
            seed: 8,
            ..DatasetSpec::default()
        }
        .build();
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn shape_matches_spec() {
        let spec = DatasetSpec {
            n_products: 10,
            n_reviews: 20,
            n_files: 3,
            lines_per_file: 5,
            seed: 1,
        };
        let db = spec.build();
        assert_eq!(db.table("products").unwrap().len(), 10);
        assert_eq!(db.table("reviews").unwrap().len(), 20);
        assert_eq!(db.fs().file_count(), 3);
        // Version: schema + products + reviews + files = 4 committed writes.
        assert_eq!(db.version(), 4);
    }

    #[test]
    fn products_have_indexed_category() {
        let db = DatasetSpec::default().build();
        assert!(db.table("products").unwrap().has_index("category"));
    }
}
