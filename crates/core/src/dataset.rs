//! Deterministic initial content generation.
//!
//! Builds the replicated data content every replica starts from: a product
//! catalogue with a secondary index (the paper's CDN/e-commerce scenario,
//! Section 6), a reviews table (join workloads), and a tree of text files
//! (the `grep Expression Path` workloads of Section 2).

use crate::shard::ShardMap;
use sdr_crypto::HmacDrbg;
use sdr_store::{Database, Document, UpdateOp};
use serde::{FromJson, ToJson};

/// Shape of the generated dataset.
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct DatasetSpec {
    /// Rows in the `products` table.
    pub n_products: usize,
    /// Rows in the `reviews` table.
    pub n_reviews: usize,
    /// Number of text files under `/docs`.
    pub n_files: usize,
    /// Lines per file.
    pub lines_per_file: usize,
    /// Lines of an identical shared block prepended to *every* file
    /// (models shared assets — headers, boilerplate, common media
    /// segments — that the chunk store deduplicates across files).
    pub shared_block_lines: usize,
    /// Fraction of the catalogue (and file set) forming the flash-crowd
    /// hot set; point reads land there with probability [`skew`].  The
    /// hot set is the lowest-numbered keys/ordinals, at least one entry.
    ///
    /// [`skew`]: DatasetSpec::skew
    pub hot_fraction: f64,
    /// Probability that a sampled point read (`GetRow`, `ReadFile`,
    /// `ReadFileRange`) targets the hot set instead of drawing
    /// uniformly.  `0.0` (the default) reproduces the pre-skew sampler
    /// byte-identically; `1.0` sends every point read to the hot set —
    /// the flash-crowd extreme.
    pub skew: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            n_products: 500,
            n_reviews: 1_000,
            n_files: 40,
            lines_per_file: 30,
            shared_block_lines: 0,
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 7,
        }
    }
}

/// Product categories (also used by workload generators).
pub const CATEGORIES: [&str; 6] = [
    "tools",
    "explosives",
    "adhesives",
    "optics",
    "rockets",
    "decoys",
];

/// Words sprinkled into generated file lines (grep targets).
pub const LOG_WORDS: [&str; 8] = [
    "shipment", "error", "restock", "audit", "returned", "damaged", "express", "backorder",
];

impl DatasetSpec {
    /// Builds the initial database (applied as committed writes, so the
    /// resulting `content_version` is deterministic).
    pub fn build(&self) -> Database {
        self.build_shards(&ShardMap::single()).pop().expect("one shard")
    }

    /// Builds one shard's slice of the initial database (convenience
    /// over [`DatasetSpec::build_shards`]; note it still generates and
    /// applies *every* shard's slice — callers that need several slices
    /// should call `build_shards` once instead of looping).
    pub fn build_shard(&self, map: &ShardMap, shard: usize) -> Database {
        self.build_shards(map).swap_remove(shard)
    }

    /// Builds every shard's slice of the initial database in one pass:
    /// the generator stream runs exactly once and its operations are
    /// partitioned through the [`ShardMap`] — products by key range,
    /// reviews by the product they reference (so joins stay
    /// shard-local), files by ordinal range.
    ///
    /// Every shard applies the same four commits (schema, its products,
    /// its reviews, its files), so all shards start at the same
    /// `content_version`, and the single-shard build is byte-identical
    /// to the classic unsharded one.
    pub fn build_shards(&self, map: &ShardMap) -> Vec<Database> {
        let n = map.n_shards();
        let mut drbg = HmacDrbg::from_seed_label(self.seed, b"dataset");

        // Schema (identical in every shard).
        let mut dbs: Vec<Database> = (0..n)
            .map(|_| {
                let mut db = Database::new();
                db.apply_write(&[
                    UpdateOp::CreateTable {
                        table: "products".into(),
                        indexes: vec!["category".into()],
                    },
                    UpdateOp::CreateTable {
                        table: "reviews".into(),
                        indexes: vec!["product_id".into()],
                    },
                ])
                .expect("schema applies");
                db
            })
            .collect();

        let apply_partitioned = |dbs: &mut Vec<Database>, parts: Vec<Vec<UpdateOp>>| {
            for (db, ops) in dbs.iter_mut().zip(parts) {
                db.apply_write(&ops).expect("shard slice applies");
            }
        };

        // Products.
        let mut parts: Vec<Vec<UpdateOp>> = vec![Vec::new(); n];
        for i in 0..self.n_products {
            let cat = CATEGORIES[(drbg.next_u64() % CATEGORIES.len() as u64) as usize];
            let price = 5 + (drbg.next_u64() % 995) as i64;
            let stock = (drbg.next_u64() % 200) as i64;
            let key = i as u64 + 1;
            parts[map.shard_of_row(key)].push(UpdateOp::Insert {
                table: "products".into(),
                key,
                doc: Document::new()
                    .with("id", i as i64 + 1)
                    .with("name", format!("product-{i:04}"))
                    .with("category", cat)
                    .with("price", price)
                    .with("stock", stock),
            });
        }
        apply_partitioned(&mut dbs, parts);

        // Reviews — placed with the product they reference.
        let mut parts: Vec<Vec<UpdateOp>> = vec![Vec::new(); n];
        for i in 0..self.n_reviews {
            let product = 1 + (drbg.next_u64() % self.n_products.max(1) as u64) as i64;
            let stars = 1 + (drbg.next_u64() % 5) as i64;
            parts[map.shard_of_row(product as u64)].push(UpdateOp::Insert {
                table: "reviews".into(),
                key: i as u64 + 1,
                doc: Document::new()
                    .with("product_id", product)
                    .with("stars", stars)
                    .with("text", format!("review {i}: {} stars", stars)),
            });
        }
        apply_partitioned(&mut dbs, parts);

        // Files.  The shared block is drawn once (from its own stream,
        // so enabling it never perturbs the per-file content) and
        // prepended verbatim to every file: identical leading bytes
        // chunk identically, so the chunk store keeps one copy.
        let shared_block = if self.shared_block_lines > 0 {
            let mut block_drbg = HmacDrbg::from_seed_label(self.seed, b"shared-block");
            let mut block = String::new();
            for l in 0..self.shared_block_lines {
                let word = LOG_WORDS[(block_drbg.next_u64() % LOG_WORDS.len() as u64) as usize];
                let code = block_drbg.next_u64() % 10_000;
                block.push_str(&format!("asset {l:03} {word} code={code:04}\n"));
            }
            block
        } else {
            String::new()
        };
        let mut parts: Vec<Vec<UpdateOp>> = vec![Vec::new(); n];
        for f in 0..self.n_files {
            let mut contents = shared_block.clone();
            for l in 0..self.lines_per_file {
                let word = LOG_WORDS[(drbg.next_u64() % LOG_WORDS.len() as u64) as usize];
                let code = drbg.next_u64() % 10_000;
                contents.push_str(&format!("entry {l:03} {word} code={code:04}\n"));
            }
            let path = format!("/docs/file-{f:03}.log");
            parts[map.shard_of_path(&path)].push(UpdateOp::WriteFile { path, contents });
        }
        apply_partitioned(&mut dbs, parts);

        dbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_build() {
        let spec = DatasetSpec::default();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn different_seed_different_content() {
        let a = DatasetSpec::default().build();
        let b = DatasetSpec {
            seed: 8,
            ..DatasetSpec::default()
        }
        .build();
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn shape_matches_spec() {
        let spec = DatasetSpec {
            n_products: 10,
            n_reviews: 20,
            n_files: 3,
            lines_per_file: 5,
            shared_block_lines: 0,
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 1,
        };
        let db = spec.build();
        assert_eq!(db.table("products").unwrap().len(), 10);
        assert_eq!(db.table("reviews").unwrap().len(), 20);
        assert_eq!(db.fs().file_count(), 3);
        // Version: schema + products + reviews + files = 4 committed writes.
        assert_eq!(db.version(), 4);
    }

    #[test]
    fn shards_partition_the_dataset_exactly() {
        let spec = DatasetSpec::default();
        let map = ShardMap::new(4, &spec);
        let full = spec.build();
        let shards = spec.build_shards(&map);

        // Single-shard build is byte-identical to the unsharded one,
        // and the single-slice convenience matches the one-pass build.
        assert_eq!(
            spec.build_shard(&ShardMap::new(1, &spec), 0).state_digest(),
            full.state_digest()
        );
        assert_eq!(
            spec.build_shard(&map, 2).state_digest(),
            shards[2].state_digest()
        );

        // Rows, reviews, and files partition without loss or overlap.
        for table in ["products", "reviews"] {
            let total: usize = shards.iter().map(|d| d.table(table).unwrap().len()).sum();
            assert_eq!(total, full.table(table).unwrap().len(), "{table}");
        }
        let files: usize = shards.iter().map(|d| d.fs().file_count()).sum();
        assert_eq!(files, full.fs().file_count());

        // Every shard starts at the same deterministic version, and each
        // product row lives exactly where the map says.
        for (s, db) in shards.iter().enumerate() {
            assert_eq!(db.version(), full.version());
            for (key, _) in db.table("products").unwrap().iter() {
                assert_eq!(map.shard_of_row(key), s);
            }
        }
    }

    #[test]
    fn shared_block_dedups_across_files() {
        let spec = DatasetSpec {
            n_files: 20,
            lines_per_file: 10,
            shared_block_lines: 300, // ~10 KiB shared prefix per file
            ..DatasetSpec::default()
        };
        let db = spec.build();
        let stats = db.fs().chunk_stats();
        assert!(
            stats.chunks_deduped > 0,
            "identical leading blocks must dedup: {stats:?}"
        );
        assert!(stats.physical_bytes < stats.logical_bytes);
        // Without the block, every file is unique content.
        let plain = DatasetSpec {
            shared_block_lines: 0,
            ..spec
        }
        .build();
        let plain_stats = plain.fs().chunk_stats();
        assert!(plain_stats.dedup_ratio() < stats.dedup_ratio());
    }

    #[test]
    fn products_have_indexed_category() {
        let db = DatasetSpec::default().build();
        assert!(db.table("products").unwrap().has_index("category"));
    }
}
