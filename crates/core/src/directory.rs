//! The public directory of master certificates — shard-routing edition.
//!
//! Section 2: certificates "are stored in a public directory, indexed by
//! content public key.  Thus, by knowing the content public key and the
//! address of the directory, any client can securely get the addresses and
//! public keys of all the master servers replicating that content."
//!
//! With the content space sharded across master subgroups, the directory
//! becomes the routing table: a lookup names a *shard* and returns that
//! shard's master certificates, nodes, and currently elected auditor.
//! The directory itself stays untrusted *for integrity* — clients verify
//! every certificate (including its shard-scope claim) against the
//! content key — but must be available.  Masters update their own
//! shard's auditor entry on view changes; entries of other shards are
//! never touched, so one shard's failover cannot corrupt another's
//! routing.

use crate::messages::Msg;
use sdr_crypto::Certificate;
use sdr_sim::{Ctx, NodeId, Process, SimDuration};

/// One shard's directory entry: the subgroup's certificates, nodes, and
/// elected auditor.
#[derive(Clone, Debug)]
pub struct ShardEntry {
    /// Master certificates (owner-signed, shard-scoped).
    pub certs: Vec<Certificate>,
    /// Node ids corresponding to `certs` (same order).
    pub nodes: Vec<NodeId>,
    /// The shard's currently elected auditor.
    pub auditor: NodeId,
}

/// The directory process.
pub struct DirectoryProcess {
    shards: Vec<ShardEntry>,
}

impl DirectoryProcess {
    /// Creates a directory serving the given per-shard entries.
    pub fn new(shards: Vec<ShardEntry>) -> Self {
        assert!(!shards.is_empty(), "directory needs at least one shard");
        for (i, e) in shards.iter().enumerate() {
            assert_eq!(e.certs.len(), e.nodes.len(), "shard {i} certs/nodes mismatch");
        }
        DirectoryProcess { shards }
    }

    /// Convenience for single-shard deployments and tests.
    pub fn single(certs: Vec<Certificate>, nodes: Vec<NodeId>, auditor: NodeId) -> Self {
        DirectoryProcess::new(vec![ShardEntry {
            certs,
            nodes,
            auditor,
        }])
    }

    /// Number of shards served.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The currently recorded auditor of `shard` (test inspection).
    pub fn auditor(&self, shard: usize) -> NodeId {
        self.shards[shard].auditor
    }

    /// The master nodes of `shard` (test inspection).
    pub fn shard_nodes(&self, shard: usize) -> &[NodeId] {
        &self.shards[shard].nodes
    }
}

impl Process<Msg> for DirectoryProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::DirLookup { shard } => {
                // Each lookup is charged and counted against the shard it
                // routes to, so per-shard directory load is observable.
                ctx.charge(SimDuration::from_micros(20));
                ctx.metrics().inc("directory.lookups");
                ctx.metrics().inc(&format!("directory.lookups.shard{shard}"));
                let Some(entry) = self.shards.get(shard as usize) else {
                    ctx.metrics().inc("directory.unknown_shard");
                    return;
                };
                ctx.send(
                    from,
                    Msg::DirResponse {
                        shard,
                        certs: entry.certs.clone(),
                        nodes: entry.nodes.clone(),
                        auditor: entry.auditor,
                    },
                );
            }
            Msg::AuditorChanged { shard, auditor } => {
                // Scoped write: only the named shard's entry moves.
                let Some(entry) = self.shards.get_mut(shard as usize) else {
                    ctx.metrics().inc("directory.unknown_shard");
                    return;
                };
                entry.auditor = auditor;
                ctx.metrics().inc("directory.auditor_changes");
                ctx.metrics()
                    .inc(&format!("directory.auditor_changes.shard{shard}"));
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        "directory".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Entries with no master roster: enough for routing/metric tests
    // (`certs`/`nodes` stay paired-empty to satisfy the constructor).
    fn entry(auditor: u32) -> ShardEntry {
        ShardEntry {
            certs: Vec::new(),
            nodes: Vec::new(),
            auditor: NodeId(auditor),
        }
    }

    #[test]
    fn auditor_change_for_one_shard_never_clobbers_another() {
        // Two shards with distinct subgroups and auditors; drive the
        // process through a real world so metrics/messages flow.
        use sdr_sim::{CostModel, LinkModel, NetworkConfig, SimDuration as D, World};

        let mut world: World<Msg> = World::new(
            7,
            NetworkConfig::new(LinkModel::wan(D::from_millis(1))),
            CostModel::standard(),
        );
        let dir = world.spawn(
            "directory",
            Box::new(DirectoryProcess::new(vec![
                entry(2),
                entry(5),
            ])),
        );
        // A second (dummy) directory stands in as the sending master
        // node; it ignores every reply.
        let sender = world.spawn("sender", Box::new(DirectoryProcess::new(vec![entry(0)])));
        // Shard 1's auditor moves; shard 0's must not.
        world.inject(
            sender,
            dir,
            Msg::AuditorChanged {
                shard: 1,
                auditor: NodeId(4),
            },
        );
        world.run_to_quiescence();
        world.with_process::<DirectoryProcess, ()>(dir, |d| {
            assert_eq!(d.auditor(1), NodeId(4), "shard 1 auditor must move");
            assert_eq!(d.auditor(0), NodeId(2), "shard 0 auditor must not move");
        });
        // An out-of-range shard is ignored, not a panic or a clobber.
        world.inject(
            sender,
            dir,
            Msg::AuditorChanged {
                shard: 9,
                auditor: NodeId(0),
            },
        );
        world.run_to_quiescence();
        world.with_process::<DirectoryProcess, ()>(dir, |d| {
            assert_eq!(d.auditor(0), NodeId(2));
            assert_eq!(d.auditor(1), NodeId(4));
        });
        assert_eq!(world.metrics().counter("directory.unknown_shard"), 1);
    }

    #[test]
    fn lookups_are_counted_per_shard() {
        use sdr_sim::{CostModel, LinkModel, NetworkConfig, SimDuration as D, World};

        let mut world: World<Msg> = World::new(
            7,
            NetworkConfig::new(LinkModel::wan(D::from_millis(1))),
            CostModel::standard(),
        );
        let dir = world.spawn(
            "directory",
            Box::new(DirectoryProcess::new(vec![
                entry(1),
                entry(3),
            ])),
        );
        let client = world.spawn("client", Box::new(DirectoryProcess::new(vec![entry(0)])));
        world.inject(client, dir, Msg::DirLookup { shard: 0 });
        world.inject(client, dir, Msg::DirLookup { shard: 1 });
        world.inject(client, dir, Msg::DirLookup { shard: 1 });
        world.run_to_quiescence();
        let m = world.metrics();
        assert_eq!(m.counter("directory.lookups"), 3);
        assert_eq!(m.counter("directory.lookups.shard0"), 1);
        assert_eq!(m.counter("directory.lookups.shard1"), 2);
    }
}
