//! The public directory of master certificates.
//!
//! Section 2: certificates "are stored in a public directory, indexed by
//! content public key.  Thus, by knowing the content public key and the
//! address of the directory, any client can securely get the addresses and
//! public keys of all the master servers replicating that content."
//!
//! The directory itself is untrusted *for integrity* — clients verify every
//! certificate against the content key — but must be available.  It also
//! tracks which master is currently the elected auditor so clients know
//! where to forward pledges (masters update it on view changes).

use crate::messages::Msg;
use sdr_crypto::Certificate;
use sdr_sim::{Ctx, NodeId, Process, SimDuration};

/// The directory process.
pub struct DirectoryProcess {
    certs: Vec<Certificate>,
    nodes: Vec<NodeId>,
    auditor: NodeId,
}

impl DirectoryProcess {
    /// Creates a directory serving the given master certificates.
    pub fn new(certs: Vec<Certificate>, nodes: Vec<NodeId>, auditor: NodeId) -> Self {
        assert_eq!(certs.len(), nodes.len());
        DirectoryProcess {
            certs,
            nodes,
            auditor,
        }
    }

    /// The currently recorded auditor.
    pub fn auditor(&self) -> NodeId {
        self.auditor
    }
}

impl Process<Msg> for DirectoryProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::DirLookup => {
                ctx.charge(SimDuration::from_micros(20));
                ctx.metrics().inc("directory.lookups");
                ctx.send(
                    from,
                    Msg::DirResponse {
                        certs: self.certs.clone(),
                        nodes: self.nodes.clone(),
                        auditor: self.auditor,
                    },
                );
            }
            Msg::AuditorChanged { auditor } => {
                self.auditor = auditor;
                ctx.metrics().inc("directory.auditor_changes");
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        "directory".to_string()
    }
}
