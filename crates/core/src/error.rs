//! Error type for protocol-level operations.

use std::fmt;

/// Errors surfaced by the replication protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A pledge failed verification (reason).
    BadPledge(&'static str),
    /// A version stamp failed verification (reason).
    BadStamp(&'static str),
    /// Evidence failed verification (reason).
    BadEvidence(&'static str),
    /// A write was rejected by access control.
    AccessDenied,
    /// Store-level failure.
    Store(sdr_store::StoreError),
    /// Crypto-level failure.
    Crypto(sdr_crypto::CryptoError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadPledge(why) => write!(f, "bad pledge: {why}"),
            CoreError::BadStamp(why) => write!(f, "bad stamp: {why}"),
            CoreError::BadEvidence(why) => write!(f, "bad evidence: {why}"),
            CoreError::AccessDenied => write!(f, "write denied by access control"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sdr_store::StoreError> for CoreError {
    fn from(e: sdr_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<sdr_crypto::CryptoError> for CoreError {
    fn from(e: sdr_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = sdr_store::StoreError::NoSuchKey(7).into();
        assert!(e.to_string().contains("7"));
        let e: CoreError = sdr_crypto::CryptoError::InvalidSignature.into();
        assert!(e.to_string().contains("signature"));
        assert!(CoreError::AccessDenied.to_string().contains("denied"));
    }
}
