//! Irrefutable evidence of slave misbehaviour.
//!
//! Section 3.3: "Should the slave act maliciously and return an incorrect
//! answer, the 'pledge' packet becomes an irrefutable proof of its
//! dishonesty."  An [`Evidence`] value is self-contained: any party holding
//! the slave's public key and a correct replica of the named content
//! version can re-derive the verdict offline — which is exactly what a
//! court (or the content owner) would do with the paper's "incriminating
//! pledge packet".

use crate::error::CoreError;
use crate::pledge::{Pledge, ResultHash};
use sdr_crypto::PublicKey;
use sdr_sim::SimTime;
use sdr_store::{execute, Database};
use serde::{Deserialize, Serialize};

/// How the misbehaviour was discovered (Section 3.5's two cases).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discovery {
    /// A client double-check caught it immediately.
    Immediate,
    /// The background audit caught it after the answer was accepted.
    Delayed,
}

/// Proof that a slave signed a wrong answer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// The incriminating pledge (signed by the slave).
    pub pledge: Pledge,
    /// Hash of the *correct* result at the pledge's version, as computed
    /// by a trusted party.
    pub correct_hash: ResultHash,
    /// How it was discovered.
    pub discovery: Discovery,
    /// When the verdict was reached.
    pub found_at: SimTime,
}

impl Evidence {
    /// Verifies the evidence end-to-end against the slave's key and a
    /// trusted replica holding the pledge's content version.
    ///
    /// Checks, in order:
    /// 1. the pledge signature is genuinely the slave's (no framing);
    /// 2. `reference` is at the version the pledge names;
    /// 3. re-executing the pledged query on `reference` produces a hash
    ///    that (a) matches `correct_hash` and (b) differs from the pledged
    ///    hash.
    pub fn verify(
        &self,
        slave_key: &PublicKey,
        reference: &Database,
    ) -> Result<(), CoreError> {
        self.pledge
            .verify_signature(slave_key)
            .map_err(|_| CoreError::BadEvidence("pledge signature invalid"))?;
        if reference.version() != self.pledge.stamp.version {
            return Err(CoreError::BadEvidence("reference at wrong version"));
        }
        let (result, _) = execute(reference, &self.pledge.query)?;
        let recomputed = ResultHash::of(&result, self.pledge.result_hash.algo());
        if recomputed != self.correct_hash {
            return Err(CoreError::BadEvidence("correct_hash does not match re-execution"));
        }
        if recomputed == self.pledge.result_hash {
            return Err(CoreError::BadEvidence("pledged result was actually correct"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashAlgo;
    use crate::messages::VersionStamp;
    use sdr_crypto::{HmacSigner, Signer};
    use sdr_sim::NodeId;
    use sdr_store::{Document, Query, QueryResult, UpdateOp, Value};

    fn reference() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 1,
                doc: Document::new().with("v", 10i64),
            },
        ])
        .unwrap();
        db
    }

    fn make_evidence(lie: bool) -> (Evidence, HmacSigner, Database) {
        let db = reference();
        let mut master = HmacSigner::from_seed_label(1, b"master");
        let mut slave = HmacSigner::from_seed_label(2, b"slave");
        let query = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let (correct, _) = execute(&db, &query).unwrap();
        let claimed = if lie {
            QueryResult::Rows(vec![(1, Document::new().with("v", 666i64))])
        } else {
            correct.clone()
        };
        let stamp =
            VersionStamp::build(db.version(), SimTime::from_millis(10), NodeId(0), &mut master)
                .unwrap();
        let pledge = Pledge::build(
            query,
            ResultHash::of(&claimed, HashAlgo::Sha1),
            stamp,
            NodeId(5),
            &mut slave,
        )
        .unwrap();
        let ev = Evidence {
            pledge,
            correct_hash: ResultHash::of(&correct, HashAlgo::Sha1),
            discovery: Discovery::Immediate,
            found_at: SimTime::from_millis(20),
        };
        (ev, slave, db)
    }

    #[test]
    fn genuine_evidence_verifies() {
        let (ev, slave, db) = make_evidence(true);
        ev.verify(&slave.public_key(), &db).unwrap();
    }

    #[test]
    fn honest_slave_cannot_be_convicted() {
        // Evidence built from a correct answer must not verify.
        let (ev, slave, db) = make_evidence(false);
        assert_eq!(
            ev.verify(&slave.public_key(), &db),
            Err(CoreError::BadEvidence("pledged result was actually correct"))
        );
    }

    #[test]
    fn forged_pledge_rejected() {
        let (mut ev, slave, db) = make_evidence(true);
        // Accuser swaps in a different query — signature breaks.
        ev.pledge.query = Query::GetRow {
            table: "t".into(),
            key: 2,
        };
        assert_eq!(
            ev.verify(&slave.public_key(), &db),
            Err(CoreError::BadEvidence("pledge signature invalid"))
        );
    }

    #[test]
    fn wrong_reference_version_rejected() {
        let (ev, slave, mut db) = make_evidence(true);
        db.apply_write(&[UpdateOp::Upsert {
            table: "t".into(),
            key: 2,
            doc: Document::new().with("v", 1i64),
        }])
        .unwrap();
        assert_eq!(
            ev.verify(&slave.public_key(), &db),
            Err(CoreError::BadEvidence("reference at wrong version"))
        );
    }

    #[test]
    fn fabricated_correct_hash_rejected() {
        let (mut ev, slave, db) = make_evidence(true);
        ev.correct_hash = ResultHash::of(
            &QueryResult::Scalar(Value::Int(0)),
            HashAlgo::Sha1,
        );
        assert_eq!(
            ev.verify(&slave.public_key(), &db),
            Err(CoreError::BadEvidence("correct_hash does not match re-execution"))
        );
    }
}
