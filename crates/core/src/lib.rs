//! The paper's system: secure data replication over untrusted hosts.
//!
//! Implements the full architecture of Popescu, Crispo & Tanenbaum (HotOS
//! 2003) on top of the workspace substrates:
//!
//! * **Masters** ([`master`]) — trusted servers holding the content.
//!   Writes are admitted through access control, spaced at least
//!   `max_latency` apart, totally ordered via `sdr-broadcast`, applied by
//!   every master, then lazily pushed to slaves together with signed,
//!   time-stamped `content_version` stamps.  Masters also serve
//!   double-check requests, detect greedy clients, take corrective action
//!   against slaves caught misbehaving, and redistribute a crashed
//!   master's slave set.
//! * **Slaves** ([`slave`]) — marginally-trusted replicas executing
//!   arbitrary queries.  Every response carries a signed **pledge**
//!   ([`pledge`]): the request, the SHA-1 of the result, and the latest
//!   master stamp.  Slaves self-gate when their freshest keep-alive is
//!   older than `max_latency`.  Byzantine behaviour models are pluggable.
//! * **Clients** ([`client`]) — verify hash, signature, and freshness on
//!   every read; double-check a random fraction `p` against their master;
//!   forward all other pledges to the auditor; and re-run setup when their
//!   master crashes.
//! * **The auditor** ([`auditor`]) — the master elected by the group's
//!   broadcast protocol (highest rank in the current view).  It lags
//!   behind on writes, re-executes every pledged read against the exact
//!   version the pledge names (with a result cache), and produces
//!   irrefutable [`evidence`] against lying slaves.
//!
//! The content space can be **sharded** across master subgroups
//! ([`shard`]): each shard owns a contiguous slice of the key/path
//! space with its own write queue, sequencer, digest stamps, slave set,
//! and elected auditor, so commit throughput scales with shard count
//! while every shard independently carries the paper's trust argument.
//!
//! [`system`] wires everything into an `sdr-sim` world; [`workload`]
//! generates read/write mixes (including diurnal patterns and greedy
//! clients); [`stats`] extracts the numbers the experiment harness prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod auditor;
pub mod client;
pub mod config;
pub mod cost;
pub mod dataset;
pub mod directory;
pub mod error;
pub mod evidence;
pub mod master;
pub mod messages;
pub mod pledge;
pub mod scenario;
pub mod shard;
pub mod slave;
pub mod stats;
pub mod system;
pub mod verify;
pub mod workload;

pub use config::{GreedyConfig, HashAlgo, ReadLevel, SystemConfig};
pub use error::CoreError;
pub use evidence::Evidence;
pub use messages::{Msg, StateDigestStamp, VersionStamp};
pub use pledge::Pledge;
pub use verify::{ReadStrategy, RejectReason};
pub use scenario::{RunReport, Runner, ScenarioSpec};
pub use shard::ShardMap;
pub use slave::SlaveBehavior;
pub use stats::SystemStats;
pub use system::{System, SystemBuilder};
pub use workload::{DiurnalPattern, QueryMix, Workload};
