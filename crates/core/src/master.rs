//! Master servers: the trusted core.
//!
//! Each master embeds a `sdr-broadcast` engine for totally ordered writes
//! and membership, holds an authoritative replica plus per-version
//! snapshots, pushes lazy updates and signed keep-alives to its slave set,
//! serves double-checks and trusted reads, detects greedy clients, takes
//! corrective action against slaves (Section 3.5), and — when elected —
//! runs the auditor (see [`crate::auditor`]).

use crate::acl::WritePolicy;
use crate::auditor::AuditorState;
use crate::config::SystemConfig;
use crate::evidence::{Discovery, Evidence};
use crate::messages::{
    CheckVerdict, MasterEvent, Msg, StateDigestStamp, VersionStamp, WriteOutcome,
};
use crate::pledge::{Pledge, ResultHash};
use sdr_broadcast::{Action, MemberId, TobConfig, TotalOrder, View};
use sdr_crypto::{CertRole, Certificate, CertificateBody, Hash256, PublicKey, Signer};
use sdr_sim::{Ctx, NodeId, Process, SimTime};
use sdr_store::{execute, Database, SnapshotStore, UpdateOp};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Admission bound on queued *rounds* of writes: keeps worst-case commit
/// latency at `MAX_PENDING_ROUNDS x max_latency`, safely inside client
/// write timeouts, and sheds load beyond the spacing rule's capacity.
/// The queue bound in writes is `MAX_PENDING_ROUNDS x max_write_batch`,
/// since one round drains up to a full batch.
const MAX_PENDING_ROUNDS: usize = 3;

/// Timer tags.
const T_TOB_TICK: u64 = 1;
const T_KEEPALIVE: u64 = 2;
const T_AUDIT: u64 = 3;
const T_WRITE_PUMP: u64 = 4;
const T_GOSSIP: u64 = 5;

/// A master server process.
pub struct MasterProcess {
    cfg: SystemConfig,
    /// The shard of the content space this master's subgroup owns.  All
    /// state below (replica, write queue, snapshots, digest stamps,
    /// slave set, auditor duties) is scoped to it.
    shard: u32,
    rank: MemberId,
    member_nodes: Vec<NodeId>,
    master_keys: HashMap<NodeId, PublicKey>,
    signer: Box<dyn Signer>,
    content_id: Hash256,

    db: Database,
    snapshots: SnapshotStore,
    write_log: BTreeMap<u64, Vec<UpdateOp>>,
    /// `version → state digest`, bounded alongside `write_log`, so sync
    /// replays can re-stamp historical versions without re-materialising
    /// snapshots.
    digest_log: BTreeMap<u64, Hash256>,
    policy: WritePolicy,

    tob: TotalOrder<MasterEvent>,
    prev_view: View,

    my_slaves: Vec<NodeId>,
    slave_keys: HashMap<NodeId, PublicKey>,
    slave_owner: HashMap<NodeId, MemberId>,
    slave_clients: HashMap<NodeId, HashSet<NodeId>>,
    slave_certs: HashMap<NodeId, Certificate>,
    excluded: HashSet<NodeId>,
    my_clients: HashSet<NodeId>,
    next_cert_serial: u64,

    pending_writes: VecDeque<(NodeId, u64, Vec<UpdateOp>)>,
    earliest_next_write: SimTime,
    inflight_write: bool,

    dc_times: HashMap<NodeId, VecDeque<SimTime>>,

    auditor_state: AuditorState,
    evidence_log: Vec<Evidence>,
    directory: NodeId,
}

impl MasterProcess {
    /// Creates a master of subgroup `shard`.
    ///
    /// `member_nodes[i]` is the world node of the *shard's* master rank
    /// `i`; `my_slaves` is this master's initial slave set (empty for
    /// the shard's initial auditor); `slave_keys`/`slave_owner` cover
    /// the shard's whole slave population.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        shard: u32,
        rank: MemberId,
        member_nodes: Vec<NodeId>,
        master_keys: HashMap<NodeId, PublicKey>,
        signer: Box<dyn Signer>,
        content_id: Hash256,
        db: Database,
        policy: WritePolicy,
        my_slaves: Vec<NodeId>,
        slave_keys: HashMap<NodeId, PublicKey>,
        slave_owner: HashMap<NodeId, MemberId>,
        directory: NodeId,
    ) -> Self {
        let n = member_nodes.len();
        let auditor_state = AuditorState::new(&cfg, db.clone(), SimTime::ZERO);
        let mut snapshots = SnapshotStore::new(cfg.snapshot_capacity);
        snapshots.record(&db);
        let mut digest_log = BTreeMap::new();
        digest_log.insert(db.version(), db.state_digest());
        MasterProcess {
            tob: TotalOrder::new(rank, n, TobConfig::default()),
            prev_view: View::initial(n),
            auditor_state,
            cfg,
            shard,
            rank,
            member_nodes,
            master_keys,
            signer,
            content_id,
            db,
            snapshots,
            write_log: BTreeMap::new(),
            digest_log,
            policy,
            my_slaves,
            slave_keys,
            slave_owner,
            slave_clients: HashMap::new(),
            slave_certs: HashMap::new(),
            excluded: HashSet::new(),
            my_clients: HashSet::new(),
            next_cert_serial: 1,
            pending_writes: VecDeque::new(),
            earliest_next_write: SimTime::ZERO,
            inflight_write: false,
            dc_times: HashMap::new(),
            evidence_log: Vec::new(),
            directory,
        }
    }

    /// The shard this master's subgroup owns.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// World node of the shard's currently elected auditor.
    pub fn auditor_node(&self) -> NodeId {
        self.member_nodes[self.tob.view().auditor().index()]
    }

    /// Whether this master is the elected auditor.
    pub fn is_auditor(&self) -> bool {
        self.tob.view().auditor() == self.rank
    }

    /// Current content version (test inspection).
    pub fn version(&self) -> u64 {
        self.db.version()
    }

    /// State digest (test inspection).
    pub fn state_digest(&self) -> Hash256 {
        self.db.state_digest()
    }

    /// Evidence collected so far (forensics).
    pub fn evidence_log(&self) -> &[Evidence] {
        &self.evidence_log
    }

    /// This master's current slave set (test inspection).
    pub fn slaves(&self) -> &[NodeId] {
        &self.my_slaves
    }

    /// The auditor state (test inspection).
    pub fn auditor_state(&self) -> &AuditorState {
        &self.auditor_state
    }

    /// Versions retained by the snapshot ring (test inspection).
    pub fn snapshot_versions(&self) -> Vec<u64> {
        self.snapshots.versions()
    }

    /// Versions retained in the bounded write log (test inspection).
    pub fn write_log_versions(&self) -> Vec<u64> {
        self.write_log.keys().copied().collect()
    }

    /// Versions retained in the bounded digest log (test inspection;
    /// pruned in lockstep with the write log).
    pub fn digest_log_versions(&self) -> Vec<u64> {
        self.digest_log.keys().copied().collect()
    }

    /// Digest of the retained snapshot at `version` (test inspection).
    pub fn snapshot_digest(&self, version: u64) -> Option<Hash256> {
        self.snapshots.get(version).map(Database::state_digest)
    }

    /// Shared-vs-owned node counts over the snapshot ring (memory
    /// telemetry: retention cost vs churn).
    pub fn snapshot_node_stats(&self) -> sdr_store::NodeStats {
        self.snapshots.node_stats()
    }

    /// Shared-vs-owned node counts of the live replica (memory
    /// telemetry).
    pub fn db_node_stats(&self) -> sdr_store::NodeStats {
        self.db.node_stats()
    }

    /// Chunk-store telemetry of the live replica: dedup hits, logical
    /// vs physical bytes.
    pub fn chunk_stats(&self) -> sdr_store::ChunkStats {
        self.db.fs().chunk_stats()
    }

    /// Write-access policy (test harness mutation).
    pub fn policy_mut(&mut self) -> &mut WritePolicy {
        &mut self.policy
    }

    fn node_of(&self, m: MemberId) -> NodeId {
        self.member_nodes[m.index()]
    }

    /// The reference state for `version`: the live replica when current,
    /// otherwise the snapshot ring's copy (None once evicted).  Both the
    /// double-check path and accusation handling re-execute against this.
    fn reference_state(&self, version: u64) -> Option<&Database> {
        if version == self.db.version() {
            Some(&self.db)
        } else {
            self.snapshots.get(version)
        }
    }

    fn make_stamp(&mut self, ctx: &mut Ctx<'_, Msg>) -> Option<VersionStamp> {
        ctx.charge(ctx.costs().sign);
        VersionStamp::build(self.db.version(), ctx.now(), ctx.id(), self.signer.as_mut()).ok()
    }

    /// Signs a digest stamp for `version` (defaulting to the live state);
    /// `None` when the version's digest is no longer retained.
    fn make_digest_stamp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        version: u64,
    ) -> Option<StateDigestStamp> {
        let digest = if version == self.db.version() {
            // O(1) amortized on the live copy-on-write state.
            self.db.state_digest()
        } else {
            *self.digest_log.get(&version)?
        };
        ctx.charge(ctx.costs().sign);
        StateDigestStamp::build(version, digest, ctx.now(), ctx.id(), self.signer.as_mut()).ok()
    }

    /// The stamp pair attached to keep-alives and state updates: the
    /// version stamp (pledge freshness) plus the digest stamp (proof
    /// anchor), both over the live version.
    fn make_stamps(&mut self, ctx: &mut Ctx<'_, Msg>) -> Option<(VersionStamp, StateDigestStamp)> {
        let stamp = self.make_stamp(ctx)?;
        let digest_stamp = self.make_digest_stamp(ctx, self.db.version())?;
        Some((stamp, digest_stamp))
    }

    fn issue_slave_cert(&mut self, ctx: &mut Ctx<'_, Msg>, slave: NodeId) -> Option<Certificate> {
        if let Some(c) = self.slave_certs.get(&slave) {
            return Some(c.clone());
        }
        let key = self.slave_keys.get(&slave)?;
        let body = CertificateBody {
            serial: self.next_cert_serial,
            role: CertRole::Slave,
            subject_addr: format!("slave-{}", slave.0),
            subject_key: *key,
            issued_at_us: ctx.now().as_micros(),
            content_id: self.content_id,
            shard: self.shard,
        };
        self.next_cert_serial += 1;
        ctx.charge(ctx.costs().sign);
        let cert = Certificate::issue(body, self.signer.as_mut()).ok()?;
        self.slave_certs.insert(slave, cert.clone());
        Some(cert)
    }

    /// Least-loaded live slaves of mine, excluding `avoid`.
    fn pick_slaves(&self, k: usize, avoid: Option<NodeId>) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .my_slaves
            .iter()
            .copied()
            .filter(|s| !self.excluded.contains(s) && Some(*s) != avoid)
            .collect();
        candidates.sort_by_key(|s| {
            (
                self.slave_clients.get(s).map_or(0, HashSet::len),
                s.0,
            )
        });
        candidates.truncate(k);
        candidates
    }

    fn drain_tob(&mut self, ctx: &mut Ctx<'_, Msg>, actions: Vec<Action<MasterEvent>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let node = self.node_of(to);
                    ctx.send(node, Msg::Tob(msg));
                }
                Action::Deliver { payload, .. } => self.deliver_event(ctx, payload),
                Action::ViewInstalled(view) => self.on_view_installed(ctx, view),
            }
        }
    }

    fn deliver_event(&mut self, ctx: &mut Ctx<'_, Msg>, event: MasterEvent) {
        match event {
            MasterEvent::Write {
                origin_master,
                client,
                req_id,
                ops,
            } => self.commit_write(ctx, origin_master, client, req_id, ops),
            MasterEvent::WriteBatch {
                origin_master,
                writes,
            } => self.commit_batch(ctx, origin_master, writes),
            MasterEvent::SlaveList { master, slaves } => {
                for s in slaves {
                    self.slave_owner.insert(s, master);
                }
            }
            MasterEvent::Exclude { slave } => self.execute_exclusion(ctx, slave),
        }
    }

    fn commit_write(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        origin_master: MemberId,
        client: NodeId,
        req_id: u64,
        ops: Vec<UpdateOp>,
    ) {
        ctx.charge(ctx.costs().write_apply * ops.len() as u64);
        let outcome = match self.db.apply_write(&ops) {
            Ok(version) => {
                let now = ctx.now();
                ctx.metrics().inc("master.writes_applied");
                if origin_master == self.rank {
                    // Exactly one member per commit (the admitting
                    // sequencer) records the per-shard commit stream:
                    // the series the cross-shard ordering tests and the
                    // throughput sweeps read.
                    ctx.metrics().inc(&format!("write.committed.shard{}", self.shard));
                    ctx.metrics().series_push(
                        &format!("write.commit_us.shard{}", self.shard),
                        now,
                        version as f64,
                    );
                    // A single-write round: the degenerate batch.
                    ctx.metrics().observe("write.batch_size", 1);
                }
                self.snapshots.record(&self.db);
                self.write_log.insert(version, ops.clone());
                self.digest_log.insert(version, self.db.state_digest());
                self.prune_logs();
                self.auditor_state.on_write_committed(version, ops.clone(), now);
                self.earliest_next_write = now + self.cfg.max_latency;

                // Lazy slave update (Section 3.1): push only after commit,
                // stamped with both the version (pledge freshness) and the
                // state digest (proof-read anchor).
                if !self.my_slaves.is_empty() {
                    if let Some((stamp, digest_stamp)) = self.make_stamps(ctx) {
                        // One shared payload for the whole subgroup: the
                        // queue holds pointers, not per-slave deep copies.
                        ctx.multicast(
                            self.my_slaves.iter().copied(),
                            Msg::StateUpdate {
                                version,
                                ops: ops.clone(),
                                stamp,
                                digest_stamp,
                            },
                        );
                    }
                }
                WriteOutcome::Committed { version }
            }
            Err(e) => WriteOutcome::Failed(e.to_string()),
        };
        if origin_master == self.rank {
            self.inflight_write = false;
            ctx.send(client, Msg::WriteResponse { req_id, outcome });
            self.pump_writes(ctx);
        }
    }

    /// Commits one ordered round of writes as a multi-version batch:
    /// every member applies the runs in order (each write still bumps
    /// the version by one, keeping per-version snapshots, write-log and
    /// digest-log entries intact for sync replay and rollback), but the
    /// round signs only **one** stamp pair — at the batch's final
    /// version — and pushes all runs to the slaves in one message.  A
    /// write that fails mid-batch rolls back to its own pre-write state
    /// (the store's write atomicity) and the rest of the batch continues.
    fn commit_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        origin_master: MemberId,
        writes: Vec<(NodeId, u64, Vec<UpdateOp>)>,
    ) {
        let now = ctx.now();
        let mut outcomes = Vec::with_capacity(writes.len());
        let mut applied: Vec<(u64, Vec<UpdateOp>)> = Vec::new();
        for (client, req_id, ops) in writes {
            ctx.charge(ctx.costs().write_apply * ops.len() as u64);
            let outcome = match self.db.apply_write(&ops) {
                Ok(version) => {
                    ctx.metrics().inc("master.writes_applied");
                    if origin_master == self.rank {
                        ctx.metrics()
                            .inc(&format!("write.committed.shard{}", self.shard));
                        ctx.metrics().series_push(
                            &format!("write.commit_us.shard{}", self.shard),
                            now,
                            version as f64,
                        );
                    }
                    self.snapshots.record(&self.db);
                    self.write_log.insert(version, ops.clone());
                    self.digest_log.insert(version, self.db.state_digest());
                    self.auditor_state.on_write_committed(version, ops.clone(), now);
                    applied.push((version, ops));
                    WriteOutcome::Committed { version }
                }
                Err(e) => WriteOutcome::Failed(e.to_string()),
            };
            outcomes.push((client, req_id, outcome));
        }
        self.prune_logs();
        self.earliest_next_write = now + self.cfg.max_latency;
        if !applied.is_empty() {
            if origin_master == self.rank {
                ctx.metrics().observe("write.batch_size", applied.len() as u64);
            }
            // One stamp pair anchors the whole batch: the amortisation
            // this round exists for.  Per-row proofs at the final
            // version all verify against this single digest stamp.
            if !self.my_slaves.is_empty() {
                if let Some((stamp, digest_stamp)) = self.make_stamps(ctx) {
                    ctx.multicast(
                        self.my_slaves.iter().copied(),
                        Msg::StateUpdateBatch {
                            updates: applied.clone(),
                            stamp,
                            digest_stamp,
                        },
                    );
                }
            }
        }
        if origin_master == self.rank {
            self.inflight_write = false;
            for (client, req_id, outcome) in outcomes {
                ctx.send(client, Msg::WriteResponse { req_id, outcome });
            }
            self.pump_writes(ctx);
        }
    }

    /// Bounds the op and digest logs like the snapshot ring, in strict
    /// lockstep: the digest log covers exactly the write log's window.
    /// The digest seeded at construction (for the initial version, which
    /// has no ops to replay) ages out as soon as the window starts —
    /// sync replays only re-stamp versions the write log retains.
    fn prune_logs(&mut self) {
        while self.write_log.len() > self.cfg.snapshot_capacity {
            let oldest = *self.write_log.keys().next().expect("non-empty");
            self.write_log.remove(&oldest);
            self.digest_log.remove(&oldest);
        }
        if let Some((&floor, _)) = self.write_log.first_key_value() {
            while self
                .digest_log
                .first_key_value()
                .is_some_and(|(&v, _)| v < floor)
            {
                let straggler = *self.digest_log.keys().next().expect("non-empty");
                self.digest_log.remove(&straggler);
            }
        }
    }

    /// Routes an admitted write: the sequencer owns the single global
    /// write queue (and therefore the spacing rule); everyone else
    /// forwards to it.
    fn admit_write(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        req_id: u64,
        ops: Vec<UpdateOp>,
    ) {
        if self.tob.view().sequencer() != self.rank {
            let seq_node = self.node_of(self.tob.view().sequencer());
            ctx.send(
                seq_node,
                Msg::WriteForward {
                    client,
                    req_id,
                    ops,
                },
            );
            return;
        }
        if self.pending_writes.len() >= MAX_PENDING_ROUNDS * self.cfg.max_write_batch {
            // Backpressure: beyond the spacing rule's capacity the queue
            // would only add unbounded commit latency, so shed load
            // explicitly instead (the client sees a prompt failure, not a
            // timeout it would mistake for a master crash).
            ctx.metrics().inc("write.overloaded");
            ctx.send(
                client,
                Msg::WriteResponse {
                    req_id,
                    outcome: WriteOutcome::Failed("overloaded".into()),
                },
            );
            return;
        }
        self.pending_writes.push_back((client, req_id, ops));
        self.pump_writes(ctx);
    }

    fn pump_writes(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.inflight_write || self.pending_writes.is_empty() {
            return;
        }
        if ctx.now() < self.earliest_next_write {
            return;
        }
        if self.cfg.max_write_batch <= 1 {
            let (client, req_id, ops) = self.pending_writes.pop_front().expect("non-empty");
            self.inflight_write = true;
            // Optimistic local reservation; the commit re-arms it exactly.
            self.earliest_next_write = ctx.now() + self.cfg.max_latency;
            let actions = self.tob.broadcast(MasterEvent::Write {
                origin_master: self.rank,
                client,
                req_id,
                ops,
            });
            self.drain_tob(ctx, actions);
            return;
        }
        // Batched round: drain everything at the head of the queue (up
        // to `max_write_batch`) into one ordered round.  The spacing
        // rule is unchanged — the queue still opens once per
        // `max_latency` — but the round carries a whole batch.
        let n = self.pending_writes.len().min(self.cfg.max_write_batch);
        let writes: Vec<_> = self.pending_writes.drain(..n).collect();
        self.inflight_write = true;
        self.earliest_next_write = ctx.now() + self.cfg.max_latency;
        let actions = self.tob.broadcast(MasterEvent::WriteBatch {
            origin_master: self.rank,
            writes,
        });
        self.drain_tob(ctx, actions);
    }

    fn on_view_installed(&mut self, ctx: &mut Ctx<'_, Msg>, view: View) {
        ctx.metrics().inc("master.view_changes");
        // A write queue stranded on a non-sequencer (after roles moved)
        // re-routes to the new sequencer.
        if view.sequencer() != self.rank && !self.pending_writes.is_empty() {
            let seq_node = self.member_nodes[view.sequencer().index()];
            for (client, req_id, ops) in self.pending_writes.drain(..) {
                ctx.send(
                    seq_node,
                    Msg::WriteForward {
                        client,
                        req_id,
                        ops,
                    },
                );
            }
        }
        let old = std::mem::replace(&mut self.prev_view, view.clone());
        let dead: Vec<MemberId> = old
            .members
            .iter()
            .copied()
            .filter(|m| !view.contains(*m))
            .collect();

        // Divide the slave sets of dead masters — and of the new auditor,
        // which must not keep slaves — deterministically so every survivor
        // computes the same assignment without extra messages.
        let auditor = view.auditor();
        let eligible: Vec<MemberId> = if view.len() > 1 {
            view.members
                .iter()
                .copied()
                .filter(|&m| m != auditor)
                .collect()
        } else {
            view.members.clone()
        };

        let mut orphans: Vec<NodeId> = self
            .slave_owner
            .iter()
            .filter(|(_, owner)| dead.contains(owner) || (view.len() > 1 && **owner == auditor))
            .map(|(s, _)| *s)
            .collect();
        orphans.sort_unstable();

        for (i, slave) in orphans.iter().enumerate() {
            let new_owner = eligible[i % eligible.len()];
            self.slave_owner.insert(*slave, new_owner);
            if new_owner == self.rank {
                if !self.my_slaves.contains(slave) && !self.excluded.contains(slave) {
                    self.my_slaves.push(*slave);
                    ctx.metrics().inc("master.slaves_adopted");
                    // Immediately give the adopted slave a fresh stamp so it
                    // keeps serving.
                    if let Some((stamp, digest_stamp)) = self.make_stamps(ctx) {
                        ctx.send(*slave, Msg::KeepAlive { stamp, digest_stamp });
                    }
                }
            } else {
                self.my_slaves.retain(|s| s != slave);
            }
        }

        // Auditor duties moved?  Updates are scoped to this shard: the
        // directory entry and client state of other shards never move.
        if old.auditor() != auditor {
            let auditor_node = self.node_of(auditor);
            // The lowest survivor informs the directory.
            if view.sequencer() == self.rank {
                ctx.send(
                    self.directory,
                    Msg::AuditorChanged {
                        shard: self.shard,
                        auditor: auditor_node,
                    },
                );
            }
            // Everyone tells their clients where pledges now go.
            for &c in &self.my_clients {
                ctx.send(
                    c,
                    Msg::AuditorChanged {
                        shard: self.shard,
                        auditor: auditor_node,
                    },
                );
            }
        }
        if self.is_auditor() {
            // The auditor shed its slaves above; its clients must re-run
            // setup with another master (Section 3: clients of a departed
            // master redo the setup phase — same flow here).
            for c in self.my_clients.drain().collect::<Vec<_>>() {
                ctx.send(
                    c,
                    Msg::Reassign {
                        excluded: NodeId(u32::MAX),
                        replacement: None,
                    },
                );
            }
            self.slave_clients.clear();
        }
    }

    fn execute_exclusion(&mut self, ctx: &mut Ctx<'_, Msg>, slave: NodeId) {
        if !self.excluded.insert(slave) {
            return; // Already handled.
        }
        let mine = self.my_slaves.contains(&slave);
        // Count each exclusion once system-wide: the owner does the
        // book-keeping (every master still marks the slave excluded).
        if mine {
            ctx.metrics().inc("exclusion.count");
            let now = ctx.now();
            ctx.metrics()
                .series_push("exclusion.at_us", now, f64::from(slave.0));
        }
        if !mine {
            return;
        }
        self.my_slaves.retain(|s| *s != slave);
        ctx.send(slave, Msg::ExcludeNotice);
        // Re-home every client of the excluded slave (Section 3.5: "the
        // master contacts all the clients connected to the (now provably
        // malicious) slave … and assigns each of them to a new slave").
        // Sort: HashSet iteration order is process-random, and both the
        // replacement picks and the message sequence must be reproducible
        // from the world seed.
        let mut clients: Vec<NodeId> = self
            .slave_clients
            .remove(&slave)
            .unwrap_or_default()
            .into_iter()
            .collect();
        clients.sort_unstable();
        for client in clients {
            let replacement = self
                .pick_slaves(1, Some(slave))
                .first()
                .copied()
                .and_then(|s| self.issue_slave_cert(ctx, s).map(|c| (s, c)));
            if let Some((s, _)) = &replacement {
                self.slave_clients.entry(*s).or_default().insert(client);
            }
            ctx.metrics().inc("reassign.count");
            ctx.send(
                client,
                Msg::Reassign {
                    excluded: slave,
                    replacement,
                },
            );
        }
    }

    /// Greedy-client tracking: record a double-check and decide whether to
    /// ignore it (Section 3.3).
    fn greedy_should_ignore(&mut self, ctx: &mut Ctx<'_, Msg>, client: NodeId) -> bool {
        let now = ctx.now();
        let window = self.cfg.greedy.window;
        let times = self.dc_times.entry(client).or_default();
        times.push_back(now);
        while let Some(&front) = times.front() {
            if now.since(front) > window {
                times.pop_front();
            } else {
                break;
            }
        }
        let my_count = self.dc_times.get(&client).map_or(0, VecDeque::len) as u64;

        // Median double-check count across this master's other clients.
        let mut counts: Vec<u64> = self
            .my_clients
            .iter()
            .filter(|c| **c != client)
            .map(|c| self.dc_times.get(c).map_or(0, VecDeque::len) as u64)
            .collect();
        counts.sort_unstable();
        let median = counts.get(counts.len() / 2).copied().unwrap_or(0);

        let suspected = my_count >= self.cfg.greedy.min_count
            && my_count as f64 > self.cfg.greedy.factor * (median.max(1)) as f64;
        if suspected {
            ctx.metrics().inc("greedy.suspected_checks");
            if ctx.coin() < self.cfg.greedy.ignore_fraction {
                return true;
            }
        }
        false
    }

    fn handle_double_check(&mut self, ctx: &mut Ctx<'_, Msg>, client: NodeId, req_id: u64, pledge: Pledge) {
        ctx.metrics().inc("dc.received");
        if self.greedy_should_ignore(ctx, client) {
            ctx.metrics().inc("dc.throttled");
            ctx.send(
                client,
                Msg::DoubleCheckResponse {
                    req_id,
                    verdict: CheckVerdict::Throttled,
                },
            );
            return;
        }
        let version = pledge.stamp.version;
        let Some(reference) = self.reference_state(version) else {
            ctx.send(
                client,
                Msg::DoubleCheckResponse {
                    req_id,
                    verdict: CheckVerdict::VersionUnavailable,
                },
            );
            return;
        };
        let Ok((correct, qcost)) = execute(reference, &pledge.query) else {
            ctx.send(
                client,
                Msg::DoubleCheckResponse {
                    req_id,
                    verdict: CheckVerdict::VersionUnavailable,
                },
            );
            return;
        };
        ctx.charge(crate::cost::query_charge(&qcost, correct.size(), ctx.costs()));
        ctx.charge(ctx.costs().hash_cost(correct.size()));

        let correct_hash = ResultHash::of(&correct, pledge.result_hash.algo());
        if correct_hash == pledge.result_hash {
            ctx.metrics().inc("dc.match");
            ctx.send(
                client,
                Msg::DoubleCheckResponse {
                    req_id,
                    verdict: CheckVerdict::Match,
                },
            );
            return;
        }

        // Mismatch: the pledge is the proof — if it verifies (no framing).
        ctx.metrics().inc("dc.mismatch");
        ctx.charge(ctx.costs().verify);
        let sig_ok = self
            .slave_keys
            .get(&pledge.slave)
            .is_some_and(|k| pledge.verify_signature(k).is_ok());
        if sig_ok {
            ctx.metrics().inc("discovery.immediate");
            let slave = pledge.slave;
            self.evidence_log.push(Evidence {
                pledge,
                correct_hash,
                discovery: Discovery::Immediate,
                found_at: ctx.now(),
            });
            let actions = self.tob.broadcast(MasterEvent::Exclude { slave });
            self.drain_tob(ctx, actions);
        } else {
            ctx.metrics().inc("dc.unverifiable_pledge");
        }
        ctx.send(
            client,
            Msg::DoubleCheckResponse {
                req_id,
                verdict: CheckVerdict::Mismatch { correct },
            },
        );
    }

    fn handle_setup(&mut self, ctx: &mut Ctx<'_, Msg>, client: NodeId) {
        self.my_clients.insert(client);
        let picks = self.pick_slaves(self.cfg.read_quorum, None);
        // One extra replica of the shard — any live one, not necessarily
        // ours; masters hold the whole shard's slave keys — handed out
        // as a *spare*: the client retries a rejected proof there before
        // falling back to pledge+audit (proof-path hardening).  Spares
        // are best-effort and unregistered: a stale spare heals through
        // the ordinary `ReadRefused`/re-setup path.
        let spare_pick = {
            let mut all: Vec<NodeId> = self
                .slave_keys
                .keys()
                .copied()
                .filter(|s| !self.excluded.contains(s) && !picks.contains(s))
                .collect();
            all.sort_unstable();
            all.first().copied()
        };
        let mut slaves = Vec::with_capacity(picks.len());
        for s in picks {
            if let Some(cert) = self.issue_slave_cert(ctx, s) {
                self.slave_clients.entry(s).or_default().insert(client);
                slaves.push((s, cert));
            }
        }
        let spares = spare_pick
            .and_then(|s| self.issue_slave_cert(ctx, s).map(|c| vec![(s, c)]))
            .unwrap_or_default();
        ctx.metrics().inc("master.setups");
        let auditor = self.auditor_node();
        ctx.send(
            client,
            Msg::SetupResponse {
                shard: self.shard,
                slaves,
                spares,
                auditor,
            },
        );
    }

    fn handle_accusation(&mut self, ctx: &mut Ctx<'_, Msg>, evidence: Evidence) {
        let version = evidence.pledge.stamp.version;
        let slave = evidence.pledge.slave;
        let Some(key) = self.slave_keys.get(&slave) else {
            ctx.metrics().inc("accusation.unknown_slave");
            return;
        };
        let Some(reference) = self.reference_state(version) else {
            ctx.metrics().inc("accusation.version_unavailable");
            return;
        };
        ctx.charge(ctx.costs().verify);
        // Evidence re-executes the query internally; charge the work.
        if let Ok((_, qcost)) = execute(reference, &evidence.pledge.query) {
            ctx.charge(crate::cost::query_charge(&qcost, 0, ctx.costs()));
        }
        match evidence.verify(key, reference) {
            Ok(()) => {
                if evidence.discovery == Discovery::Delayed {
                    ctx.metrics().inc("discovery.delayed");
                }
                self.evidence_log.push(evidence);
                let actions = self.tob.broadcast(MasterEvent::Exclude { slave });
                self.drain_tob(ctx, actions);
            }
            Err(_) => {
                ctx.metrics().inc("accusation.rejected");
            }
        }
    }
}

impl Process<Msg> for MasterProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.cfg.tob_tick, T_TOB_TICK);
        ctx.set_timer(self.cfg.keepalive_period, T_KEEPALIVE);
        ctx.set_timer(self.cfg.audit_tick, T_AUDIT);
        ctx.set_timer(self.cfg.max_latency / 8, T_WRITE_PUMP);
        // Peers may not be spawned yet during on_start, so the first
        // gossip/keep-alive round goes through a near-immediate timer.
        ctx.set_timer(sdr_sim::SimDuration::from_millis(1), T_GOSSIP);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            T_TOB_TICK => {
                let actions = self.tob.on_tick();
                self.drain_tob(ctx, actions);
                ctx.set_timer(self.cfg.tob_tick, T_TOB_TICK);
            }
            T_KEEPALIVE => {
                if !self.my_slaves.is_empty() {
                    if let Some((stamp, digest_stamp)) = self.make_stamps(ctx) {
                        ctx.metrics().inc("keepalive.sent");
                        ctx.multicast(
                            self.my_slaves.iter().copied(),
                            Msg::KeepAlive {
                                stamp,
                                digest_stamp,
                            },
                        );
                    }
                }
                ctx.set_timer(self.cfg.keepalive_period, T_KEEPALIVE);
            }
            T_AUDIT => {
                if self.is_auditor() {
                    let findings = self.auditor_state.process_slice(
                        ctx,
                        &self.slave_keys,
                        &self.master_keys,
                    );
                    for f in findings {
                        // Route to the slave's owner ("the auditor sends the
                        // incriminating pledge to the master in charge of
                        // the slave that has signed it").
                        let owner = self
                            .slave_owner
                            .get(&f.slave)
                            .copied()
                            .unwrap_or(self.tob.view().sequencer());
                        let owner_node = self.node_of(owner);
                        ctx.send(
                            owner_node,
                            Msg::Accusation {
                                evidence: Box::new(f.evidence),
                            },
                        );
                    }
                }
                ctx.set_timer(self.cfg.audit_tick, T_AUDIT);
            }
            T_WRITE_PUMP => {
                self.pump_writes(ctx);
                ctx.set_timer(self.cfg.max_latency / 8, T_WRITE_PUMP);
            }
            T_GOSSIP => {
                // Periodic slave-list broadcast (Section 3) plus a
                // keep-alive so freshly assigned slaves can serve at once.
                let actions = self.tob.broadcast(MasterEvent::SlaveList {
                    master: self.rank,
                    slaves: self.my_slaves.clone(),
                });
                self.drain_tob(ctx, actions);
                if !self.my_slaves.is_empty() {
                    if let Some((stamp, digest_stamp)) = self.make_stamps(ctx) {
                        ctx.multicast(
                            self.my_slaves.iter().copied(),
                            Msg::KeepAlive {
                                stamp,
                                digest_stamp,
                            },
                        );
                    }
                }
                ctx.set_timer(self.cfg.keepalive_period * 8, T_GOSSIP);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Tob(tm) => {
                // Map the sender node back to its rank.
                let Some(rank) = self
                    .member_nodes
                    .iter()
                    .position(|n| *n == from)
                    .map(|i| MemberId(i as u32))
                else {
                    return;
                };
                let actions = self.tob.on_message(rank, tm);
                self.drain_tob(ctx, actions);
            }
            Msg::SetupRequest => self.handle_setup(ctx, from),
            Msg::WriteRequest { req_id, ops } => {
                ctx.metrics().inc("write.received");
                if !self.policy.allows(from, &ops) {
                    ctx.metrics().inc("write.denied");
                    ctx.send(
                        from,
                        Msg::WriteResponse {
                            req_id,
                            outcome: WriteOutcome::AccessDenied,
                        },
                    );
                    return;
                }
                self.admit_write(ctx, from, req_id, ops);
            }
            Msg::WriteForward {
                client,
                req_id,
                ops,
            } => {
                // Already ACL-checked by the forwarding master.
                self.admit_write(ctx, client, req_id, ops);
            }
            Msg::DoubleCheck { req_id, pledge } => {
                self.handle_double_check(ctx, from, req_id, *pledge)
            }
            Msg::TrustedRead { req_id, query } => {
                ctx.metrics().inc("master.trusted_reads");
                if let Ok((result, qcost)) = execute(&self.db, &query) {
                    ctx.charge(crate::cost::query_charge(&qcost, result.size(), ctx.costs()));
                    ctx.send(from, Msg::TrustedReadResponse { req_id, result });
                }
            }
            Msg::AuditSubmit { pledge } => {
                if self.is_auditor() {
                    self.auditor_state.enqueue(*pledge, ctx.metrics());
                } else {
                    // Stale client knowledge: forward to the real auditor.
                    let auditor = self.auditor_node();
                    ctx.send(auditor, Msg::AuditSubmit { pledge });
                }
            }
            Msg::Accusation { evidence } => self.handle_accusation(ctx, *evidence),
            Msg::SlaveSyncRequest { from_version } => {
                // Replay what we still hold, bounded per request; the
                // slave re-requests if it is still behind afterwards.
                // Each replayed version gets its *own* digest stamp (the
                // digest log retains one per write-log entry) so the
                // catching-up slave can re-anchor proof reads at every
                // step.
                let missing: Vec<(u64, Vec<UpdateOp>)> = self
                    .write_log
                    .range(from_version..)
                    .take(16)
                    .map(|(&v, ops)| (v, ops.clone()))
                    .collect();
                if let Some(stamp) = self.make_stamp(ctx) {
                    for (version, ops) in missing {
                        let Some(digest_stamp) = self.make_digest_stamp(ctx, version) else {
                            continue;
                        };
                        ctx.send(
                            from,
                            Msg::StateUpdate {
                                version,
                                ops,
                                stamp: stamp.clone(),
                                digest_stamp,
                            },
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        // Global label (shard-major), identical to the unsharded layout
        // when `n_shards == 1`.
        format!(
            "master-{}",
            self.shard as usize * self.cfg.n_masters + self.rank.index()
        )
    }
}
