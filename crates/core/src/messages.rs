//! Wire messages exchanged by directory, masters, slaves, and clients.

use crate::evidence::Evidence;
use crate::pledge::Pledge;
use sdr_broadcast::{MemberId, TobMessage};
use sdr_crypto::{Certificate, CryptoError, Hash256, PublicKey, Signature, Signer};
use sdr_sim::{NodeId, Payload, SimTime};
use sdr_store::{Query, QueryResult, StateProof, StreamProof, UpdateOp};
use serde::{Deserialize, Serialize};

/// The "signed and time-stamped value of the `content_version` variable"
/// (Section 3.1) — attached to state updates, keep-alives, and pledges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VersionStamp {
    /// The content version.
    pub version: u64,
    /// When the issuing master signed it.
    pub timestamp: SimTime,
    /// The issuing master.
    pub master: NodeId,
    /// Master signature over [`VersionStamp::signing_bytes`].
    pub signature: Signature,
}

impl VersionStamp {
    /// Canonical bytes the master signs (version + timestamp).
    pub fn signing_bytes(&self) -> Vec<u8> {
        Self::signing_bytes_raw(self.version, self.timestamp)
    }

    fn signing_bytes_raw(version: u64, timestamp: SimTime) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(b"sdr/stamp/v1");
        out.extend_from_slice(&version.to_be_bytes());
        out.extend_from_slice(&timestamp.as_micros().to_be_bytes());
        out
    }

    /// Builds and signs a stamp.
    pub fn build(
        version: u64,
        timestamp: SimTime,
        master: NodeId,
        signer: &mut dyn Signer,
    ) -> Result<Self, CryptoError> {
        let signature = signer.sign(&Self::signing_bytes_raw(version, timestamp))?;
        Ok(VersionStamp {
            version,
            timestamp,
            master,
            signature,
        })
    }

    /// Verifies the master's signature.
    pub fn verify(&self, master_key: &PublicKey) -> Result<(), CryptoError> {
        master_key.verify(&self.signing_bytes(), &self.signature)
    }
}

/// A master-signed commitment to the full content state at one version:
/// the anchor of the authenticated (proof-verified) read path.
///
/// Where [`VersionStamp`] certifies only the *version counter* (enough
/// for pledge freshness), this stamp also certifies the state *digest* —
/// so a client holding one can check an O(log n) Merkle path proof from
/// any row or file straight up to a trusted root, with no pledge, audit,
/// or double-check involved.  The `state_signing` baseline signs the
/// same bytes with the owner key; the protocol signs them with master
/// keys on every commit and keep-alive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateDigestStamp {
    /// The content version the digest covers.
    pub version: u64,
    /// [`sdr_store::Database::state_digest`] at that version.
    pub digest: Hash256,
    /// When the issuing party signed it.
    pub timestamp: SimTime,
    /// The issuing master.
    pub master: NodeId,
    /// Signature over [`StateDigestStamp::signing_bytes`].
    pub signature: Signature,
}

impl StateDigestStamp {
    /// Canonical bytes the issuer signs (version + digest + timestamp).
    pub fn signing_bytes(&self) -> Vec<u8> {
        Self::signing_bytes_raw(self.version, &self.digest, self.timestamp)
    }

    fn signing_bytes_raw(version: u64, digest: &Hash256, timestamp: SimTime) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"sdr/digest-stamp/v1");
        out.extend_from_slice(&version.to_be_bytes());
        out.extend_from_slice(digest.as_ref());
        out.extend_from_slice(&timestamp.as_micros().to_be_bytes());
        out
    }

    /// Builds and signs a stamp.
    pub fn build(
        version: u64,
        digest: Hash256,
        timestamp: SimTime,
        master: NodeId,
        signer: &mut dyn Signer,
    ) -> Result<Self, CryptoError> {
        let signature = signer.sign(&Self::signing_bytes_raw(version, &digest, timestamp))?;
        Ok(StateDigestStamp {
            version,
            digest,
            timestamp,
            master,
            signature,
        })
    }

    /// Verifies the issuer's signature.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), CryptoError> {
        issuer_key.verify(&self.signing_bytes(), &self.signature)
    }

    /// Whether the stamp is still fresh at `now` under `max_latency`.
    pub fn is_fresh(&self, now: SimTime, max_latency: sdr_sim::SimDuration) -> bool {
        now.since(self.timestamp) <= max_latency
    }
}

/// Outcome of a write request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WriteOutcome {
    /// Committed at this content version.
    Committed {
        /// The version the write produced.
        version: u64,
    },
    /// Rejected by the access-control policy.
    AccessDenied,
    /// Rejected because an operation failed (description).
    Failed(String),
}

/// Why a slave refused to serve a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefuseReason {
    /// The slave's freshest keep-alive exceeded `max_latency` — it gated
    /// itself off, as Section 3 requires of correct slaves.
    OutOfSync,
    /// The slave is shutting down (excluded).
    Excluded,
}

/// Verdict returned by a master for a double-check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CheckVerdict {
    /// Slave's answer matched the master's re-execution.
    Match,
    /// Slave lied; the master returns the correct result.
    Mismatch {
        /// The authoritative result.
        correct: QueryResult,
    },
    /// The master no longer holds the pledge's version (client should
    /// simply re-read).
    VersionUnavailable,
    /// Request ignored: the client exceeded its double-check quota
    /// (greedy-client enforcement).  In the real system the master would
    /// silently drop; an explicit message keeps the simulation observable.
    Throttled,
}

/// Events masters submit to their total-order broadcast.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MasterEvent {
    /// A client write admitted by some master.
    Write {
        /// Master that admitted the write.
        origin_master: MemberId,
        /// The requesting client.
        client: NodeId,
        /// Client-chosen request id (for the response).
        req_id: u64,
        /// The operations.
        ops: Vec<UpdateOp>,
    },
    /// A whole round of client writes admitted by the sequencer: the
    /// head of its queue, drained in arrival order and committed as one
    /// multi-version batch.  One ordered round and one signed stamp pair
    /// carry all of them, amortising the spacing rule's per-round cost
    /// over `writes.len()` commits.
    WriteBatch {
        /// Master that admitted the batch (always the sequencer).
        origin_master: MemberId,
        /// The queued writes in commit order: `(client, req_id, ops)`.
        writes: Vec<(NodeId, u64, Vec<UpdateOp>)>,
    },
    /// Periodic slave-list gossip ("masters also periodically broadcast
    /// their slave list to the master set, so in the event of a master
    /// crash the remaining ones will divide its slave set").
    SlaveList {
        /// The gossiping master.
        master: MemberId,
        /// Its current slaves.
        slaves: Vec<NodeId>,
    },
    /// Agreed exclusion of a slave caught red-handed.
    Exclude {
        /// The provably malicious slave.
        slave: NodeId,
    },
}

/// All messages carried by the simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Msg {
    // ----- Directory -----
    /// Client → directory: who replicates this shard of the content?
    /// (Single-shard deployments always ask for shard 0.)
    DirLookup {
        /// The shard being looked up.
        shard: u32,
    },
    /// Directory → client: the shard's master certificates plus its
    /// current auditor.
    DirResponse {
        /// The shard this answer covers (echoed from the lookup).
        shard: u32,
        /// Certificates of the shard's masters (issued by the content
        /// owner, carrying the shard-scope claim).
        certs: Vec<Certificate>,
        /// Node ids corresponding to `certs` (same order).
        nodes: Vec<NodeId>,
        /// The shard's currently elected auditor (excluded from client
        /// setup).
        auditor: NodeId,
    },
    /// Master → directory/client: one shard's elected auditor changed.
    AuditorChanged {
        /// The shard whose auditor moved.
        shard: u32,
        /// New auditor node.
        auditor: NodeId,
    },

    // ----- Client ↔ master: setup -----
    /// Client → master: assign me a slave.
    SetupRequest,
    /// Master → client: your slave assignment (Section 2's setup phase).
    SetupResponse {
        /// The shard the responding master (and its slaves) serve.
        shard: u32,
        /// Assigned slaves (one for the basic protocol, `k` for the
        /// quorum-read variant) with their certificates.
        slaves: Vec<(NodeId, Certificate)>,
        /// Spare replicas of the same shard (at most one today): not
        /// part of the read quorum, used by the proof path to retry a
        /// rejected proof on another replica before falling back to
        /// pledge+audit.
        spares: Vec<(NodeId, Certificate)>,
        /// The shard's current auditor, so pledges can be forwarded.
        auditor: NodeId,
    },

    // ----- Client ↔ master: writes -----
    /// Client → master: commit these operations.
    WriteRequest {
        /// Client-chosen request id.
        req_id: u64,
        /// Operations to apply.
        ops: Vec<UpdateOp>,
    },
    /// Master → client: write outcome.
    WriteResponse {
        /// Echoed request id.
        req_id: u64,
        /// What happened.
        outcome: WriteOutcome,
    },

    // ----- Master ↔ master -----
    /// Total-order broadcast traffic.
    Tob(TobMessage<MasterEvent>),
    /// A non-sequencer master hands a client write to the sequencer, which
    /// owns the global `max_latency` spacing of writes (Section 3.1's "two
    /// write operations cannot be, time-wise, closer than max_latency").
    WriteForward {
        /// The requesting client (gets the response directly).
        client: NodeId,
        /// Client-chosen request id.
        req_id: u64,
        /// The operations.
        ops: Vec<UpdateOp>,
    },

    // ----- Master → slave -----
    /// Committed state update pushed lazily to slaves (Section 3.1).
    StateUpdate {
        /// The version this update produces.
        version: u64,
        /// Operations of the committed write.
        ops: Vec<UpdateOp>,
        /// Signed stamp for the new version.
        stamp: VersionStamp,
        /// Signed state digest at the new version (anchors proof reads).
        digest_stamp: StateDigestStamp,
    },
    /// A batch of committed state updates pushed as one message: the
    /// per-version op runs of one sequencer round, anchored by a
    /// *single* stamp pair signed at the batch's final version.  The
    /// slave applies every run in order and adopts the stamps once the
    /// last one lands — O(1) signatures per round instead of per write.
    StateUpdateBatch {
        /// `(version, ops)` runs in ascending, gapless version order.
        updates: Vec<(u64, Vec<UpdateOp>)>,
        /// Signed stamp of the batch's final version.
        stamp: VersionStamp,
        /// Signed state digest at the batch's final version: one anchor
        /// for every proof read served at that version.
        digest_stamp: StateDigestStamp,
    },
    /// Signed keep-alive (slaves may serve only while fresh).
    KeepAlive {
        /// Signed stamp of the current version.
        stamp: VersionStamp,
        /// Signed state digest at the current version (refreshes the
        /// anchor slaves serve proof reads against).
        digest_stamp: StateDigestStamp,
    },
    /// Slave → master: I am missing updates from `from_version`.
    SlaveSyncRequest {
        /// First version the slave lacks.
        from_version: u64,
    },
    /// Master → slave: you are excluded (corrective action).
    ExcludeNotice,

    // ----- Client ↔ slave: reads -----
    /// Client → slave: execute this query.
    ReadRequest {
        /// Client-chosen request id.
        req_id: u64,
        /// The query.
        query: Query,
    },
    /// Slave → client: result plus signed pledge.
    ///
    /// The pledge rides behind a `Box`: it is by far the widest payload
    /// in the protocol, and inlining it would drag every `Msg` (and so
    /// every queued event allocation) up to its size.
    ReadResponse {
        /// Echoed request id.
        req_id: u64,
        /// The (claimed) query result.
        result: QueryResult,
        /// The signed pledge.
        pledge: Box<Pledge>,
    },
    /// Slave → client: refusing to serve (self-gated or excluded).
    ReadRefused {
        /// Echoed request id.
        req_id: u64,
        /// Why.
        reason: RefuseReason,
    },
    /// Client → slave: execute this static point read and prove the
    /// answer against the signed state digest (no pledge needed).
    ProofRead {
        /// Client-chosen request id.
        req_id: u64,
        /// The query (must be `GetRow` or `ReadFile`).
        query: Query,
    },
    /// Slave → client: result, Merkle path proof, and the master-signed
    /// digest stamp the proof folds up to.
    ///
    /// Content-addressed rather than request-addressed: the reply echoes
    /// the *query* instead of a per-request id, so one cached reply
    /// allocation serves every concurrent reader of the same hot key
    /// (the slave's proof cache re-sends the identical `Arc<Msg>`).
    /// Clients match it to their oldest pending proof read for that
    /// query — the pairing is deterministic because a client never has
    /// two distinguishable reads of the same query in flight.
    ProofReadReply {
        /// The query this reply answers (echoed; boxed — see
        /// [`Msg::ReadResponse`] on why wide payloads stay indirect).
        query: Box<Query>,
        /// The (claimed) query result.
        result: QueryResult,
        /// O(log n) path proof from the result to the digest (boxed —
        /// see [`Msg::ReadResponse`] on why wide payloads stay indirect).
        proof: Box<StateProof>,
        /// Master-signed state digest the proof anchors in.
        digest_stamp: StateDigestStamp,
    },
    /// Slave → client: a verified range scan — the rows in key order, an
    /// O(log n + k) range proof covering *and completing* them (no row
    /// in the scanned interval can be omitted), and the master-signed
    /// digest stamp the proof folds up to.
    ///
    /// Content-addressed exactly like [`Msg::ProofReadReply`]: the reply
    /// echoes the query, so one cached allocation serves every
    /// concurrent scanner of the same hot range.
    RangeReadReply {
        /// The `ScanRange` query this reply answers (echoed; boxed — see
        /// [`Msg::ReadResponse`] on why wide payloads stay indirect).
        query: Box<Query>,
        /// The (claimed) rows, ascending by key.
        result: QueryResult,
        /// Range proof from the rows to the digest (boxed — see
        /// [`Msg::ReadResponse`]).
        proof: Box<StateProof>,
        /// Master-signed state digest the proof anchors in.
        digest_stamp: StateDigestStamp,
    },
    /// Client → slave: stream this file range chunk-by-chunk, with a
    /// manifest proof header (the `ReadFileRange` analogue of
    /// [`Msg::ProofRead`]).
    StreamRead {
        /// Client-chosen request id.
        req_id: u64,
        /// The query (must be `ReadFileRange`).
        query: Query,
    },
    /// Slave → client: the stream header — a Merkle path from the file's
    /// chunk manifest to the signed digest.  Chunks follow as
    /// [`Msg::StreamChunk`]; the client verifies each against the
    /// manifest as it arrives, never buffering the whole file.
    StreamHeader {
        /// Echoed request id.
        req_id: u64,
        /// Manifest-to-digest proof (manifest `None` proves absence;
        /// boxed — see [`Msg::ReadResponse`]).
        proof: Box<StreamProof>,
        /// Master-signed state digest the proof anchors in.
        digest_stamp: StateDigestStamp,
        /// Index of the first chunk the stream will carry.
        first_chunk: u32,
        /// Number of chunks the stream will carry.
        chunk_count: u32,
    },
    /// Slave → client: one content chunk of an in-flight stream.
    StreamChunk {
        /// Echoed request id.
        req_id: u64,
        /// Manifest index of this chunk.
        index: u32,
        /// Raw chunk bytes.
        data: Vec<u8>,
    },

    // ----- Client ↔ master: reads (sensitive + double-check) -----
    /// Client → master: execute this read on trusted hardware
    /// (Section 4 security-sensitive variant).
    TrustedRead {
        /// Client-chosen request id.
        req_id: u64,
        /// The query.
        query: Query,
    },
    /// Master → client: authoritative result of a trusted read.
    TrustedReadResponse {
        /// Echoed request id.
        req_id: u64,
        /// The result.
        result: QueryResult,
    },
    /// Client → master: double-check this pledge (Section 3.3).
    DoubleCheck {
        /// Client-chosen request id.
        req_id: u64,
        /// The pledge under suspicion (boxed — see [`Msg::ReadResponse`]).
        pledge: Box<Pledge>,
    },
    /// Master → client: double-check verdict.
    DoubleCheckResponse {
        /// Echoed request id.
        req_id: u64,
        /// The verdict.
        verdict: CheckVerdict,
    },

    // ----- Audit path -----
    /// Client → auditor: pledge for background verification (Section 3.4).
    AuditSubmit {
        /// The pledge to verify (boxed — see [`Msg::ReadResponse`]).
        pledge: Box<Pledge>,
    },
    /// Auditor/client → responsible master: proof of slave misbehaviour.
    Accusation {
        /// Self-contained evidence (boxed — see [`Msg::ReadResponse`]).
        evidence: Box<Evidence>,
    },

    // ----- Corrective action -----
    /// Master → client: your slave was excluded; here is a replacement
    /// (Section 3.5).
    Reassign {
        /// The excluded slave.
        excluded: NodeId,
        /// Replacement assignment (when capacity remains).
        replacement: Option<(NodeId, Certificate)>,
    },
}

impl Payload for Msg {
    fn wire_len(&self) -> usize {
        match self {
            Msg::DirLookup { .. } | Msg::SetupRequest => 16,
            Msg::DirResponse { certs, .. } => 64 + certs.len() * 128,
            Msg::AuditorChanged { .. } => 24,
            Msg::SetupResponse { slaves, spares, .. } => {
                32 + (slaves.len() + spares.len()) * 128
            }
            Msg::WriteRequest { ops, .. } | Msg::WriteForward { ops, .. } => {
                16 + ops.iter().map(UpdateOp::size).sum::<usize>()
            }
            Msg::WriteResponse { .. } => 32,
            Msg::Tob(m) => match m {
                TobMessage::Publish { payload, .. } | TobMessage::Ordered { payload, .. } => {
                    32 + master_event_len(payload)
                }
                TobMessage::StateReply { log, .. } | TobMessage::NewView { log, .. } => {
                    32 + log.iter().map(|(_, _, _, e)| master_event_len(e)).sum::<usize>()
                }
                _ => 32,
            },
            // Version stamp (96) plus the digest stamp (32-byte digest +
            // signature, ~128).
            Msg::StateUpdate { ops, .. } => {
                224 + ops.iter().map(UpdateOp::size).sum::<usize>()
            }
            // One 224-byte stamp pair for the whole batch, plus a small
            // per-run header (version) and the ops themselves.
            Msg::StateUpdateBatch { updates, .. } => {
                224 + updates
                    .iter()
                    .map(|(_, ops)| 8 + ops.iter().map(UpdateOp::size).sum::<usize>())
                    .sum::<usize>()
            }
            Msg::KeepAlive { .. } => 224,
            Msg::SlaveSyncRequest { .. } => 16,
            Msg::ExcludeNotice => 8,
            Msg::ReadRequest { query, .. } => 16 + query.encode().len(),
            Msg::ReadResponse { result, pledge, .. } => 16 + result.size() + pledge.wire_len(),
            Msg::ReadRefused { .. } => 16,
            Msg::ProofRead { query, .. } => 16 + query.encode().len(),
            Msg::ProofReadReply { query, result, proof, .. }
            | Msg::RangeReadReply { query, result, proof, .. } => {
                8 + query.encode().len() + result.size() + proof.wire_len() + 128
            }
            Msg::StreamRead { query, .. } => 16 + query.encode().len(),
            // Header proof plus the digest stamp (~128) and stream bounds.
            Msg::StreamHeader { proof, .. } => 24 + proof.wire_len() + 128,
            Msg::StreamChunk { data, .. } => 20 + data.len(),
            Msg::TrustedRead { query, .. } => 16 + query.encode().len(),
            Msg::TrustedReadResponse { result, .. } => 16 + result.size(),
            Msg::DoubleCheck { pledge, .. } => 16 + pledge.wire_len(),
            Msg::DoubleCheckResponse { verdict, .. } => match verdict {
                CheckVerdict::Mismatch { correct } => 16 + correct.size(),
                _ => 24,
            },
            Msg::AuditSubmit { pledge } => 8 + pledge.wire_len(),
            Msg::Accusation { evidence } => 64 + evidence.pledge.wire_len(),
            Msg::Reassign { .. } => 160,
        }
    }
}

fn master_event_len(e: &MasterEvent) -> usize {
    match e {
        MasterEvent::Write { ops, .. } => 24 + ops.iter().map(UpdateOp::size).sum::<usize>(),
        MasterEvent::WriteBatch { writes, .. } => {
            24 + writes
                .iter()
                .map(|(_, _, ops)| 16 + ops.iter().map(UpdateOp::size).sum::<usize>())
                .sum::<usize>()
        }
        MasterEvent::SlaveList { slaves, .. } => 16 + slaves.len() * 4,
        MasterEvent::Exclude { .. } => 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_crypto::{Digest as _, HmacSigner};

    #[test]
    fn stamp_sign_verify() {
        let mut m = HmacSigner::from_seed_label(1, b"m");
        let stamp = VersionStamp::build(7, SimTime::from_millis(100), NodeId(0), &mut m).unwrap();
        stamp.verify(&m.public_key()).unwrap();

        let other = HmacSigner::from_seed_label(2, b"m");
        assert!(stamp.verify(&other.public_key()).is_err());
    }

    #[test]
    fn digest_stamp_sign_verify_and_tamper() {
        let mut m = HmacSigner::from_seed_label(1, b"m");
        let digest = sdr_crypto::Sha256::digest(b"state");
        let stamp = StateDigestStamp::build(
            3,
            digest,
            SimTime::from_millis(50),
            NodeId(0),
            &mut m,
        )
        .unwrap();
        stamp.verify(&m.public_key()).unwrap();
        assert!(stamp.is_fresh(
            SimTime::from_millis(100),
            sdr_sim::SimDuration::from_millis(100)
        ));
        assert!(!stamp.is_fresh(
            SimTime::from_millis(200),
            sdr_sim::SimDuration::from_millis(100)
        ));

        let mut bad = stamp.clone();
        bad.digest = sdr_crypto::Sha256::digest(b"forged");
        assert!(bad.verify(&m.public_key()).is_err());
        let mut bad = stamp;
        bad.version += 1;
        assert!(bad.verify(&m.public_key()).is_err());
    }

    #[test]
    fn tampered_stamp_rejected() {
        let mut m = HmacSigner::from_seed_label(1, b"m");
        let mut stamp =
            VersionStamp::build(7, SimTime::from_millis(100), NodeId(0), &mut m).unwrap();
        stamp.version = 8;
        assert!(stamp.verify(&m.public_key()).is_err());
    }

    /// Pins the in-memory footprint of the scheduler's unit of work.
    /// `Event<Msg>` holds deliveries behind an `Arc`, so it must stay
    /// within a single cache line regardless of how `Msg` grows; and the
    /// `Msg` allocation itself must not regress past the stamp-carrying
    /// replication variants, which set the floor.  If either assertion
    /// fires, a new variant embedded a wide payload inline — box it
    /// (see `ReadResponse`).
    #[test]
    fn event_and_msg_stay_small() {
        assert!(
            std::mem::size_of::<sdr_sim::event::Event<Msg>>() <= 64,
            "Event<Msg> is {}B; must fit one cache line",
            std::mem::size_of::<sdr_sim::event::Event<Msg>>()
        );
        assert!(
            std::mem::size_of::<Msg>() <= 256,
            "Msg is {}B; box wide payload fields",
            std::mem::size_of::<Msg>()
        );
    }

    #[test]
    fn wire_lengths_are_plausible() {
        assert!(Msg::DirLookup { shard: 0 }.wire_len() < Msg::ExcludeNotice.wire_len() + 100);
        let big = Msg::WriteRequest {
            req_id: 1,
            ops: vec![UpdateOp::WriteFile {
                path: "/a".into(),
                contents: "x".repeat(1000),
            }],
        };
        assert!(big.wire_len() > 1000);
    }
}
