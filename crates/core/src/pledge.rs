//! Pledge packets — the heart of the paper's accountability mechanism.
//!
//! Section 3.2: "The slave executes the request, and constructs a 'pledge'
//! packet which contains a copy of the request, the secure hash (SHA-1) of
//! the result, and the latest time-stamped `content_version` value received
//! from the master.  After signing this 'pledge' packet, the slave sends it
//! to the client, together with the result of the query."
//!
//! Because the slave signs `(request, hash(result), stamp)`, a wrong answer
//! makes the pledge "an irrefutable proof of its dishonesty" (Section 3.3),
//! while a client cannot frame an honest slave without forging its
//! signature — both properties are enforced (and property-tested) here.

use crate::config::HashAlgo;
use crate::messages::VersionStamp;
use sdr_crypto::{CryptoError, PublicKey, Signature, Signer};
use sdr_sim::{NodeId, SimDuration, SimTime};
use sdr_store::{Query, QueryResult};
use serde::{Deserialize, Serialize};

/// Hash of a query result under the configured algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResultHash {
    /// SHA-1 digest (the paper's choice).
    Sha1(sdr_crypto::Hash160),
    /// SHA-256 digest.
    Sha256(sdr_crypto::Hash256),
}

impl ResultHash {
    /// Hashes a query result under `algo`.
    pub fn of(result: &QueryResult, algo: HashAlgo) -> Self {
        match algo {
            HashAlgo::Sha1 => ResultHash::Sha1(result.sha1()),
            HashAlgo::Sha256 => ResultHash::Sha256(result.sha256()),
        }
    }

    /// The algorithm used.
    pub fn algo(&self) -> HashAlgo {
        match self {
            ResultHash::Sha1(_) => HashAlgo::Sha1,
            ResultHash::Sha256(_) => HashAlgo::Sha256,
        }
    }

    /// Raw digest bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            ResultHash::Sha1(h) => h.as_ref(),
            ResultHash::Sha256(h) => h.as_ref(),
        }
    }
}

/// A signed pledge accompanying every slave read response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pledge {
    /// Copy of the request.
    pub query: Query,
    /// Secure hash of the result the slave computed.
    pub result_hash: ResultHash,
    /// Latest time-stamped `content_version` received from the master.
    pub stamp: VersionStamp,
    /// The slave that produced (and signed) this pledge.
    pub slave: NodeId,
    /// Slave signature over [`Pledge::signing_bytes`].
    pub signature: Signature,
}

impl Pledge {
    /// Canonical bytes the slave signs.
    pub fn signing_bytes(
        query: &Query,
        result_hash: &ResultHash,
        stamp: &VersionStamp,
        slave: NodeId,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"sdr/pledge/v1");
        query.encode_into(&mut out);
        out.push(match result_hash.algo() {
            HashAlgo::Sha1 => 1,
            HashAlgo::Sha256 => 2,
        });
        out.extend_from_slice(result_hash.bytes());
        out.extend_from_slice(&stamp.signing_bytes());
        out.extend_from_slice(&stamp.master.0.to_be_bytes());
        out.extend_from_slice(&slave.0.to_be_bytes());
        out
    }

    /// Builds and signs a pledge over an already-computed result hash.
    ///
    /// Taking the *hash* (not the result) keeps the API honest: a malicious
    /// slave signs whatever hash it likes — the protocol's security never
    /// rests on this constructor being well-behaved.
    pub fn build(
        query: Query,
        result_hash: ResultHash,
        stamp: VersionStamp,
        slave: NodeId,
        signer: &mut dyn Signer,
    ) -> Result<Self, CryptoError> {
        let bytes = Self::signing_bytes(&query, &result_hash, &stamp, slave);
        let signature = signer.sign(&bytes)?;
        Ok(Pledge {
            query,
            result_hash,
            stamp,
            slave,
            signature,
        })
    }

    /// Verifies the slave's signature over this pledge.
    pub fn verify_signature(&self, slave_key: &PublicKey) -> Result<(), CryptoError> {
        let bytes = Self::signing_bytes(&self.query, &self.result_hash, &self.stamp, self.slave);
        slave_key.verify(&bytes, &self.signature)
    }

    /// Whether `result` matches the pledged hash.
    pub fn matches_result(&self, result: &QueryResult) -> bool {
        ResultHash::of(result, self.result_hash.algo()) == self.result_hash
    }

    /// Whether the embedded stamp is still fresh at `now` under the
    /// client's `max_latency` bound (Section 3.2's third client check).
    pub fn is_fresh(&self, now: SimTime, max_latency: SimDuration) -> bool {
        now.since(self.stamp.timestamp) <= max_latency
    }

    /// Approximate wire size (result hash + query + stamp + signature).
    pub fn wire_len(&self) -> usize {
        self.query.encode().len() + self.result_hash.bytes().len() + 64 + self.signature.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_crypto::HmacSigner;
    use sdr_store::Value;

    fn stamp(version: u64, ts_ms: u64, master_signer: &mut dyn Signer) -> VersionStamp {
        VersionStamp::build(version, SimTime::from_millis(ts_ms), NodeId(0), master_signer)
            .unwrap()
    }

    fn setup() -> (HmacSigner, HmacSigner, Pledge, QueryResult) {
        let mut master = HmacSigner::from_seed_label(1, b"master");
        let mut slave = HmacSigner::from_seed_label(2, b"slave");
        let query = Query::GetRow {
            table: "t".into(),
            key: 7,
        };
        let result = QueryResult::Scalar(Value::Int(99));
        let st = stamp(5, 1_000, &mut master);
        let pledge = Pledge::build(
            query,
            ResultHash::of(&result, HashAlgo::Sha1),
            st,
            NodeId(3),
            &mut slave,
        )
        .unwrap();
        (master, slave, pledge, result)
    }

    #[test]
    fn honest_pledge_verifies() {
        let (_, slave, pledge, result) = setup();
        pledge.verify_signature(&slave.public_key()).unwrap();
        assert!(pledge.matches_result(&result));
    }

    #[test]
    fn wrong_result_detected_by_hash() {
        let (_, _, pledge, _) = setup();
        let other = QueryResult::Scalar(Value::Int(100));
        assert!(!pledge.matches_result(&other));
    }

    #[test]
    fn client_cannot_frame_slave() {
        // A client tampering with any pledge field invalidates the slave's
        // signature — the "framing" attack of Section 3.3.
        let (_, slave, pledge, result) = setup();
        let key = slave.public_key();

        let mut forged = pledge.clone();
        forged.result_hash = ResultHash::of(
            &QueryResult::Scalar(Value::Int(-1)),
            HashAlgo::Sha1,
        );
        assert!(forged.verify_signature(&key).is_err());

        let mut forged = pledge.clone();
        forged.query = Query::GetRow {
            table: "t".into(),
            key: 8,
        };
        assert!(forged.verify_signature(&key).is_err());

        let mut forged = pledge.clone();
        forged.stamp.version += 1;
        assert!(forged.verify_signature(&key).is_err());

        let mut forged = pledge;
        forged.slave = NodeId(99);
        assert!(forged.verify_signature(&key).is_err());
        let _ = result;
    }

    #[test]
    fn freshness_window() {
        let (_, _, pledge, _) = setup();
        let ml = SimDuration::from_millis(500);
        // Stamp at t=1000ms.
        assert!(pledge.is_fresh(SimTime::from_millis(1_200), ml));
        assert!(pledge.is_fresh(SimTime::from_millis(1_500), ml));
        assert!(!pledge.is_fresh(SimTime::from_millis(1_501), ml));
    }

    #[test]
    fn sha256_mode() {
        let mut slave = HmacSigner::from_seed_label(3, b"slave");
        let mut master = HmacSigner::from_seed_label(4, b"master");
        let result = QueryResult::Scalar(Value::Int(1));
        let pledge = Pledge::build(
            Query::ListFiles { prefix: "/".into() },
            ResultHash::of(&result, HashAlgo::Sha256),
            stamp(1, 0, &mut master),
            NodeId(1),
            &mut slave,
        )
        .unwrap();
        assert_eq!(pledge.result_hash.algo(), HashAlgo::Sha256);
        assert!(pledge.matches_result(&result));
        pledge.verify_signature(&slave.public_key()).unwrap();
    }

    #[test]
    fn signature_scheme_mismatch_rejected() {
        let (_, _, pledge, _) = setup();
        let mss = sdr_crypto::MssSigner::generate([9; 32], 1).unwrap();
        assert_eq!(
            pledge.verify_signature(&mss.public_key()),
            Err(CryptoError::SchemeMismatch)
        );
    }
}
