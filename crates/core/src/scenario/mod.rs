//! The scenario API: declarative experiment specs, sweeps, a multi-seed
//! runner, and machine-readable run reports.
//!
//! This module is the front door for driving the whole system:
//!
//! * [`ScenarioSpec`] — a serialisable description of a deployment,
//!   workload, behaviour roster, network, fault schedule, and sweep.
//! * [`Param`]/[`SweepAxis`]/[`Grid`] — declarative parameter sweeps
//!   (cartesian or zipped) replacing hand-rolled per-experiment loops.
//! * [`Runner`] — executes a spec across its grid and seeds, with
//!   optional probes for experiment-specific extraction, and aggregates
//!   into a [`RunReport`] (per-cell mean/min/max of every
//!   [`SystemStats`](crate::stats::SystemStats) field plus captured
//!   metric series).
//! * [`registry`] — named scenarios (`e1_detection`, `byzantine_storm`,
//!   …): the catalogue every bench binary and example draws from.
//!
//! ```
//! use sdr_core::scenario::{registry, Runner};
//!
//! let mut spec = registry::lookup("quickstart").unwrap();
//! spec.duration = sdr_sim::SimDuration::from_secs(2);
//! let report = Runner::new(spec).run().unwrap();
//! let json = report.to_json_string(); // machine-readable
//! ```

pub mod registry;
mod report;
mod runner;
mod spec;
mod sweep;

pub use report::{CellReport, FieldAggregate, NamedSeries, RunRecord, RunReport, StatsCheckpoint};
pub use runner::{CheckpointProbe, Probe, Runner};
pub use spec::{BehaviorSpec, CrashSpec, LatencySpec, LinkSpec, NetworkSpec, ScenarioSpec};
pub use sweep::{liar_template, Grid, GridMode, Param, SweepAxis};
