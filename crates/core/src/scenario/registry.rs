//! Named scenarios: every experiment bin and example, by name.
//!
//! The registry is the workspace's scenario catalogue.  `lookup("e1_detection")`
//! returns the exact spec the `e1_detection` binary runs; experiments
//! fetch, optionally tweak (CLI seed/duration overrides), run, and
//! render.  Keeping the catalogue in `sdr-core` lets tests, examples,
//! and the bench harness share one source of truth.

use super::spec::{BehaviorSpec, CrashSpec, LinkSpec, NetworkSpec, ScenarioSpec};
use super::sweep::{liar_template, Grid, Param, SweepAxis};
use crate::config::SystemConfig;
use crate::dataset::DatasetSpec;
use crate::slave::SlaveBehavior;
use crate::workload::{DiurnalPattern, QueryMix, Workload};
use sdr_sim::SimDuration;

/// Every registered scenario name, in catalogue order.
pub fn names() -> Vec<&'static str> {
    BUILDERS.iter().map(|(n, _)| *n).collect()
}

/// Fetches a scenario by name.
pub fn lookup(name: &str) -> Option<ScenarioSpec> {
    BUILDERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, build)| build())
}

type Builder = fn() -> ScenarioSpec;

const BUILDERS: &[(&str, Builder)] = &[
    ("e1_detection", e1_detection),
    ("e2_audit", e2_audit),
    ("e3_freshness", e3_freshness),
    ("e3_slow_client", e3_slow_client),
    ("e4_writes", e4_writes),
    ("e5_master_load", e5_master_load),
    ("e6_comparison", e6_comparison),
    ("e7_auditor", e7_auditor),
    ("e8_greedy", e8_greedy),
    ("e9_quorum_reads", e9_quorum_reads),
    ("e10_levels", e10_levels),
    ("e11_crypto", e11_crypto),
    ("e12_failover", e12_failover),
    ("quickstart", quickstart),
    ("byzantine_storm", byzantine_storm),
    ("master_failover", master_failover),
    ("cdn_catalog", cdn_catalog),
    ("medical_db", medical_db),
    ("large_catalog", large_catalog),
    ("proof_vs_pledge", proof_vs_pledge),
    ("sharded_commit", sharded_commit),
    ("batched_commit", batched_commit),
    ("cdn_media", cdn_media),
    ("churn_100k", churn_100k),
    ("flash_crowd", flash_crowd),
    ("range_scan", range_scan),
];

fn read_only(reads_per_sec: f64) -> Workload {
    Workload {
        reads_per_sec,
        writes_per_sec: 0.0,
        ..Workload::default()
    }
}

fn e1_detection() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e1_detection",
        "Detection speed vs double-check probability p (always-lying slave, audit off)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 8,
            audit_fraction: 0.0, // Isolate the double-check mechanism.
            seed: 1_000,
            ..SystemConfig::default()
        },
    );
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(1.0, false))]);
    spec.workload = read_only(8.0);
    spec.duration = SimDuration::from_secs(600);
    spec.seeds = vec![1_000, 2_000, 3_000, 4_000, 5_000];
    spec.capture_series = vec!["exclusion.at_us".into()];
    spec.grid = Grid::sweep(
        "p",
        Param::DoubleCheckProb,
        &[0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
    );
    spec
}

fn e2_audit() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e2_audit",
        "Lies accepted before the audit's first catch vs audited fraction (always-liar, p=0)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 8,
            double_check_prob: 0.0, // Audit is the only detector.
            seed: 21,
            ..SystemConfig::default()
        },
    );
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(1.0, false))]);
    spec.workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.1,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(240);
    spec.seeds = vec![21, 22, 23, 24, 25];
    spec.capture_series = vec!["exclusion.at_us".into()];
    spec.grid = Grid::sweep("audit fraction", Param::AuditFraction, &[0.05, 0.1, 0.25, 0.5, 1.0]);
    spec
}

fn e3_freshness() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e3_freshness",
        "Stale-read rate vs keep-alive period (max_latency = 1000 ms, 50 ms client links)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 6,
            max_latency: SimDuration::from_millis(1_000),
            double_check_prob: 0.0,
            seed: 31,
            ..SystemConfig::default()
        },
    );
    spec.workload = read_only(5.0);
    spec.network = Some(NetworkSpec {
        client_links: (0..6).map(|c| (c, LinkSpec::wan_ms(50))).collect(),
        ..NetworkSpec::default()
    });
    spec.grid = Grid::sweep(
        "keepalive (ms)",
        Param::KeepaliveMs,
        &[100.0, 250.0, 500.0, 800.0, 950.0],
    );
    spec
}

fn e3_slow_client() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e3_slow_client",
        "A slow client starves under the global freshness bound; its own relaxed max_latency restores service",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 6,
            max_latency: SimDuration::from_millis(1_000),
            keepalive_period: SimDuration::from_millis(250),
            double_check_prob: 0.0,
            seed: 31,
            ..SystemConfig::default()
        },
    );
    spec.workload = read_only(5.0);
    spec.network = Some(NetworkSpec {
        client_links: (0..6).map(|c| (c, LinkSpec::wan_ms(10))).collect(),
        ..NetworkSpec::default()
    });
    // Zip: client 0's link degrades while its personal freshness bound
    // stays global (0 = none) or relaxes to 6 s.
    spec.grid = Grid::zip(vec![
        SweepAxis::new(
            "client link median (ms)",
            Param::ClientLinkMs { client: 0 },
            &[10.0, 300.0, 700.0, 700.0, 1500.0, 1500.0],
        ),
        SweepAxis::new(
            "client max_latency (ms)",
            Param::ClientMaxLatencyMs { client: 0 },
            &[0.0, 0.0, 0.0, 6000.0, 0.0, 6000.0],
        ),
    ]);
    spec
}

fn e4_writes() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e4_writes",
        "Achievable write throughput vs max_latency (offered load 50 writes/s)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 8,
            double_check_prob: 0.01,
            seed: 41,
            ..SystemConfig::default()
        },
    );
    // Saturating write demand: far more writes offered than the spacing
    // rule can admit.
    spec.workload = Workload {
        reads_per_sec: 4.0,
        writes_per_sec: 50.0,
        writer_fraction: 0.5,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(120);
    // Keep-alive tracks max_latency at a fixed 1:4 ratio (zipped axes).
    spec.grid = Grid::zip(vec![
        SweepAxis::new(
            "max_latency (ms)",
            Param::MaxLatencyMs,
            &[250.0, 500.0, 1000.0, 2000.0, 4000.0],
        ),
        SweepAxis::new(
            "keepalive (ms)",
            Param::KeepaliveMs,
            &[62.5, 125.0, 250.0, 500.0, 1000.0],
        ),
    ]);
    spec
}

fn e5_master_load() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e5_master_load",
        "Trusted-host load vs double-check probability p (96 reads/s offered)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            audit_fraction: 1.0,
            seed: 51,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        reads_per_sec: 8.0,
        writes_per_sec: 0.2,
        ..Workload::default()
    };
    spec.grid = Grid::sweep(
        "p",
        Param::DoubleCheckProb,
        &[0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5],
    );
    spec
}

fn e6_comparison() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e6_comparison",
        "Per-read cost comparison vs state signing and SMR on an identical query stream",
        SystemConfig {
            seed: 61,
            ..SystemConfig::default()
        },
    );
    // The bin evaluates analytically over this workload's query mix and
    // dataset; no simulated system runs, so the grid stays empty.
    spec.workload.mix = QueryMix::catalogue();
    spec
}

fn e7_auditor() -> ScenarioSpec {
    let day = SimDuration::from_secs(240);
    let mut spec = ScenarioSpec::new(
        "e7_auditor",
        "Auditor backlog/lag over two compressed diurnal days (peak 144 reads/s)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            double_check_prob: 0.01,
            seed: 71,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        reads_per_sec: 12.0, // Peak rate; the trough is 5% of this.
        writes_per_sec: 0.1,
        diurnal: Some(DiurnalPattern {
            period: day,
            trough: 0.05,
        }),
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(480); // Two full days.
    spec.capture_series = vec!["audit.backlog".into(), "audit.lag_us".into()];
    spec.grid = Grid::cartesian(vec![
        SweepAxis::new("cache", Param::AuditorCache, &[1.0, 0.0]),
        SweepAxis::new("audit slice (ms)", Param::AuditSliceMs, &[20.0, 2.0]),
    ]);
    spec
}

fn e8_greedy() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e8_greedy",
        "Greedy-client throttling vs greediness (honest p = 0.02, window 30 s)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 10,
            double_check_prob: 0.02, // Honest rate.
            seed: 81,
            ..SystemConfig::default()
        },
    );
    spec.workload = read_only(8.0);
    spec.workload.greedy_clients = vec![(0, 0.02)];
    spec.duration = SimDuration::from_secs(120);
    spec.grid = Grid::sweep(
        "greedy client p",
        Param::GreedyClientProb { client: 0 },
        &[0.02, 0.05, 0.1, 0.3, 0.6, 0.9],
    );
    spec
}

fn e9_quorum_reads() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e9_quorum_reads",
        "Quorum reads vs colluding liars (6 slaves, lie prob 0.3, p=0 and audit off)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 9,
            double_check_prob: 0.0, // Isolate the quorum mechanism.
            audit_fraction: 0.0,
            seed: 91,
            ..SystemConfig::default()
        },
    );
    // Colluders agree on the forged answer; LiarCount replicates this
    // template across the first k slaves.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(0.3, true))]);
    spec.workload = read_only(6.0);
    spec.grid = Grid::cartesian(vec![
        SweepAxis::new("read quorum k", Param::ReadQuorum, &[1.0, 2.0, 3.0]),
        SweepAxis::new("colluders", Param::LiarCount, &[1.0, 2.0, 3.0]),
    ]);
    spec
}

fn e10_levels() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e10_levels",
        "Sensitive-read fraction vs correctness and trusted load (one liar, checks disabled)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 10,
            double_check_prob: 0.0,
            audit_fraction: 0.0, // Expose raw lie acceptance on the normal path.
            seed: 101,
            ..SystemConfig::default()
        },
    );
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(0.25, false))]);
    spec.workload = read_only(8.0);
    spec.grid = Grid::sweep(
        "sensitive fraction",
        Param::SensitiveFraction,
        &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0],
    );
    spec
}

fn e11_crypto() -> ScenarioSpec {
    ScenarioSpec::new(
        "e11_crypto",
        "Measured crypto costs (wall clock): hash, WOTS, MSS, pledge build/verify",
        SystemConfig {
            seed: 111,
            ..SystemConfig::default()
        },
    )
    // The bin wall-clock-times primitives; the spec carries identity only.
}

fn e12_failover() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "e12_failover",
        "Master crash at t=20s: slave-set division and client re-setup",
        SystemConfig {
            n_masters: 4,
            n_slaves: 8,
            n_clients: 12,
            double_check_prob: 0.02,
            seed: 121,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(80);
    spec.checkpoints = vec![SimDuration::from_secs(20)];
    spec.crashes = vec![CrashSpec {
        at: SimDuration::from_secs(20),
        master_rank: 0,
    }];
    spec.grid = Grid::sweep("crashed rank", Param::CrashRank, &[0.0, 1.0]);
    spec
}

fn quickstart() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "quickstart",
        "The smallest end-to-end deployment: one subtle liar, mixed reads and writes",
        SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 8,
            double_check_prob: 0.05, // 5% of reads are double-checked.
            seed: 2003,              // HotOS IX.
            ..SystemConfig::default()
        },
    );
    // One slave lies on 20% of reads — with a *self-consistent* pledge,
    // so only double-checking or the audit can catch it.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(0.2, false))]);
    spec.duration = SimDuration::from_secs(30);
    spec
}

fn byzantine_storm() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "byzantine_storm",
        "Every misbehaviour model at once; exclusion evidence verifies offline",
        SystemConfig {
            n_masters: 3,
            n_slaves: 8,
            n_clients: 16,
            double_check_prob: 0.08,
            audit_fraction: 1.0,
            seed: 666,
            ..SystemConfig::default()
        },
    );
    spec.behaviors = BehaviorSpec::with_overrides(vec![
        (0, SlaveBehavior::ConsistentLiar { prob: 0.5, collude: false }),
        (1, SlaveBehavior::ConsistentLiar { prob: 0.1, collude: false }),
        (2, SlaveBehavior::InconsistentLiar { prob: 0.3 }),
        (3, SlaveBehavior::StaleServer { freeze_at: 4 }),
        (4, SlaveBehavior::Refuser { prob: 0.4 }),
    ]);
    spec.workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(120);
    spec
}

fn master_failover() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "master_failover",
        "Two of five masters crash in sequence (including the sequencer); service continues",
        SystemConfig {
            n_masters: 5,
            n_slaves: 8,
            n_clients: 12,
            double_check_prob: 0.02,
            seed: 55,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        reads_per_sec: 5.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(90);
    // The sequencer dies at t=20s, the elected auditor at t=50s.
    spec.crashes = vec![
        CrashSpec {
            at: SimDuration::from_secs(20),
            master_rank: 0,
        },
        CrashSpec {
            at: SimDuration::from_secs(50),
            master_rank: 4,
        },
    ];
    spec.checkpoints = vec![SimDuration::from_secs(15), SimDuration::from_secs(40)];
    spec
}

fn cdn_catalog() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "cdn_catalog",
        "A CDN-served product catalogue over two compressed shopping days (Section 6 scenario)",
        SystemConfig {
            n_masters: 4,  // Owner-run trusted core (rank 3 audits).
            n_slaves: 10,  // CDN edge nodes.
            n_clients: 20, // Shoppers.
            double_check_prob: 0.01,
            max_latency: SimDuration::from_millis(2_000),
            seed: 7,
            ..SystemConfig::default()
        },
    );
    // The CDN is mostly honest; one node was compromised and lies
    // subtly, another is broken and serves stale catalogue pages.
    spec.behaviors = BehaviorSpec::with_overrides(vec![
        (3, SlaveBehavior::ConsistentLiar { prob: 0.1, collude: false }),
        (7, SlaveBehavior::StaleServer { freeze_at: 4 }),
    ]);
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 800,
            n_reviews: 1_600,
            n_files: 50,
            lines_per_file: 25,
            shared_block_lines: 0,
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 7,
        },
        reads_per_sec: 6.0,
        writes_per_sec: 0.3, // Occasional price/stock updates.
        writer_fraction: 0.1,
        mix: QueryMix::catalogue(),
        diurnal: Some(DiurnalPattern {
            period: SimDuration::from_secs(120), // Compressed shopping day.
            trough: 0.15,
        }),
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(240);
    spec.checkpoints = vec![SimDuration::from_secs(120)];
    spec
}

fn medical_db() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "medical_db",
        "Sensitive reads routed to trusted masters (one compromised replica, checks off)",
        SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            // Checks off so the table isolates what the variant buys.
            double_check_prob: 0.0,
            audit_fraction: 0.0,
            seed: 99,
            ..SystemConfig::default()
        },
    );
    // A compromised replica lies on a quarter of its answers.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(2, liar_template(0.25, false))]);
    spec.workload = Workload {
        reads_per_sec: 6.0,
        writes_per_sec: 0.05,
        ..Workload::default()
    };
    spec.grid = Grid::sweep(
        "sensitive fraction",
        Param::SensitiveFraction,
        &[0.0, 0.25, 0.5, 1.0],
    );
    spec
}

fn large_catalog() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "large_catalog",
        "Production-scale catalogue (10k products): feasible only with the \
         copy-on-write store — per-write snapshots and digests no longer \
         scan the whole dataset",
        SystemConfig {
            n_masters: 3,
            n_slaves: 8,
            n_clients: 16,
            double_check_prob: 0.02,
            snapshot_capacity: 32,
            seed: 4_242,
            ..SystemConfig::default()
        },
    );
    // One compromised edge node keeps the detection machinery (and its
    // snapshot re-materialisations) exercised at scale.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(5, SlaveBehavior::ConsistentLiar {
        prob: 0.05,
        collude: false,
    })]);
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 10_000,
            n_reviews: 20_000,
            n_files: 200,
            lines_per_file: 20,
            shared_block_lines: 0,
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 4_242,
        },
        reads_per_sec: 3.0,
        // A steady write stream: before the persistent store each of
        // these cloned and re-hashed the full 30k-row state several
        // times over (undo backup + snapshot ring + digests).
        writes_per_sec: 1.0,
        writer_fraction: 0.25,
        mix: QueryMix::catalogue(),
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(120);
    spec.checkpoints = vec![SimDuration::from_secs(60)];
    spec
}

fn proof_vs_pledge() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "proof_vs_pledge",
        "The two read paths head to head: static reads verified by Merkle \
         proofs (no auditor) vs pledge+audit, swept over the static share \
         of the mix and with the proof path toggled off as the control",
        SystemConfig {
            n_masters: 3,
            n_slaves: 6,
            n_clients: 12,
            double_check_prob: 0.02,
            audit_fraction: 1.0,
            seed: 1_259,
            ..SystemConfig::default()
        },
    );
    // One compromised replica lying on a fifth of its answers: on the
    // proof path its lies die at the client (proof_reads_rejected), on
    // the pledged path they linger until a double-check or the audit.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(0, liar_template(0.2, false))]);
    spec.workload = Workload {
        reads_per_sec: 8.0,
        writes_per_sec: 0.3,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(120);
    spec.seeds = vec![1_259, 2_259];
    spec.grid = Grid::cartesian(vec![
        SweepAxis::new(
            "static read fraction",
            Param::StaticReadFraction,
            &[0.0, 0.25, 0.5, 0.75, 1.0],
        ),
        SweepAxis::new("proof reads", Param::ProofReads, &[1.0, 0.0]),
    ]);
    spec
}

fn sharded_commit() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "sharded_commit",
        "Commit throughput vs shard count under saturating write demand: \
         the max_latency spacing rule is per write queue, so splitting the \
         key/path space across master subgroups is the first axis that \
         scales writes instead of just replicating reads",
        SystemConfig {
            n_masters: 3,
            n_slaves: 2, // Per shard; the subgroup replicates its slice.
            n_clients: 16,
            double_check_prob: 0.01,
            max_latency: SimDuration::from_millis(1_000),
            keepalive_period: SimDuration::from_millis(250),
            seed: 8_008,
            ..SystemConfig::default()
        },
    );
    // Saturating, uniformly-sharded write demand: far more writes
    // offered than any single queue can admit (1/max_latency = 1/s), so
    // committed writes track the number of queues.
    spec.workload = Workload {
        reads_per_sec: 2.0,
        writes_per_sec: 40.0,
        writer_fraction: 0.5,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(60);
    spec.seeds = vec![8_008, 9_009];
    spec.grid = Grid::sweep("shards", Param::NShards, &[1.0, 2.0, 4.0, 8.0]);
    spec
}

fn batched_commit() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "batched_commit",
        "Commit throughput vs sequencer batch size on one shard under \
         saturating write demand: the queue still opens once per \
         max_latency, but each round drains up to max_write_batch writes \
         as one multi-version commit anchored by a single signed digest \
         stamp, so committed writes track the batch bound",
        SystemConfig {
            n_masters: 3,
            n_slaves: 2,
            n_clients: 16,
            double_check_prob: 0.01,
            max_latency: SimDuration::from_millis(1_000),
            keepalive_period: SimDuration::from_millis(250),
            seed: 6_006,
            ..SystemConfig::default()
        },
    );
    // The same saturating write demand as `sharded_commit`: one queue
    // can admit only 1/max_latency rounds, so throughput moves with how
    // much each round carries.
    spec.workload = Workload {
        reads_per_sec: 2.0,
        writes_per_sec: 40.0,
        writer_fraction: 0.5,
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(60);
    spec.seeds = vec![6_006, 7_007];
    spec.grid = Grid::sweep("batch", Param::WriteBatch, &[1.0, 2.0, 4.0, 8.0]);
    spec
}

fn cdn_media() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "cdn_media",
        "Media distribution over untrusted edge nodes: large files served \
         as verified chunk streams (no client buffers a whole file), a \
         flash crowd modelled as a sharp diurnal read peak, and a sweep \
         over how much content the files share — shared segments chunk \
         identically, so the edge stores each one once",
        SystemConfig {
            n_masters: 3,
            n_slaves: 8,  // Edge nodes holding the media tree.
            n_clients: 24, // Flash-crowd audience.
            double_check_prob: 0.01,
            max_latency: SimDuration::from_millis(2_000),
            seed: 5_150,
            ..SystemConfig::default()
        },
    );
    // One edge node was compromised and corrupts chunks mid-stream;
    // chunk-by-chunk verification pins the lie to the exact chunk.
    spec.behaviors = BehaviorSpec::with_overrides(vec![(4, SlaveBehavior::ConsistentLiar {
        prob: 0.1,
        collude: false,
    })]);
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 100,
            n_reviews: 200,
            n_files: 60,          // The media library.
            lines_per_file: 400,  // ~14 KiB per file: many chunks each.
            shared_block_lines: 0, // Swept below.
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 5_150,
        },
        reads_per_sec: 8.0,
        writes_per_sec: 0.2, // Occasional re-encodes/uploads.
        writer_fraction: 0.1,
        mix: QueryMix::media(),
        // Flash crowd: reads spike to the peak and collapse to 10%
        // of it between waves.
        diurnal: Some(DiurnalPattern {
            period: SimDuration::from_secs(60),
            trough: 0.1,
        }),
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(120);
    spec.checkpoints = vec![SimDuration::from_secs(60)];
    // Dedup sweep: 0 lines shared (every file unique) up to ~90% of
    // each file shared (300-line block on 400 own lines ≈ 43% …; at
    // 3_600 lines the shared block is 90% of every file's bytes).
    spec.grid = Grid::sweep(
        "shared lines",
        Param::SharedBlockLines,
        &[0.0, 400.0, 3_600.0],
    );
    spec
}

fn churn_100k() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "churn_100k",
        "Registry at population scale: a 100k-row catalogue sharded four \
         ways, served to two thousand clients that join and leave all day \
         under a diurnal read mix.  Every rejoin redoes the full setup \
         phase, so the scenario stresses the directory, slave assignment, \
         and the simulator's event scheduler far more than any steady \
         workload — the target of the bucketed event queue and the \
         shared-payload multicast path",
        SystemConfig {
            n_shards: 4,
            n_masters: 3, // Per shard: 12 masters total.
            n_slaves: 4,  // Per shard: 16 replicas total.
            n_clients: 2_000,
            double_check_prob: 0.005,
            audit_fraction: 0.25, // Population-scale auditor sampling.
            max_latency: SimDuration::from_millis(2_000),
            snapshot_capacity: 32,
            seed: 100_000,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 100_000,
            n_reviews: 50_000,
            n_files: 100,
            lines_per_file: 10,
            shared_block_lines: 0,
            hot_fraction: 0.01,
            skew: 0.0,
            seed: 100_000,
        },
        // Per-client rates are low — load comes from the population.
        reads_per_sec: 0.5,
        writes_per_sec: 2.0,
        writer_fraction: 0.05,
        mix: QueryMix::catalogue(),
        diurnal: Some(DiurnalPattern {
            period: SimDuration::from_secs(30),
            trough: 0.2,
        }),
        churn: Some(crate::workload::ChurnModel {
            session: SimDuration::from_secs(10),
            offline: SimDuration::from_secs(5),
            fraction: 0.5,
        }),
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(60);
    spec.checkpoints = vec![SimDuration::from_secs(30)];
    spec
}

fn flash_crowd() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "flash_crowd",
        "A flash crowd hammers a handful of hot keys on one shard: two \
         thousand clients, a 10k-row catalogue whose hot set is eight \
         keys, and a sweep of the hot-read probability from uniform to \
         extreme.  The target of the hot-read fast path: at high skew \
         the slave answers almost every proof read from its reply cache \
         (one proof build per anchor window, shared Arc payloads) and \
         the client verifies each anchor's signature once, so repeat \
         verified reads cost a cache lookup plus the Merkle fold",
        SystemConfig {
            n_shards: 1,
            n_masters: 3,
            n_slaves: 4,
            n_clients: 2_000,
            double_check_prob: 0.005,
            audit_fraction: 0.25,
            max_latency: SimDuration::from_millis(2_000),
            seed: 20_003,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 10_000,
            n_reviews: 5_000,
            n_files: 50,
            lines_per_file: 20,
            shared_block_lines: 0,
            hot_fraction: 0.0008, // ceil(10_000 × 0.0008) = 8 hot keys.
            skew: 0.0,            // Swept below.
            seed: 20_003,
        },
        // Per-client rates are modest; the crowd is the load.
        reads_per_sec: 2.0,
        writes_per_sec: 0.05, // Rare updates keep invalidation honest.
        writer_fraction: 0.02,
        // Nearly all point reads (the proof path the caches serve), a
        // sliver of computed filters and verified chunk streams.
        mix: QueryMix {
            get: 80,
            range: 0,
            filter: 5,
            aggregate: 0,
            join: 0,
            grep: 0,
            read_file: 10,
            stream: 5,
            scan: 0,
            scan_len: 0,
        },
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(20);
    spec.grid = Grid::sweep("skew", Param::Skew, &[0.0, 0.5, 0.9, 0.99]);
    spec
}

fn range_scan() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        "range_scan",
        "Verified range reads on a 10k-row catalogue: every read is a \
         half-open ScanRange answered under a single O(log n + k) treap \
         range proof, swept from single-row scans to 256-row pages.  The \
         proof attests both membership and completeness (no row in the \
         range omitted), so the interesting curve is proof bytes and \
         verify cost per row as k grows: the log-depth skeleton is \
         amortised across the page, and wide scans approach one hash \
         per row where per-row point proofs would pay the full path \
         each time",
        SystemConfig {
            n_shards: 1,
            n_masters: 3,
            n_slaves: 3,
            n_clients: 40,
            double_check_prob: 0.01,
            audit_fraction: 0.25,
            seed: 21_001,
            ..SystemConfig::default()
        },
    );
    spec.workload = Workload {
        dataset: DatasetSpec {
            n_products: 10_000,
            n_reviews: 2_000,
            n_files: 20,
            lines_per_file: 20,
            shared_block_lines: 0,
            hot_fraction: 0.0,
            skew: 0.0,
            seed: 21_001,
        },
        reads_per_sec: 4.0,
        writes_per_sec: 0.1, // Writes move the anchor under live scans.
        writer_fraction: 0.1,
        // Scans only, plus a sliver of point gets so both proof shapes
        // share the run (and the reply cache) at every swept length.
        mix: QueryMix {
            get: 10,
            range: 0,
            filter: 0,
            aggregate: 0,
            join: 0,
            grep: 0,
            read_file: 0,
            stream: 0,
            scan: 90,
            scan_len: 0, // Swept below.
        },
        ..Workload::default()
    };
    spec.duration = SimDuration::from_secs(20);
    spec.grid = Grid::sweep("scan rows", Param::RangeLen, &[1.0, 16.0, 256.0]);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_spec_validates() {
        for name in names() {
            let spec = lookup(name).expect("registered");
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            spec.grid
                .check_applicable(&spec)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name, "spec name must match registry key");
        }
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(lookup("e99_nonsense").is_none());
    }
}
