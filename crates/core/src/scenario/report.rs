//! Machine-readable run reports.
//!
//! A [`RunReport`] is the structured result of executing a
//! [`ScenarioSpec`](super::ScenarioSpec): one [`CellReport`] per sweep
//! cell, each holding the per-seed [`RunRecord`]s, per-field
//! mean/min/max aggregates over every [`SystemStats`] scalar, and any
//! derived metrics or string annotations the experiment attaches.  The
//! whole tree serialises to JSON (`--json` on every bench binary) and
//! parses back, so downstream tooling can diff runs across commits.

use crate::stats::SystemStats;
use serde::json::{self, JsonError};
use serde::{FromJson, ToJson};

/// A captured metric time-series (seconds since start, value).
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct NamedSeries {
    /// Metric name in the simulator's registry.
    pub name: String,
    /// `(t_secs, value)` points.
    pub points: Vec<(f64, f64)>,
}

/// A mid-run statistics snapshot.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct StatsCheckpoint {
    /// When the snapshot was taken (virtual seconds).
    pub at_secs: f64,
    /// The statistics at that instant (cumulative since start).
    pub stats: SystemStats,
}

/// The result of one `(cell, seed)` execution.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct RunRecord {
    /// The base seed this run belongs to.
    pub seed: u64,
    /// The seed the world actually ran with (base mixed with the cell
    /// index, so sweep rows are uncorrelated).
    pub world_seed: u64,
    /// End-of-run statistics.
    pub stats: SystemStats,
    /// Mid-run snapshots (one per requested checkpoint).
    pub checkpoints: Vec<StatsCheckpoint>,
    /// Captured metric series.
    pub series: Vec<NamedSeries>,
}

impl RunRecord {
    /// A captured series by name.
    pub fn series(&self, name: &str) -> Option<&NamedSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The first point of a captured series (e.g. the instant of the
    /// first exclusion).
    pub fn first_point(&self, name: &str) -> Option<(f64, f64)> {
        self.series(name).and_then(|s| s.points.first().copied())
    }
}

/// Mean/min/max of one statistics field across a cell's runs.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct FieldAggregate {
    /// Field name (see [`SystemStats::numeric_fields`]).
    pub field: String,
    /// Mean across runs.
    pub mean: f64,
    /// Minimum across runs.
    pub min: f64,
    /// Maximum across runs.
    pub max: f64,
}

/// One sweep cell: coordinates, per-seed runs, and aggregates.
#[derive(Clone, Debug, Default, ToJson, FromJson)]
pub struct CellReport {
    /// Display label (experiments fill this for non-numeric rows; empty
    /// means "derive from `coords`").
    pub label: String,
    /// `(axis name, value)` coordinates of this cell in the sweep grid.
    pub coords: Vec<(String, f64)>,
    /// One record per seed.
    pub runs: Vec<RunRecord>,
    /// Mean/min/max over the runs for every statistics field.
    pub aggregates: Vec<FieldAggregate>,
    /// Derived named metrics attached by the experiment (these travel
    /// into the JSON output alongside the raw aggregates).
    pub metrics: Vec<(String, f64)>,
    /// Derived string-valued columns (e.g. a guarantee description).
    pub annotations: Vec<(String, String)>,
}

impl CellReport {
    /// A coordinate by axis name.
    pub fn coord(&self, axis: &str) -> Option<f64> {
        self.coords.iter().find(|(n, _)| n == axis).map(|&(_, v)| v)
    }

    /// An aggregate by field name.
    pub fn agg(&self, field: &str) -> Option<&FieldAggregate> {
        self.aggregates.iter().find(|a| a.field == field)
    }

    /// Mean of a field across the cell's runs (0.0 when absent).
    pub fn mean(&self, field: &str) -> f64 {
        self.agg(field).map_or(0.0, |a| a.mean)
    }

    /// A derived metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// An annotation by name.
    pub fn annotation(&self, name: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attaches a derived metric (replacing one of the same name).
    pub fn push_metric(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.metrics.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
    }

    /// Attaches a string annotation (replacing one of the same name).
    pub fn push_annotation(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        if let Some(slot) = self.annotations.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.annotations.push((name.to_string(), value));
        }
    }

    /// Computes the mean/min/max aggregates from the current runs.
    pub fn recompute_aggregates(&mut self) {
        let mut table: Vec<(String, Vec<f64>)> = Vec::new();
        for run in &self.runs {
            for (name, value) in run.stats.numeric_fields() {
                if let Some(slot) = table.iter_mut().find(|(n, _)| n == name) {
                    slot.1.push(value);
                } else {
                    table.push((name.to_string(), vec![value]));
                }
            }
        }
        self.aggregates = table
            .into_iter()
            .map(|(field, values)| {
                let n = values.len().max(1) as f64;
                FieldAggregate {
                    mean: values.iter().sum::<f64>() / n,
                    min: values.iter().copied().fold(f64::INFINITY, f64::min),
                    max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    field,
                }
            })
            .collect();
    }

    /// Display label: the explicit one, or the coordinates rendered as
    /// `a=1 b=2`.
    pub fn display_label(&self) -> String {
        if !self.label.is_empty() {
            return self.label.clone();
        }
        self.coords
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The structured result of running a scenario.
#[derive(Clone, Debug, Default, ToJson, FromJson)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Virtual run length, seconds.
    pub duration_secs: f64,
    /// The base seeds executed.
    pub seeds: Vec<u64>,
    /// One entry per sweep cell.
    pub cells: Vec<CellReport>,
}

impl RunReport {
    /// Serialises to compact JSON.
    pub fn to_json_string(&self) -> String {
        json::to_string(self)
    }

    /// Parses a report back from JSON.
    pub fn from_json_str(s: &str) -> Result<RunReport, JsonError> {
        json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_cover_every_numeric_field() {
        let stats: SystemStats =
            json::from_str(&json::to_string(&blank_stats())).expect("round-trip");
        let mut cell = CellReport::default();
        cell.runs.push(RunRecord {
            seed: 1,
            world_seed: 1,
            stats: stats.clone(),
            checkpoints: Vec::new(),
            series: Vec::new(),
        });
        cell.recompute_aggregates();
        assert_eq!(cell.aggregates.len(), stats.numeric_fields().len());
        assert!(cell.agg("reads_issued").is_some());
        assert!(cell.agg("read_latency_p99").is_some());
    }

    #[test]
    fn metrics_and_annotations_replace() {
        let mut cell = CellReport::default();
        cell.push_metric("x", 1.0);
        cell.push_metric("x", 2.0);
        assert_eq!(cell.metric("x"), Some(2.0));
        cell.push_annotation("g", "a");
        cell.push_annotation("g", "b");
        assert_eq!(cell.annotation("g"), Some("b"));
    }

    fn blank_stats() -> SystemStats {
        // Decode a fully-zero stats object from its own JSON shape: the
        // derive requires every field, so build from an empty system is
        // avoided by reusing serialisation of Default-like content.
        let text = r#"{
            "reads_issued":3,"reads_accepted":2,"reads_failed":0,
            "rejected_stale":0,"rejected_hash":0,"read_retries":0,
            "reads_sensitive":0,
            "proof_reads_issued":1,"proof_reads_accepted":1,
            "proof_reads_rejected":0,"proof_fallbacks":0,
            "proof_unsupported":0,"proof_retries":0,
            "stream_reads_issued":0,"stream_reads_accepted":0,
            "stream_chunks_verified":0,"stream_chunk_rejects":0,
            "range_proof_bytes":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "range_rows_verified":0,
            "range_scans_scattered":0,"range_stitch_rejects":0,
            "chunks_stored":0,"chunks_deduped":0,
            "chunk_logical_bytes":0,"chunk_physical_bytes":0,
            "proof_bytes":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "proof_depth":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "proof_latency":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "lies_told":1,"wrong_accepted":0,
            "dc_sent":0,"dc_mismatch":0,"dc_throttled":0,
            "discovery_immediate":0,"discovery_delayed":0,"exclusions":0,
            "reassignments":0,"audit_submitted":0,"audit_checked":0,
            "audit_cache_hits":0,"audit_mismatch":0,"audit_skipped":0,
            "writes_committed":0,"writes_denied":0,
            "writes_per_round":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "read_latency":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "write_latency":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "audit_lag":{"count":0,"mean":0,"min":0,"p50":0,"p90":0,"p99":0,"max":0},
            "audit_backlog":0,
            "churn_joins":0,"churn_leaves":0,
            "sim_events":0,"sim_queue_peak":0,"sim_queue_live":0,
            "sim_queue_slots":0,"sim_timers_cancelled":0,
            "sim_msg_bytes_logical":0,"sim_msg_bytes_resident":0,
            "snapshot_nodes_owned":0,"snapshot_nodes_shared":0,
            "master_utilisation":[0.5],"slave_utilisation":[0.25],
            "per_client":[],
            "writes_committed_per_shard":[0],"dir_lookups_per_shard":[0],
            "proof_cache_hits":0,"proof_cache_misses":0,
            "proof_cache_evictions":0,"proof_cache_invalidations":0,
            "proof_cache_bytes":0,
            "stamp_cache_hits":0,"stamp_cache_misses":0,
            "cert_cache_hits":0,"cert_cache_misses":0
        }"#;
        json::from_str(text).expect("stats literal")
    }
}
