//! Executes a [`ScenarioSpec`] across its sweep grid and seeds.

use super::report::{CellReport, NamedSeries, RunRecord, RunReport, StatsCheckpoint};
use super::spec::ScenarioSpec;
use crate::system::{System, SystemBuilder};
use sdr_sim::SimTime;

/// Inspects the finished (or checkpointed) system of one run.
///
/// Probes exist so experiments can pull out state the generic statistics
/// don't cover (evidence logs, per-master rosters, …) without giving up
/// the declarative spec.
pub type Probe<'a> = Box<dyn FnMut(&mut System, &mut RunRecord) + 'a>;

/// Like [`Probe`], but fired at each mid-run checkpoint with the
/// checkpoint's index.
pub type CheckpointProbe<'a> = Box<dyn FnMut(&mut System, usize, &mut RunRecord) + 'a>;

/// Runs a scenario: expands the grid, executes every `(cell, seed)`
/// pair, and aggregates into a [`RunReport`].
pub struct Runner<'a> {
    spec: ScenarioSpec,
    probe: Option<Probe<'a>>,
    checkpoint_probe: Option<CheckpointProbe<'a>>,
}

impl<'a> Runner<'a> {
    /// A runner over the given spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        Runner {
            spec,
            probe: None,
            checkpoint_probe: None,
        }
    }

    /// Installs an end-of-run probe.
    pub fn probe(mut self, f: impl FnMut(&mut System, &mut RunRecord) + 'a) -> Self {
        self.probe = Some(Box::new(f));
        self
    }

    /// Installs a checkpoint probe (fired after each mid-run snapshot).
    pub fn checkpoint_probe(
        mut self,
        f: impl FnMut(&mut System, usize, &mut RunRecord) + 'a,
    ) -> Self {
        self.checkpoint_probe = Some(Box::new(f));
        self
    }

    /// Executes the scenario and returns the structured report.
    pub fn run(mut self) -> Result<RunReport, String> {
        self.spec.validate()?;
        self.spec.grid.check_applicable(&self.spec)?;

        let mut report = RunReport {
            scenario: self.spec.name.clone(),
            description: self.spec.description.clone(),
            duration_secs: self.spec.duration.as_secs_f64(),
            seeds: self.spec.seeds.clone(),
            cells: Vec::new(),
        };

        for (cell_index, assignments) in self.spec.grid.cells().into_iter().enumerate() {
            // Materialise this cell's spec from the base.
            let mut cell_spec = self.spec.clone();
            let mut coords = Vec::with_capacity(assignments.len());
            for (axis, param, value) in assignments {
                param.apply(&mut cell_spec, value)?;
                coords.push((axis, value));
            }
            cell_spec
                .validate()
                .map_err(|e| format!("sweep cell {cell_index}: {e}"))?;

            let mut cell = CellReport {
                coords,
                ..CellReport::default()
            };
            for &seed in &self.spec.seeds {
                let world_seed = mix_seed(seed, cell_index);
                let record = run_one(
                    &cell_spec,
                    seed,
                    world_seed,
                    &mut self.probe,
                    &mut self.checkpoint_probe,
                );
                cell.runs.push(record);
            }
            cell.recompute_aggregates();
            report.cells.push(cell);
        }
        Ok(report)
    }
}

/// Deterministically mixes a base seed with a sweep-cell index so cells
/// draw uncorrelated randomness (SplitMix64 increment).
fn mix_seed(base: u64, cell_index: usize) -> u64 {
    base ^ (cell_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn run_one(
    spec: &ScenarioSpec,
    seed: u64,
    world_seed: u64,
    probe: &mut Option<Probe<'_>>,
    checkpoint_probe: &mut Option<CheckpointProbe<'_>>,
) -> RunRecord {
    let mut cfg = spec.config.clone();
    cfg.seed = world_seed;
    let behaviors = spec
        .behaviors
        .materialize(cfg.n_slaves * cfg.n_shards)
        .expect("validated earlier");

    let mut builder = SystemBuilder::new(cfg)
        .behaviors(behaviors)
        .workload(spec.workload.clone());
    if let Some(net) = &spec.network {
        builder = builder.network(net.build(&spec.config));
    }
    let mut sys = builder.build();

    for crash in &spec.crashes {
        sys.crash_master_at(SimTime::from_micros(crash.at.as_micros()), crash.master_rank);
    }

    let mut record = RunRecord {
        seed,
        world_seed,
        // Placeholder until the run finishes; replaced below.
        stats: sys.stats(),
        checkpoints: Vec::new(),
        series: Vec::new(),
    };

    // Checkpoints in ascending order, clipped to the duration.
    let mut checkpoints: Vec<_> = spec
        .checkpoints
        .iter()
        .copied()
        .filter(|c| c.as_micros() <= spec.duration.as_micros())
        .collect();
    checkpoints.sort_unstable();
    for (i, at) in checkpoints.into_iter().enumerate() {
        sys.run_until(SimTime::from_micros(at.as_micros()));
        record.checkpoints.push(StatsCheckpoint {
            at_secs: at.as_secs_f64(),
            stats: sys.stats(),
        });
        if let Some(probe) = checkpoint_probe.as_mut() {
            probe(&mut sys, i, &mut record);
        }
    }

    sys.run_until(SimTime::from_micros(spec.duration.as_micros()));
    record.stats = sys.stats();

    for name in &spec.capture_series {
        let points: Vec<(f64, f64)> = sys
            .world
            .metrics()
            .series(name)
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), *v))
            .collect();
        record.series.push(NamedSeries {
            name: name.clone(),
            points,
        });
    }

    if let Some(p) = probe.as_mut() {
        p(&mut sys, &mut record);
    }

    record
}
