//! The declarative scenario description: everything a run needs, as data.

use crate::config::SystemConfig;
use crate::slave::SlaveBehavior;
use crate::workload::Workload;
use sdr_sim::{LatencyModel, LinkModel, NetworkConfig, NodeId, SimDuration};
use serde::{FromJson, ToJson};

use super::sweep::Grid;

/// A serialisable latency distribution (mirrors [`LatencyModel`] with
/// named fields so it derives the JSON codecs).
#[derive(Clone, Copy, Debug, PartialEq, ToJson, FromJson)]
pub enum LatencySpec {
    /// Fixed latency.
    Fixed {
        /// One-way delivery latency.
        latency: SimDuration,
    },
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound.
        max: SimDuration,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Distribution mean.
        mean: SimDuration,
    },
    /// Log-normal parameterised by median and sigma (WAN-shaped).
    LogNormal {
        /// Median one-way latency.
        median: SimDuration,
        /// Log-space standard deviation.
        sigma: f64,
    },
}

impl LatencySpec {
    /// Converts to the simulator's model.
    pub fn to_model(self) -> LatencyModel {
        match self {
            LatencySpec::Fixed { latency } => LatencyModel::Constant(latency),
            LatencySpec::Uniform { min, max } => LatencyModel::Uniform(min, max),
            LatencySpec::Exponential { mean } => LatencyModel::Exponential(mean),
            LatencySpec::LogNormal { median, sigma } => LatencyModel::LogNormal { median, sigma },
        }
    }
}

/// A serialisable link description.
#[derive(Clone, Copy, Debug, PartialEq, ToJson, FromJson)]
pub struct LinkSpec {
    /// Latency distribution.
    pub latency: LatencySpec,
    /// Drop probability.
    pub loss: f64,
    /// Per-byte transmission delay.
    pub per_byte: SimDuration,
}

impl LinkSpec {
    /// A WAN-shaped link with the given median latency in milliseconds.
    pub fn wan_ms(median_ms: u64) -> Self {
        LinkSpec {
            latency: LatencySpec::LogNormal {
                median: SimDuration::from_millis(median_ms),
                sigma: 0.4,
            },
            loss: 0.0,
            per_byte: SimDuration::ZERO,
        }
    }

    /// A lossless fixed-latency link.
    pub fn fixed_ms(ms: u64) -> Self {
        LinkSpec {
            latency: LatencySpec::Fixed {
                latency: SimDuration::from_millis(ms),
            },
            loss: 0.0,
            per_byte: SimDuration::ZERO,
        }
    }

    /// Converts to the simulator's model.
    pub fn to_model(self) -> LinkModel {
        LinkModel {
            latency: self.latency.to_model(),
            loss: self.loss,
            per_byte: self.per_byte,
        }
    }
}

/// Role-addressed network description.
///
/// Scenario authors think in roles ("client 0 sits behind a 700 ms
/// link"), not raw node ids; [`NetworkSpec::build`] translates using the
/// deployment's deterministic node layout (masters, slaves, directory,
/// clients).
#[derive(Clone, Debug, Default, PartialEq, ToJson, FromJson)]
pub struct NetworkSpec {
    /// Link used where no override applies (`None` = the builder's
    /// default 10 ms WAN link).
    pub default_link: Option<LinkSpec>,
    /// Per-client overrides (all traffic touching that client).
    pub client_links: Vec<(usize, LinkSpec)>,
    /// Per-slave overrides.
    pub slave_links: Vec<(usize, LinkSpec)>,
    /// Per-master overrides (by rank).
    pub master_links: Vec<(usize, LinkSpec)>,
}

impl NetworkSpec {
    /// Whether any field deviates from the builder default.
    pub fn is_default(&self) -> bool {
        self == &NetworkSpec::default()
    }

    /// Checks role indexes against a configuration.  Master and slave
    /// indexes are global (shard-major), so they range over
    /// `n_shards * n_masters` and `n_shards * n_slaves`.
    pub fn validate(&self, cfg: &SystemConfig) -> Result<(), String> {
        let total_masters = cfg.n_masters * cfg.n_shards;
        let total_slaves = cfg.n_slaves * cfg.n_shards;
        for &(i, _) in &self.client_links {
            if i >= cfg.n_clients {
                return Err(format!(
                    "network.client_links: client {i} out of range (n_clients = {})",
                    cfg.n_clients
                ));
            }
        }
        for &(i, _) in &self.slave_links {
            if i >= total_slaves {
                return Err(format!(
                    "network.slave_links: slave {i} out of range (total slaves = {total_slaves})"
                ));
            }
        }
        for &(r, _) in &self.master_links {
            if r >= total_masters {
                return Err(format!(
                    "network.master_links: master {r} out of range (total masters = {total_masters})"
                ));
            }
        }
        Ok(())
    }

    /// Materialises a [`NetworkConfig`] for the node layout `cfg` implies.
    pub fn build(&self, cfg: &SystemConfig) -> NetworkConfig {
        let default = self
            .default_link
            .map(LinkSpec::to_model)
            .unwrap_or_else(|| LinkModel::wan(SimDuration::from_millis(10)));
        let mut net = NetworkConfig::new(default);
        let nm = (cfg.n_masters * cfg.n_shards) as u32;
        let ns = (cfg.n_slaves * cfg.n_shards) as u32;
        for &(r, link) in &self.master_links {
            net.set_node_link(NodeId(r as u32), link.to_model());
        }
        for &(i, link) in &self.slave_links {
            net.set_node_link(NodeId(nm + i as u32), link.to_model());
        }
        for &(i, link) in &self.client_links {
            net.set_node_link(NodeId(nm + ns + 1 + i as u32), link.to_model());
        }
        net
    }
}

/// Slave behaviour roster: a default plus per-index overrides.
#[derive(Clone, Debug, PartialEq, ToJson, FromJson)]
pub struct BehaviorSpec {
    /// Behaviour of every slave not listed in `overrides`.
    pub default: SlaveBehavior,
    /// `(slave index, behaviour)` overrides.
    pub overrides: Vec<(usize, SlaveBehavior)>,
}

impl Default for BehaviorSpec {
    fn default() -> Self {
        BehaviorSpec {
            default: SlaveBehavior::Honest,
            overrides: Vec::new(),
        }
    }
}

impl BehaviorSpec {
    /// An all-honest roster.
    pub fn honest() -> Self {
        BehaviorSpec::default()
    }

    /// A roster with the given per-index overrides over honest slaves.
    pub fn with_overrides(overrides: Vec<(usize, SlaveBehavior)>) -> Self {
        BehaviorSpec {
            default: SlaveBehavior::Honest,
            overrides,
        }
    }

    /// Expands to a per-slave vector over the *total* (shard-major)
    /// slave population, bounds-checking every override (the spec-layer
    /// mirror of [`crate::system::SystemBuilder::slave_behavior`]'s
    /// validation).
    pub fn materialize(&self, n_slaves: usize) -> Result<Vec<SlaveBehavior>, String> {
        let mut behaviors = vec![self.default; n_slaves];
        for &(i, b) in &self.overrides {
            if i >= n_slaves {
                return Err(format!(
                    "behaviors.overrides: slave index {i} out of range (n_slaves = {n_slaves})"
                ));
            }
            behaviors[i] = b;
        }
        Ok(behaviors)
    }
}

/// A scheduled master crash (fault injection).
#[derive(Clone, Copy, Debug, PartialEq, ToJson, FromJson)]
pub struct CrashSpec {
    /// When the crash fires.
    pub at: SimDuration,
    /// Which master dies, by rank.
    pub master_rank: usize,
}

/// A complete, serialisable description of an experiment run.
///
/// This is the workspace's front door: every experiment binary and
/// example fetches one of these (usually from the
/// [registry](super::registry)), optionally tweaks it, and hands it to a
/// [`Runner`](super::Runner).  `ScenarioSpec` round-trips through JSON,
/// so scenarios can be stored, diffed, and replayed.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct ScenarioSpec {
    /// Scenario name (registry key; also stamped into reports).
    pub name: String,
    /// One-line description of what the scenario demonstrates.
    pub description: String,
    /// Deployment configuration.  `config.seed` is the *base* seed; the
    /// runner mixes it with the sweep-cell index and the per-run seed so
    /// rows draw uncorrelated randomness.
    pub config: SystemConfig,
    /// Read/write workload.
    pub workload: Workload,
    /// Slave behaviour roster.
    pub behaviors: BehaviorSpec,
    /// Network topology (`None` = builder default).
    pub network: Option<NetworkSpec>,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Base seeds; the runner executes the scenario once per seed and
    /// aggregates.
    pub seeds: Vec<u64>,
    /// Mid-run instants at which statistics snapshots are taken.
    pub checkpoints: Vec<SimDuration>,
    /// Scheduled master crashes.
    pub crashes: Vec<CrashSpec>,
    /// Metric time-series (by registry name, e.g. `exclusion.at_us`) to
    /// copy into each run record.
    pub capture_series: Vec<String>,
    /// Parameter sweep; an empty grid runs a single cell.
    pub grid: Grid,
}

impl ScenarioSpec {
    /// A single-cell scenario over the given configuration with default
    /// workload, honest slaves, one seed, and a 60 s duration.
    pub fn new(name: &str, description: &str, config: SystemConfig) -> Self {
        let seed = config.seed;
        ScenarioSpec {
            name: name.to_string(),
            description: description.to_string(),
            config,
            workload: Workload::default(),
            behaviors: BehaviorSpec::honest(),
            network: None,
            duration: SimDuration::from_secs(60),
            seeds: vec![seed],
            checkpoints: Vec::new(),
            crashes: Vec::new(),
            capture_series: Vec::new(),
            grid: Grid::none(),
        }
    }

    /// Checks the whole spec (config, behaviours, network, crashes,
    /// sweep axes) and returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.config
            .validate()
            .map_err(|e| format!("{}: config: {e}", self.name))?;
        self.workload
            .validate()
            .map_err(|e| format!("{}: {e}", self.name))?;
        self.behaviors
            .materialize(self.config.n_slaves * self.config.n_shards)
            .map_err(|e| format!("{}: {e}", self.name))?;
        if let Some(net) = &self.network {
            net.validate(&self.config)
                .map_err(|e| format!("{}: {e}", self.name))?;
        }
        if self.duration == SimDuration::ZERO {
            return Err(format!("{}: duration must be positive", self.name));
        }
        if self.seeds.is_empty() {
            return Err(format!("{}: at least one seed required", self.name));
        }
        for c in &self.crashes {
            let total_masters = self.config.n_masters * self.config.n_shards;
            if c.master_rank >= total_masters {
                return Err(format!(
                    "{}: crash rank {} out of range (total masters = {total_masters})",
                    self.name, c.master_rank
                ));
            }
        }
        self.grid.validate().map_err(|e| format!("{}: {e}", self.name))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_overrides_are_bounds_checked() {
        let spec = BehaviorSpec::with_overrides(vec![(5, SlaveBehavior::Refuser { prob: 0.5 })]);
        assert!(spec.materialize(6).is_ok());
        let err = spec.materialize(5).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn network_spec_translates_roles_to_node_ids() {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 6,
            ..SystemConfig::default()
        };
        let net = NetworkSpec {
            client_links: vec![(0, LinkSpec::fixed_ms(700))],
            slave_links: vec![(1, LinkSpec::fixed_ms(5))],
            ..NetworkSpec::default()
        };
        net.validate(&cfg).unwrap();
        let built = net.build(&cfg);
        // Client 0 lives at node nm + ns + 1 = 8; slave 1 at node 4.
        assert!(built.node_overrides.contains_key(&NodeId(8)));
        assert!(built.node_overrides.contains_key(&NodeId(4)));
        let bad = NetworkSpec {
            client_links: vec![(6, LinkSpec::fixed_ms(1))],
            ..NetworkSpec::default()
        };
        assert!(bad.validate(&cfg).is_err());
    }

    #[test]
    fn spec_validation_catches_bad_writer_fraction() {
        let mut spec = ScenarioSpec::new("t", "", SystemConfig::default());
        spec.workload.writer_fraction = 1.75;
        let err = spec.validate().unwrap_err();
        assert!(err.contains("writer_fraction"), "{err}");
    }

    #[test]
    fn spec_validation_catches_bad_crash_rank() {
        let mut spec = ScenarioSpec::new("t", "", SystemConfig::default());
        spec.crashes.push(CrashSpec {
            at: SimDuration::from_secs(1),
            master_rank: 99,
        });
        assert!(spec.validate().is_err());
    }
}
