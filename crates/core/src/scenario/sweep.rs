//! Parameter sweeps: the declarative replacement for the per-bin
//! hand-rolled `for &p in &[...]` loops.
//!
//! A [`SweepAxis`] names a [`Param`] and the values it takes; a [`Grid`]
//! combines axes either as a cartesian product or zipped (for coupled
//! parameters like `max_latency` and its keep-alive period).  The runner
//! expands the grid into cells, applies each cell's parameter values to
//! a copy of the base [`ScenarioSpec`], and reports per-cell aggregates.

use super::spec::{LinkSpec, NetworkSpec, ScenarioSpec};
use crate::slave::SlaveBehavior;
use sdr_sim::SimDuration;
use serde::{FromJson, ToJson};

/// A sweepable parameter.
///
/// Values travel as `f64` (integer-valued parameters truncate), which
/// keeps axes uniform and serialisable.
#[derive(Clone, Copy, Debug, PartialEq, ToJson, FromJson)]
pub enum Param {
    /// `config.double_check_prob`.
    DoubleCheckProb,
    /// `config.audit_fraction`.
    AuditFraction,
    /// `config.sensitive_fraction`.
    SensitiveFraction,
    /// `config.read_quorum`.
    ReadQuorum,
    /// `config.max_latency`, in milliseconds.
    MaxLatencyMs,
    /// `config.keepalive_period`, in milliseconds.
    KeepaliveMs,
    /// `config.audit_slice`, in milliseconds.
    AuditSliceMs,
    /// `config.auditor_cache` (0 = off, anything else = on).
    AuditorCache,
    /// `workload.reads_per_sec`.
    ReadsPerSec,
    /// `workload.writes_per_sec`.
    WritesPerSec,
    /// Number of misbehaving slaves: replicates the first behaviour
    /// override across slave indexes `0..n`.
    LiarCount,
    /// Double-check probability override for one client
    /// (`workload.greedy_clients`).
    GreedyClientProb {
        /// Which client.
        client: usize,
    },
    /// Per-client freshness bound in milliseconds
    /// (`workload.client_max_latency`); `<= 0` removes the override.
    ClientMaxLatencyMs {
        /// Which client.
        client: usize,
    },
    /// Median WAN latency, in milliseconds, of one client's link.
    ClientLinkMs {
        /// Which client.
        client: usize,
    },
    /// Rank of the master killed by the first [`CrashSpec`](super::spec::CrashSpec).
    CrashRank,
    /// `config.proof_reads` (0 = every read pledged, anything else =
    /// static reads take the authenticated proof path).
    ProofReads,
    /// Rebuilds `workload.mix` so a fraction `v` of reads are static
    /// point lookups (`GetRow`/`ReadFile`, proof-eligible) and the rest
    /// are computed queries (pledge+audit); weights total 100.
    StaticReadFraction,
    /// `config.n_shards`: the number of master subgroups the content
    /// space is split across (each with `n_masters` masters and
    /// `n_slaves` slaves of its own).
    NShards,
    /// `config.max_write_batch`: how many queued client writes the
    /// shard's sequencer packs into one ordered round (1 = the paper's
    /// unbatched pipeline).
    WriteBatch,
    /// `workload.dataset.shared_block_lines`: lines of identical content
    /// prepended to every generated file (0 = all files unique).  Sweeps
    /// how much cross-file shared content the chunk store can dedup.
    SharedBlockLines,
    /// `workload.dataset.skew`: probability in `[0,1]` that a point
    /// read targets the dataset's hot set instead of drawing uniformly
    /// (0 = the legacy uniform sampler, byte-identically; 1 = every
    /// point read is a flash-crowd hot-key hit).
    Skew,
    /// `workload.mix.scan_len`: rows per sampled `ScanRange`, i.e. the
    /// page size `k` each single range proof must cover.  Sweeps the
    /// O(log n + k) curve from point-like scans to wide pages.
    RangeLen,
}

impl Param {
    /// Applies one swept value to a scenario.
    pub fn apply(&self, spec: &mut ScenarioSpec, v: f64) -> Result<(), String> {
        match *self {
            Param::DoubleCheckProb => spec.config.double_check_prob = v,
            Param::AuditFraction => spec.config.audit_fraction = v,
            Param::SensitiveFraction => spec.config.sensitive_fraction = v,
            Param::ReadQuorum => spec.config.read_quorum = v as usize,
            Param::MaxLatencyMs => spec.config.max_latency = ms(v),
            Param::KeepaliveMs => spec.config.keepalive_period = ms(v),
            Param::AuditSliceMs => spec.config.audit_slice = ms(v),
            Param::AuditorCache => spec.config.auditor_cache = v != 0.0,
            Param::ReadsPerSec => spec.workload.reads_per_sec = v,
            Param::WritesPerSec => spec.workload.writes_per_sec = v,
            Param::LiarCount => {
                let template = spec
                    .behaviors
                    .overrides
                    .first()
                    .map(|&(_, b)| b)
                    .ok_or_else(|| {
                        "LiarCount needs a behaviour override to replicate".to_string()
                    })?;
                let n = v as usize;
                spec.behaviors.overrides = (0..n).map(|i| (i, template)).collect();
            }
            Param::GreedyClientProb { client } => {
                upsert(&mut spec.workload.greedy_clients, client, v);
            }
            Param::ClientMaxLatencyMs { client } => {
                spec.workload.client_max_latency.retain(|&(c, _)| c != client);
                if v > 0.0 {
                    spec.workload.client_max_latency.push((client, ms(v)));
                }
            }
            Param::ClientLinkMs { client } => {
                let net = spec.network.get_or_insert_with(NetworkSpec::default);
                net.client_links.retain(|&(c, _)| c != client);
                net.client_links.push((client, LinkSpec::wan_ms(v as u64)));
            }
            Param::CrashRank => {
                let crash = spec
                    .crashes
                    .first_mut()
                    .ok_or_else(|| "CrashRank needs a crash entry to retarget".to_string())?;
                crash.master_rank = v as usize;
            }
            Param::ProofReads => spec.config.proof_reads = v != 0.0,
            Param::StaticReadFraction => {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("StaticReadFraction must be in [0,1], got {v}"));
                }
                spec.workload.mix = static_fraction_mix(v);
            }
            Param::NShards => {
                if v < 1.0 {
                    return Err(format!("NShards must be >= 1, got {v}"));
                }
                spec.config.n_shards = v as usize;
            }
            Param::WriteBatch => {
                if v < 1.0 {
                    return Err(format!("WriteBatch must be >= 1, got {v}"));
                }
                spec.config.max_write_batch = v as usize;
            }
            Param::SharedBlockLines => {
                if v < 0.0 {
                    return Err(format!("SharedBlockLines must be >= 0, got {v}"));
                }
                spec.workload.dataset.shared_block_lines = v as usize;
            }
            Param::Skew => {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("Skew must be in [0,1], got {v}"));
                }
                spec.workload.dataset.skew = v;
            }
            Param::RangeLen => {
                if v < 1.0 {
                    return Err(format!("RangeLen must be >= 1, got {v}"));
                }
                spec.workload.mix.scan_len = v as u32;
            }
        }
        Ok(())
    }

    /// Replicates the liar-count template check without mutating.
    fn needs(&self, spec: &ScenarioSpec) -> Result<(), String> {
        match self {
            Param::LiarCount if spec.behaviors.overrides.is_empty() => {
                Err("LiarCount needs a behaviour override to replicate".to_string())
            }
            Param::CrashRank if spec.crashes.is_empty() => {
                Err("CrashRank needs a crash entry to retarget".to_string())
            }
            _ => Ok(()),
        }
    }
}

fn ms(v: f64) -> SimDuration {
    SimDuration::from_micros((v * 1_000.0).round().max(0.0) as u64)
}

/// A query mix whose static share (point `get`s plus file reads, the
/// proof-eligible shapes) is `fraction` of all reads; the computed
/// remainder keeps the catalogue mix's internal proportions.  Weights
/// always total 100, so `fraction` maps exactly onto sampled odds.
fn static_fraction_mix(fraction: f64) -> crate::workload::QueryMix {
    let s = (fraction * 100.0).round() as u32;
    let c = 100 - s;
    // Static side: 4:1 gets to file reads; computed side: spread in the
    // catalogue's 10:15:10:5:7 proportions (range:filter:agg:join:grep),
    // remainder to filters.
    let range = c * 10 / 47;
    let aggregate = c * 10 / 47;
    let join = c * 5 / 47;
    let grep = c * 7 / 47;
    let filter = c - range - aggregate - join - grep;
    crate::workload::QueryMix {
        get: s * 4 / 5,
        read_file: s - s * 4 / 5,
        range,
        filter,
        aggregate,
        join,
        grep,
        stream: 0,
        scan: 0,
        scan_len: 0,
    }
}

fn upsert(list: &mut Vec<(usize, f64)>, key: usize, v: f64) {
    if let Some(slot) = list.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = v;
    } else {
        list.push((key, v));
    }
}

/// One swept dimension: a display name, a parameter, and its values.
#[derive(Clone, Debug, PartialEq, ToJson, FromJson)]
pub struct SweepAxis {
    /// Coordinate name in reports (`"p"`, `"audit fraction"`, …).
    pub name: String,
    /// What the values mean.
    pub param: Param,
    /// The values the axis takes.
    pub values: Vec<f64>,
}

impl SweepAxis {
    /// Builds an axis.
    pub fn new(name: &str, param: Param, values: &[f64]) -> Self {
        SweepAxis {
            name: name.to_string(),
            param,
            values: values.to_vec(),
        }
    }
}

/// How a multi-axis grid combines its axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, ToJson, FromJson)]
pub enum GridMode {
    /// Every combination of axis values (the usual sweep).
    Cartesian,
    /// Axis values advance in lock-step (for coupled parameters); all
    /// axes must have the same length.
    Zip,
}

/// A parameter grid: zero or more sweep axes plus a combination mode.
#[derive(Clone, Debug, PartialEq, ToJson, FromJson)]
pub struct Grid {
    /// The swept dimensions (empty = one unswept cell).
    pub axes: Vec<SweepAxis>,
    /// Combination mode.
    pub mode: GridMode,
}

impl Default for Grid {
    fn default() -> Self {
        Grid::none()
    }
}

impl Grid {
    /// No sweep: a single cell with the base spec.
    pub fn none() -> Self {
        Grid {
            axes: Vec::new(),
            mode: GridMode::Cartesian,
        }
    }

    /// A one-axis sweep.
    pub fn sweep(name: &str, param: Param, values: &[f64]) -> Self {
        Grid {
            axes: vec![SweepAxis::new(name, param, values)],
            mode: GridMode::Cartesian,
        }
    }

    /// A cartesian product of axes.
    pub fn cartesian(axes: Vec<SweepAxis>) -> Self {
        Grid {
            axes,
            mode: GridMode::Cartesian,
        }
    }

    /// Zipped (lock-step) axes.
    pub fn zip(axes: Vec<SweepAxis>) -> Self {
        Grid {
            axes,
            mode: GridMode::Zip,
        }
    }

    /// Structural checks: non-empty axes, equal lengths under zip.
    pub fn validate(&self) -> Result<(), String> {
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(format!("sweep axis `{}` has no values", axis.name));
            }
        }
        if self.mode == GridMode::Zip {
            if let Some(first) = self.axes.first() {
                let n = first.values.len();
                for axis in &self.axes[1..] {
                    if axis.values.len() != n {
                        return Err(format!(
                            "zip grid axes must have equal lengths ({} has {}, `{}` has {})",
                            first.name,
                            n,
                            axis.name,
                            axis.values.len()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Expands into cells: each cell is the `(axis name, param, value)`
    /// assignments to apply to the base spec.  An empty grid yields one
    /// empty cell.
    pub fn cells(&self) -> Vec<Vec<(String, Param, f64)>> {
        if self.axes.is_empty() {
            return vec![Vec::new()];
        }
        match self.mode {
            GridMode::Zip => {
                let n = self.axes.first().map_or(0, |a| a.values.len());
                (0..n)
                    .map(|i| {
                        self.axes
                            .iter()
                            .map(|a| (a.name.clone(), a.param, a.values[i]))
                            .collect()
                    })
                    .collect()
            }
            GridMode::Cartesian => {
                let mut cells: Vec<Vec<(String, Param, f64)>> = vec![Vec::new()];
                for axis in &self.axes {
                    let mut next = Vec::with_capacity(cells.len() * axis.values.len());
                    for prefix in &cells {
                        for &v in &axis.values {
                            let mut cell = prefix.clone();
                            cell.push((axis.name.clone(), axis.param, v));
                            next.push(cell);
                        }
                    }
                    cells = next;
                }
                cells
            }
        }
    }

    /// Pre-checks that every axis parameter can apply to `spec`.
    pub fn check_applicable(&self, spec: &ScenarioSpec) -> Result<(), String> {
        for axis in &self.axes {
            axis.param.needs(spec)?;
        }
        Ok(())
    }
}

/// Convenience: the behaviour override template liar sweeps replicate.
pub fn liar_template(prob: f64, collude: bool) -> SlaveBehavior {
    SlaveBehavior::ConsistentLiar { prob, collude }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn base() -> ScenarioSpec {
        ScenarioSpec::new("t", "", SystemConfig::default())
    }

    #[test]
    fn empty_grid_is_one_cell() {
        assert_eq!(Grid::none().cells(), vec![Vec::new()]);
    }

    #[test]
    fn cartesian_expands_all_combinations() {
        let g = Grid::cartesian(vec![
            SweepAxis::new("a", Param::DoubleCheckProb, &[0.1, 0.2]),
            SweepAxis::new("b", Param::ReadQuorum, &[1.0, 2.0, 3.0]),
        ]);
        let cells = g.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0][0].2, 0.1);
        assert_eq!(cells[5][1].2, 3.0);
    }

    #[test]
    fn zip_advances_in_lockstep() {
        let g = Grid::zip(vec![
            SweepAxis::new("ml", Param::MaxLatencyMs, &[250.0, 500.0]),
            SweepAxis::new("ka", Param::KeepaliveMs, &[62.5, 125.0]),
        ]);
        let cells = g.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1][0].2, 500.0);
        assert_eq!(cells[1][1].2, 125.0);
        let bad = Grid::zip(vec![
            SweepAxis::new("a", Param::MaxLatencyMs, &[1.0]),
            SweepAxis::new("b", Param::KeepaliveMs, &[1.0, 2.0]),
        ]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn params_apply() {
        let mut spec = base();
        Param::DoubleCheckProb.apply(&mut spec, 0.25).unwrap();
        assert_eq!(spec.config.double_check_prob, 0.25);
        Param::MaxLatencyMs.apply(&mut spec, 1500.0).unwrap();
        assert_eq!(spec.config.max_latency, SimDuration::from_millis(1500));
        Param::AuditorCache.apply(&mut spec, 0.0).unwrap();
        assert!(!spec.config.auditor_cache);
        Param::ClientLinkMs { client: 2 }.apply(&mut spec, 700.0).unwrap();
        assert_eq!(spec.network.as_ref().unwrap().client_links.len(), 1);
        // Fractional milliseconds survive (62.5 ms = 62_500 us).
        Param::KeepaliveMs.apply(&mut spec, 62.5).unwrap();
        assert_eq!(spec.config.keepalive_period, SimDuration::from_micros(62_500));
    }

    #[test]
    fn liar_count_replicates_template() {
        let mut spec = base();
        spec.behaviors.overrides = vec![(0, liar_template(0.3, true))];
        Param::LiarCount.apply(&mut spec, 3.0).unwrap();
        assert_eq!(spec.behaviors.overrides.len(), 3);
        assert_eq!(spec.behaviors.overrides[2].0, 2);
        let mut empty = base();
        assert!(Param::LiarCount.apply(&mut empty, 2.0).is_err());
    }

    #[test]
    fn static_fraction_mix_totals_100_and_tracks_fraction() {
        for v in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let mut spec = base();
            Param::StaticReadFraction.apply(&mut spec, v).unwrap();
            let m = spec.workload.mix;
            let total = m.get
                + m.range
                + m.filter
                + m.aggregate
                + m.join
                + m.grep
                + m.read_file
                + m.stream;
            assert_eq!(total, 100, "fraction {v}");
            let static_weight = m.get + m.read_file;
            assert_eq!(static_weight, (v * 100.0).round() as u32, "fraction {v}");
        }
        let mut spec = base();
        assert!(Param::StaticReadFraction.apply(&mut spec, 1.5).is_err());
    }

    #[test]
    fn n_shards_applies_and_rejects_zero() {
        let mut spec = base();
        Param::NShards.apply(&mut spec, 4.0).unwrap();
        assert_eq!(spec.config.n_shards, 4);
        assert!(Param::NShards.apply(&mut spec, 0.0).is_err());
    }

    #[test]
    fn write_batch_applies_and_rejects_zero() {
        let mut spec = base();
        Param::WriteBatch.apply(&mut spec, 8.0).unwrap();
        assert_eq!(spec.config.max_write_batch, 8);
        assert!(Param::WriteBatch.apply(&mut spec, 0.0).is_err());
    }

    #[test]
    fn shared_block_lines_applies_and_rejects_negative() {
        let mut spec = base();
        Param::SharedBlockLines.apply(&mut spec, 120.0).unwrap();
        assert_eq!(spec.workload.dataset.shared_block_lines, 120);
        Param::SharedBlockLines.apply(&mut spec, 0.0).unwrap();
        assert_eq!(spec.workload.dataset.shared_block_lines, 0);
        assert!(Param::SharedBlockLines.apply(&mut spec, -1.0).is_err());
    }

    #[test]
    fn skew_applies_and_rejects_out_of_range() {
        let mut spec = base();
        Param::Skew.apply(&mut spec, 0.9).unwrap();
        assert_eq!(spec.workload.dataset.skew, 0.9);
        assert!(Param::Skew.apply(&mut spec, 1.5).is_err());
        assert!(Param::Skew.apply(&mut spec, -0.1).is_err());
    }

    #[test]
    fn proof_reads_toggle() {
        let mut spec = base();
        Param::ProofReads.apply(&mut spec, 0.0).unwrap();
        assert!(!spec.config.proof_reads);
        Param::ProofReads.apply(&mut spec, 1.0).unwrap();
        assert!(spec.config.proof_reads);
    }

    #[test]
    fn client_max_latency_zero_removes_override() {
        let mut spec = base();
        Param::ClientMaxLatencyMs { client: 0 }.apply(&mut spec, 6000.0).unwrap();
        assert_eq!(spec.workload.client_max_latency.len(), 1);
        Param::ClientMaxLatencyMs { client: 0 }.apply(&mut spec, 0.0).unwrap();
        assert!(spec.workload.client_max_latency.is_empty());
    }
}
