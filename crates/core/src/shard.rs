//! Sharding of the content space across master subgroups.
//!
//! One master group with one totally-ordered write queue caps commit
//! throughput at `1 / max_latency` no matter how many replicas exist —
//! the spacing rule is per-queue.  Sharding splits the key/path space
//! into `n_shards` contiguous slices, each owned by its *own* master
//! subgroup with its own sequencer, write queue, digest stamps, slave
//! set, and elected auditor.  Every message still flows inside exactly
//! one shard, so each shard independently carries the paper's full
//! trust argument, and aggregate commit throughput grows with shard
//! count.
//!
//! [`ShardMap`] is the pure routing function shared by the builder
//! (data placement), the clients (request routing), and the tests (the
//! oracle).  It is deterministic, derived only from the deployment
//! configuration, and collapses to the identity (everything in shard 0)
//! when `n_shards == 1`.

use crate::dataset::DatasetSpec;
use sdr_store::{Query, UpdateOp};

/// Deterministic routing of rows, paths, queries, and write batches to
/// shards.
///
/// * Rows are split into contiguous primary-key ranges over the
///   catalogue span (`1..=row_span`); keys past the span clamp into the
///   last shard, so routing is total.
/// * Generated files (`…/file-NNN…`) are split into contiguous ranges
///   over their ordinal; paths without an ordinal fall back to a stable
///   FNV-1a hash, keeping routing total without randomness.
/// * Computed queries with no single routing key (filters, aggregates,
///   joins, greps) are owned by the shard their *table or prefix* hashes
///   to: their results are shard-local, and the owning shard's masters
///   re-execute them against the same shard replica during double-checks
///   and audits, so verification stays exact.
///
/// Two routing caveats are deliberate and documented rather than
/// papered over (cross-shard reads/transactions are open ROADMAP
/// items):
///
/// * A **range** query is owned by the shard of its *lower* bound; a
///   range crossing a shard boundary honestly returns (and verifies
///   against) only the owning shard's slice of it.
/// * Keyed routing assumes the table is keyed in the catalogue's
///   primary-key space.  The `reviews` table is *placed* by the product
///   each row references (keeping joins shard-local), so a keyed
///   `reviews` operation may land on a shard that does not hold that
///   row and fail honestly (reads get a verifiable shard-local absence
///   proof).  The built-in workloads only reach reviews through joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n_shards: usize,
    row_span: u64,
    file_span: u64,
}

/// FNV-1a — a stable, seedless hash (std's `DefaultHasher` is randomly
/// keyed and would break run-to-run determinism).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Trailing-ordinal extraction: the last run of ASCII digits in `path`
/// (e.g. `/docs/file-017.log` → 17).
fn path_ordinal(path: &str) -> Option<u64> {
    let bytes = path.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !bytes[end - 1].is_ascii_digit() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && bytes[start - 1].is_ascii_digit() {
        start -= 1;
    }
    if start == end {
        return None;
    }
    path[start..end].parse().ok()
}

impl ShardMap {
    /// Builds the map for a deployment: `n_shards` contiguous slices
    /// over the dataset's row and file spans.
    pub fn new(n_shards: usize, dataset: &DatasetSpec) -> Self {
        ShardMap {
            n_shards: n_shards.max(1),
            row_span: dataset.n_products.max(1) as u64,
            file_span: dataset.n_files.max(1) as u64,
        }
    }

    /// The single-shard (identity) map.
    pub fn single() -> Self {
        ShardMap {
            n_shards: 1,
            row_span: 1,
            file_span: 1,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Contiguous split of ordinal `i` over span `span`.
    fn contiguous(&self, i: u64, span: u64) -> usize {
        let i = i.min(span - 1);
        ((i as u128 * self.n_shards as u128) / span as u128) as usize
    }

    /// Owning shard of a row (primary key; keys start at 1 in the
    /// generated catalogue, keys past the span clamp to the last shard).
    pub fn shard_of_row(&self, key: u64) -> usize {
        self.contiguous(key.saturating_sub(1), self.row_span)
    }

    /// First primary key owned by shard `s` (keys are 1-based).  Shards
    /// past the last return `u64::MAX`, making it a convenient exclusive
    /// upper bound for the last shard's slice.
    pub fn first_row(&self, s: usize) -> u64 {
        if s == 0 {
            return 1;
        }
        if s >= self.n_shards {
            return u64::MAX;
        }
        ((s as u128 * self.row_span as u128).div_ceil(self.n_shards as u128)) as u64 + 1
    }

    /// Splits a half-open key range `[start, end)` at shard boundaries
    /// into per-shard sub-ranges `(shard, sub_start, sub_end)`, ascending
    /// in both shard and key order.  The sub-ranges partition the input
    /// exactly — no gaps, no overlaps — which is what lets a client
    /// scatter a scan, verify each piece against its own shard's digest,
    /// and stitch the results back into one verified answer.
    pub fn split_scan(&self, start: u64, end: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let mut lo = start;
        while lo < end {
            let s = self.shard_of_row(lo);
            let hi = end.min(self.first_row(s + 1));
            out.push((s, lo, hi));
            lo = hi;
        }
        out
    }

    /// Owning shard of a file path.
    pub fn shard_of_path(&self, path: &str) -> usize {
        match path_ordinal(path) {
            Some(ord) => self.contiguous(ord, self.file_span),
            None => (fnv1a(path.as_bytes()) % self.n_shards as u64) as usize,
        }
    }

    /// Owning shard of a table-level (non-keyed) operation or query.
    pub fn shard_of_table(&self, table: &str) -> usize {
        (fnv1a(table.as_bytes()) % self.n_shards as u64) as usize
    }

    /// Owning shard of a query: the shard whose replica can answer it
    /// and whose masters will re-execute it during verification.  See
    /// the module docs for the range and foreign-key-placed-table
    /// caveats.
    pub fn shard_of_query(&self, q: &Query) -> usize {
        match q {
            Query::GetRow { key, .. } => self.shard_of_row(*key),
            Query::Range { low, .. } => self.shard_of_row(*low),
            // A `ScanRange` reaching a single shard is owned by its lower
            // bound; clients split multi-shard scans with
            // [`ShardMap::split_scan`] before routing.
            Query::ScanRange { start, .. } => self.shard_of_row(*start),
            Query::ReadFile { path } | Query::ReadFileRange { path, .. } => {
                self.shard_of_path(path)
            }
            Query::Filter { table, .. } | Query::Aggregate { table, .. } => {
                self.shard_of_table(table)
            }
            Query::Join { left, .. } => self.shard_of_table(left),
            Query::Grep { prefix, .. } | Query::ListFiles { prefix } => {
                self.shard_of_table(prefix)
            }
        }
    }

    /// Owning shard of one update operation.
    pub fn shard_of_op(&self, op: &UpdateOp) -> usize {
        match op {
            UpdateOp::Insert { key, .. }
            | UpdateOp::Upsert { key, .. }
            | UpdateOp::Update { key, .. }
            | UpdateOp::Delete { key, .. } => self.shard_of_row(*key),
            UpdateOp::WriteFile { path, .. }
            | UpdateOp::AppendFile { path, .. }
            | UpdateOp::DeleteFile { path } => self.shard_of_path(path),
            // Schema changes are deployment-time operations; route them
            // to shard 0 (cross-shard DDL is future work).
            UpdateOp::CreateTable { .. } => 0,
        }
    }

    /// Owning shard of a write batch: the first operation decides; a
    /// batch whose remaining operations live elsewhere fails honestly at
    /// the owning shard's replica (cross-shard transactions are an open
    /// ROADMAP item).
    pub fn shard_of_ops(&self, ops: &[UpdateOp]) -> usize {
        ops.first().map_or(0, |op| self.shard_of_op(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_store::Document;

    fn map(n: usize) -> ShardMap {
        ShardMap::new(n, &DatasetSpec::default()) // 500 products, 40 files
    }

    #[test]
    fn single_shard_is_identity() {
        let m = map(1);
        for key in [1, 250, 500, 10_000] {
            assert_eq!(m.shard_of_row(key), 0);
        }
        assert_eq!(m.shard_of_path("/docs/file-039.log"), 0);
        assert_eq!(m.shard_of_table("products"), 0);
    }

    #[test]
    fn row_ranges_are_contiguous_and_balanced() {
        let m = map(4);
        let mut counts = [0usize; 4];
        let mut last = 0usize;
        for key in 1..=500u64 {
            let s = m.shard_of_row(key);
            assert!(s >= last, "shards must be contiguous in key order");
            last = s;
            counts[s] += 1;
        }
        assert_eq!(counts, [125, 125, 125, 125]);
        // Keys past the span clamp to the last shard.
        assert_eq!(m.shard_of_row(1_000_000), 3);
        assert_eq!(m.shard_of_row(0), 0);
    }

    #[test]
    fn file_ranges_are_contiguous_and_hash_fallback_is_total() {
        let m = map(4);
        let mut last = 0usize;
        for f in 0..40u64 {
            let s = m.shard_of_path(&format!("/docs/file-{f:03}.log"));
            assert!(s >= last);
            last = s;
        }
        assert_eq!(last, 3, "last file lands in the last shard");
        // No ordinal: stable hash, still in range.
        let s = m.shard_of_path("/readme");
        assert!(s < 4);
        assert_eq!(s, m.shard_of_path("/readme"));
    }

    #[test]
    fn split_scan_partitions_exactly_at_shard_boundaries() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            let m = map(n);
            // first_row agrees with shard_of_row as an oracle.
            for s in 0..n {
                let f = m.first_row(s);
                assert_eq!(m.shard_of_row(f), s);
                if f > 1 {
                    assert_eq!(m.shard_of_row(f - 1), s - 1);
                }
            }
            assert_eq!(m.first_row(n), u64::MAX);
            for (start, end) in [(1u64, 501), (0, 10), (120, 130), (100, 400), (7, 7), (490, 600)] {
                let parts = m.split_scan(start, end);
                // Exact partition: contiguous, ordered, covering.
                let mut cursor = start;
                for &(s, lo, hi) in &parts {
                    assert_eq!(lo, cursor);
                    assert!(hi > lo);
                    cursor = hi;
                    // Every key in the sub-range routes to its shard.
                    assert_eq!(m.shard_of_row(lo), s);
                    assert_eq!(m.shard_of_row(hi - 1), s);
                }
                if start >= end {
                    assert!(parts.is_empty());
                } else {
                    assert_eq!(cursor, end);
                }
                // Routing of a single-shard sub-scan agrees with the map.
                for &(s, lo, hi) in &parts {
                    let q = Query::ScanRange {
                        table: "products".into(),
                        start: lo,
                        end: hi,
                    };
                    assert_eq!(m.shard_of_query(&q), s);
                }
            }
        }
    }

    #[test]
    fn query_and_op_routing_agree_on_keys() {
        let m = map(8);
        for key in [1u64, 77, 301, 499] {
            let q = Query::GetRow {
                table: "products".into(),
                key,
            };
            let op = UpdateOp::Update {
                table: "products".into(),
                key,
                changes: Document::new().with("price", 1i64),
            };
            assert_eq!(m.shard_of_query(&q), m.shard_of_op(&op));
        }
        let q = Query::ReadFile {
            path: "/docs/file-012.log".into(),
        };
        let op = UpdateOp::AppendFile {
            path: "/docs/file-012.log".into(),
            contents: "x".into(),
        };
        assert_eq!(m.shard_of_query(&q), m.shard_of_op(&op));
    }

    #[test]
    fn batch_routing_follows_first_op() {
        let m = map(2);
        let ops = vec![
            UpdateOp::Update {
                table: "products".into(),
                key: 499,
                changes: Document::new().with("stock", 0i64),
            },
            UpdateOp::Update {
                table: "products".into(),
                key: 1,
                changes: Document::new().with("stock", 0i64),
            },
        ];
        assert_eq!(m.shard_of_ops(&ops), m.shard_of_row(499));
        assert_eq!(m.shard_of_ops(&[]), 0);
    }
}
