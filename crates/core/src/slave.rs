//! Slave servers: marginally-trusted replicas with behaviour models.
//!
//! Honest slaves execute queries over their replica, sign pledges, apply
//! lazy state updates in order, and self-gate when out of sync (Section 3).
//! Byzantine behaviour is a pluggable [`SlaveBehavior`]:
//!
//! * [`SlaveBehavior::ConsistentLiar`] — the dangerous attacker: corrupts
//!   the result *and pledges the corrupted hash*, so the client's hash
//!   check passes and only double-checking or auditing can catch it.
//! * [`SlaveBehavior::InconsistentLiar`] — a sloppy attacker whose pledge
//!   hash does not match the shipped result; clients reject instantly.
//! * [`SlaveBehavior::StaleServer`] — stops applying state updates but
//!   keeps answering with fresh stamps (detected by the audit because the
//!   pledged version's correct state no longer matches its answers).
//! * [`SlaveBehavior::Refuser`] — denial of service: claims to be out of
//!   sync with some probability.

use crate::config::SystemConfig;
use crate::messages::{Msg, RefuseReason, StateDigestStamp, VersionStamp};
use crate::pledge::{Pledge, ResultHash};
use sdr_crypto::{Digest, Hash256, PublicKey, Sha256, Signer};
use sdr_sim::{Ctx, NodeId, Payload, Process, SimTime};
use sdr_store::fsview::GrepMatch;
use sdr_store::{
    execute, Database, Document, LruByteCache, Query, QueryResult, StateProof, StreamProof,
    UpdateOp, Value,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Wrong-answer machinery shared by the pledge and proof read paths: a
/// liar corrupts the shipped result (and on the pledge path may also
/// pledge the corrupted hash); the proof path always ships the *honest*
/// proof because forging one against the signed digest would need a
/// hash collision — which is exactly why proof-read lies die at the
/// client instead of waiting for the auditor.
fn apply_lie_behavior(
    behavior: SlaveBehavior,
    ctx: &mut Ctx<'_, Msg>,
    result: &QueryResult,
) -> Option<QueryResult> {
    match behavior {
        SlaveBehavior::ConsistentLiar { prob, collude } if ctx.coin() < prob => {
            let salt = if collude { 0 } else { u64::from(ctx.id().0) };
            Some(corrupt(result, salt))
        }
        SlaveBehavior::InconsistentLiar { prob } if ctx.coin() < prob => {
            Some(corrupt(result, 1))
        }
        _ => None,
    }
}

/// Behaviour model of a slave.
#[derive(Clone, Copy, Debug, PartialEq, serde::ToJson, serde::FromJson)]
pub enum SlaveBehavior {
    /// Follows the protocol.
    Honest,
    /// With probability `prob`, returns a corrupted result with a
    /// self-consistent pledge (hash matches the corrupted result).
    ///
    /// When `collude` is true, every colluding liar forges the *same*
    /// wrong answer (salt 0), which is what defeating the quorum-read
    /// variant requires; otherwise each liar corrupts with its own salt.
    ConsistentLiar {
        /// Lie probability per read.
        prob: f64,
        /// Forge identically to other colluders.
        collude: bool,
    },
    /// With probability `prob`, ships a corrupted result but pledges the
    /// hash of the *correct* one.
    InconsistentLiar {
        /// Lie probability per read.
        prob: f64,
    },
    /// Applies keep-alive stamps but silently drops state updates once the
    /// version reaches `freeze_at`, serving stale data with fresh stamps.
    StaleServer {
        /// Version after which updates are ignored.
        freeze_at: u64,
    },
    /// With probability `prob`, falsely claims to be out of sync.
    Refuser {
        /// Refusal probability per read.
        prob: f64,
    },
}

impl SlaveBehavior {
    /// Whether this behaviour ever produces wrong answers.
    pub fn is_malicious(&self) -> bool {
        !matches!(self, SlaveBehavior::Honest)
    }
}

/// Deterministically corrupts a query result (the lie a malicious slave
/// tells).  Guaranteed to differ from the input under the canonical
/// encoding; different `salt` values produce different forgeries, so
/// independent (non-colluding) liars disagree with each other too.
pub fn corrupt(result: &QueryResult, salt: u64) -> QueryResult {
    let s = salt as i64 + 1;
    match result {
        QueryResult::Rows(rows) => {
            let mut rows = rows.clone();
            if rows.is_empty() {
                rows.push((u64::MAX, Document::new().with("forged", s)));
            } else {
                rows.pop();
                rows.push((u64::MAX - 1, Document::new().with("forged", s)));
            }
            QueryResult::Rows(rows)
        }
        QueryResult::Scalar(v) => QueryResult::Scalar(match v {
            Value::Int(i) => Value::Int(i.wrapping_add(s)),
            Value::Float(f) => Value::Float(f + s as f64),
            _ => Value::Int(666 + s),
        }),
        QueryResult::Groups(groups) => {
            let mut groups = groups.clone();
            match groups.first_mut() {
                Some((_, v)) => {
                    *v = match v {
                        Value::Int(i) => Value::Int(i.wrapping_add(s)),
                        Value::Float(f) => Value::Float(*f + s as f64),
                        _ => Value::Int(666 + s),
                    }
                }
                None => groups.push((Value::Null, Value::Int(666 + s))),
            }
            QueryResult::Groups(groups)
        }
        QueryResult::Text(t) => QueryResult::Text(Some(format!(
            "{}[tampered:{salt}]",
            t.clone().unwrap_or_default()
        ))),
        QueryResult::Matches(ms) => {
            let mut ms = ms.clone();
            if ms.is_empty() {
                ms.push(GrepMatch {
                    path: format!("/forged-{salt}"),
                    line: 1,
                    text: "forged".into(),
                });
            } else {
                ms.pop();
            }
            QueryResult::Matches(ms)
        }
        QueryResult::Paths(ps) => {
            let mut ps = ps.clone();
            if ps.is_empty() {
                ps.push(format!("/forged-{salt}"));
            } else {
                ps.pop();
            }
            QueryResult::Paths(ps)
        }
    }
}

/// A slave server process.
pub struct SlaveProcess {
    cfg: SystemConfig,
    db: Database,
    behavior: SlaveBehavior,
    signer: Box<dyn Signer>,
    master_keys: HashMap<NodeId, PublicKey>,
    latest_stamp: Option<VersionStamp>,
    /// Freshest master-signed digest stamp that matches this replica's
    /// *applied* state — the anchor served with proof reads.  Deliberately
    /// absent while the replica lags: a correct slave refuses proof reads
    /// it cannot anchor, and a stale server's anchor ages out.
    latest_digest_stamp: Option<StateDigestStamp>,
    last_keepalive_at: SimTime,
    /// Buffered out-of-order updates, keyed by version.  The digest
    /// stamp is `None` for intermediate versions of a batch: the master
    /// signs one anchor — the batch's final version — so only that run
    /// carries a provable digest.
    pending_updates: BTreeMap<u64, (Vec<UpdateOp>, VersionStamp, Option<StateDigestStamp>)>,
    excluded: bool,
    /// Earliest time the next sync request may be sent (rate limit: the
    /// simulated network reorders packets, so most gaps heal by
    /// themselves; only persistent gaps are worth a replay).
    sync_cooldown_until: SimTime,
    /// Highest version this slave consumed-but-dropped (StaleServer only);
    /// keeps gap detection from re-requesting updates it chose to ignore.
    dropped_up_to: u64,
    /// Result-hash bytes of every lie told (joined post-run against client
    /// acceptance logs to measure wrong-accepted reads — the ground-truth
    /// oracle described in DESIGN.md).
    lies_told: HashSet<Vec<u8>>,
    reads_served: u64,
    /// Hot-read fast path: honest `ProofReadReply` payloads memoized per
    /// `(anchor stamp, query)` as shared allocations, so a flash crowd
    /// reading one hot key costs one proof build plus N pointer bumps.
    /// Wiped wholesale whenever the anchor or the replica state changes.
    reply_cache: LruByteCache<Arc<Msg>>,
    /// Same for `StreamProof` headers, keyed by `(anchor stamp, path)`
    /// (chunk payloads are per-request and stay uncached).
    stream_proof_cache: LruByteCache<StreamProof>,
}

impl SlaveProcess {
    /// Creates a slave starting from `db` with the given behaviour.
    pub fn new(
        cfg: SystemConfig,
        db: Database,
        behavior: SlaveBehavior,
        signer: Box<dyn Signer>,
        master_keys: HashMap<NodeId, PublicKey>,
    ) -> Self {
        let budget = cfg.proof_cache_bytes;
        SlaveProcess {
            cfg,
            db,
            behavior,
            signer,
            master_keys,
            latest_stamp: None,
            latest_digest_stamp: None,
            last_keepalive_at: SimTime::ZERO,
            pending_updates: BTreeMap::new(),
            excluded: false,
            sync_cooldown_until: SimTime::ZERO,
            dropped_up_to: 0,
            lies_told: HashSet::new(),
            reads_served: 0,
            reply_cache: LruByteCache::new(budget),
            stream_proof_cache: LruByteCache::new(budget),
        }
    }

    /// The slave's verification key.
    pub fn public_key(&self) -> PublicKey {
        self.signer.public_key()
    }

    /// Result hashes of lies told so far (test/stats oracle).
    pub fn lies_told(&self) -> &HashSet<Vec<u8>> {
        &self.lies_told
    }

    /// Number of reads served.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Current replica version (test inspection).
    pub fn version(&self) -> u64 {
        self.db.version()
    }

    /// State digest (test inspection).
    pub fn state_digest(&self) -> sdr_crypto::Hash256 {
        self.db.state_digest()
    }

    /// Whether this slave has been excluded.
    pub fn is_excluded(&self) -> bool {
        self.excluded
    }

    /// Bytes currently held by the hot-read caches (stats gauge).
    pub fn cache_bytes(&self) -> u64 {
        (self.reply_cache.bytes() + self.stream_proof_cache.bytes()) as u64
    }

    /// Cache key of a memoized proof reply: the anchor stamp's version,
    /// timestamp, *and* digest plus the query encoding.  Version alone
    /// would suffice given wholesale invalidation; the timestamp makes a
    /// keep-alive refresh (same version, newer stamp) miss by
    /// construction, and the digest is belt-and-braces against any
    /// anchor/state divergence.
    fn proof_reply_key(anchor: &StateDigestStamp, query: &Query) -> Hash256 {
        Sha256::digest_parts(&[
            b"sdr/proof-reply/v1",
            &anchor.version.to_be_bytes(),
            &anchor.timestamp.as_micros().to_be_bytes(),
            anchor.digest.as_ref(),
            &query.encode(),
        ])
    }

    /// Cache key of a memoized stream-proof header (same anchor binding
    /// as [`Self::proof_reply_key`], path plus *chunk window* instead of
    /// a query).  A slice header depends only on which chunk-table rows
    /// the byte range overlaps, so keying on the window — not the raw
    /// `(offset, len)` — lets every read landing in the same chunks
    /// share one cached header.  `(u64::MAX, u64::MAX)` keys the
    /// absent-file header.
    fn stream_proof_key(anchor: &StateDigestStamp, path: &str, window: (u64, u64)) -> Hash256 {
        Sha256::digest_parts(&[
            b"sdr/stream-proof/v2",
            &anchor.version.to_be_bytes(),
            &anchor.timestamp.as_micros().to_be_bytes(),
            anchor.digest.as_ref(),
            &window.0.to_be_bytes(),
            &window.1.to_be_bytes(),
            path.as_bytes(),
        ])
    }

    /// Wipes both hot-read caches.  Called whenever the proof-read anchor
    /// moves (any newer digest stamp, including same-version keep-alive
    /// refreshes) *and* whenever the replica applies a write — the latter
    /// covers the gap where the database advances but the accompanying
    /// digest stamp is rejected, which would otherwise leave cached
    /// replies proving a state the replica no longer has.
    fn invalidate_caches(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.reply_cache.is_empty() || !self.stream_proof_cache.is_empty() {
            ctx.metrics().inc("slave.proof_cache_invalidate");
        }
        self.reply_cache.clear();
        self.stream_proof_cache.clear();
    }

    /// The proof-read anchor this replica currently serves under
    /// (test/stats inspection).
    pub fn digest_anchor(&self) -> Option<&StateDigestStamp> {
        self.latest_digest_stamp.as_ref()
    }

    /// Test hook: plant an arbitrary payload in the proof-reply cache
    /// under the current anchor — models a Byzantine slave poisoning its
    /// own cache.  No-op while the slave has no anchor.
    pub fn poison_reply_cache_for_test(&mut self, query: &Query, reply: Msg) {
        if let Some(anchor) = self.latest_digest_stamp.clone() {
            let key = Self::proof_reply_key(&anchor, query);
            let bytes = reply.wire_len();
            self.reply_cache.put(key, Arc::new(reply), bytes);
        }
    }

    fn is_fresh(&self, now: SimTime) -> bool {
        match &self.latest_stamp {
            Some(stamp) => now.since(stamp.timestamp) <= self.cfg.max_latency,
            None => false,
        }
    }

    fn accept_stamp(&mut self, stamp: VersionStamp) {
        let newer = match &self.latest_stamp {
            Some(cur) => {
                stamp.version > cur.version
                    || (stamp.version == cur.version && stamp.timestamp > cur.timestamp)
            }
            None => true,
        };
        if newer {
            self.latest_stamp = Some(stamp);
        }
    }

    /// Adopts a digest stamp as the proof-read anchor — only when it
    /// certifies exactly the state this replica has applied.  A stamp for
    /// a version we have not reached (or whose digest contradicts our
    /// own state) is useless for proving and is dropped; an honest slave
    /// that diverged would otherwise serve proofs doomed to fail.
    fn accept_digest_stamp(&mut self, ctx: &mut Ctx<'_, Msg>, stamp: StateDigestStamp) {
        if stamp.version != self.db.version() {
            return;
        }
        if stamp.digest != self.db.state_digest() {
            ctx.metrics().inc("slave.digest_mismatch");
            return;
        }
        let newer = match &self.latest_digest_stamp {
            Some(cur) => {
                stamp.version > cur.version
                    || (stamp.version == cur.version && stamp.timestamp > cur.timestamp)
            }
            None => true,
        };
        if newer {
            // The anchor moved (even a same-version keep-alive refresh):
            // every cached reply carries the old stamp, so none may be
            // served again.
            self.invalidate_caches(ctx);
            self.latest_digest_stamp = Some(stamp);
        }
    }

    /// The version this slave *appears* to be at: applied updates plus any
    /// it silently dropped (StaleServer keeps consuming the stream so it
    /// never looks like it has a gap).
    fn effective_version(&self) -> u64 {
        self.db.version().max(self.dropped_up_to)
    }

    fn apply_ready_updates(&mut self, ctx: &mut Ctx<'_, Msg>) {
        while let Some((&version, _)) = self.pending_updates.first_key_value() {
            if version != self.effective_version() + 1 {
                break;
            }
            let (ops, stamp, digest_stamp) =
                self.pending_updates.remove(&version).expect("present");
            let frozen = matches!(self.behavior, SlaveBehavior::StaleServer { freeze_at }
                if self.effective_version() >= freeze_at);
            if frozen {
                // StaleServer: keep the fresh stamp, drop the data.  The
                // digest stamp is useless to it — its frozen state can
                // never match the certified digest, so its proof-read
                // anchor ages out and that path self-gates.
                self.dropped_up_to = version;
                self.accept_stamp(stamp);
                ctx.metrics().inc("slave.updates_dropped");
                continue;
            }
            let bytes: usize = ops.iter().map(UpdateOp::size).sum();
            ctx.charge(ctx.costs().write_apply * ops.len() as u64);
            ctx.charge(ctx.costs().serde_cost(bytes));
            if self.db.apply_write(&ops).is_ok() {
                ctx.metrics().inc("slave.updates_applied");
                // The replica state moved: cached proofs describe the old
                // state even if the new digest stamp ends up rejected, so
                // wipe before (not only when) the anchor adoption below.
                self.invalidate_caches(ctx);
            }
            self.accept_stamp(stamp);
            if let Some(digest_stamp) = digest_stamp {
                self.accept_digest_stamp(ctx, digest_stamp);
            }
        }
    }

    /// Gap detection: ask the master for anything still missing,
    /// rate-limited so transient network reordering (which heals by
    /// itself) does not trigger replay storms.
    fn request_missing(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        if let Some((&lowest, _)) = self.pending_updates.first_key_value() {
            if lowest > self.effective_version() + 1 && ctx.now() >= self.sync_cooldown_until {
                self.sync_cooldown_until = ctx.now() + self.cfg.keepalive_period;
                ctx.metrics().inc("slave.sync_requests");
                ctx.send(
                    from,
                    Msg::SlaveSyncRequest {
                        from_version: self.effective_version() + 1,
                    },
                );
            }
        }
    }

    fn serve_read(&mut self, ctx: &mut Ctx<'_, Msg>, client: NodeId, req_id: u64, query: Query) {
        if self.excluded {
            ctx.send(
                client,
                Msg::ReadRefused {
                    req_id,
                    reason: RefuseReason::Excluded,
                },
            );
            return;
        }
        // Freshness self-gate (correct-slave duty from Section 3): "if they
        // behave correctly they should stop handling user requests until
        // they are back in sync".
        if !self.is_fresh(ctx.now()) {
            ctx.metrics().inc("slave.refused_stale");
            ctx.send(
                client,
                Msg::ReadRefused {
                    req_id,
                    reason: RefuseReason::OutOfSync,
                },
            );
            return;
        }
        if let SlaveBehavior::Refuser { prob } = self.behavior {
            if ctx.coin() < prob {
                ctx.metrics().inc("slave.refused_malicious");
                ctx.send(
                    client,
                    Msg::ReadRefused {
                        req_id,
                        reason: RefuseReason::OutOfSync,
                    },
                );
                return;
            }
        }

        let Ok((result, qcost)) = execute(&self.db, &query) else {
            ctx.metrics().inc("slave.query_errors");
            ctx.send(
                client,
                Msg::ReadRefused {
                    req_id,
                    reason: RefuseReason::OutOfSync,
                },
            );
            return;
        };
        ctx.charge(crate::cost::query_charge(&qcost, result.size(), ctx.costs()));
        self.reads_served += 1;
        ctx.metrics().inc("slave.reads");

        // Behaviour: decide what to ship and what to pledge.
        let lie = apply_lie_behavior(self.behavior, ctx, &result);
        let (shipped, pledged_hash_src, lie) = match (self.behavior, lie) {
            // A consistent liar pledges the corrupted hash too.
            (SlaveBehavior::ConsistentLiar { .. }, Some(bad)) => (bad.clone(), bad, true),
            // An inconsistent liar pledges the correct hash, ships garbage.
            (SlaveBehavior::InconsistentLiar { .. }, Some(bad)) => (bad, result, true),
            (_, _) => (result.clone(), result, false),
        };

        let result_hash = ResultHash::of(&pledged_hash_src, self.cfg.pledge_hash);
        ctx.charge(ctx.costs().hash_cost(pledged_hash_src.size()));
        if lie {
            ctx.metrics().inc("slave.lies");
            self.lies_told
                .insert(ResultHash::of(&shipped, self.cfg.pledge_hash).bytes().to_vec());
        }

        let stamp = self.latest_stamp.clone().expect("fresh implies stamp");
        ctx.charge(ctx.costs().sign);
        let Ok(pledge) = Pledge::build(
            query,
            result_hash,
            stamp,
            ctx.id(),
            self.signer.as_mut(),
        ) else {
            ctx.metrics().inc("slave.sign_failures");
            ctx.send(
                client,
                Msg::ReadRefused {
                    req_id,
                    reason: RefuseReason::OutOfSync,
                },
            );
            return;
        };
        ctx.send(
            client,
            Msg::ReadResponse {
                req_id,
                result: shipped,
                pledge: Box::new(pledge),
            },
        );
    }

    /// Serves a static point read with a Merkle path proof against the
    /// freshest master-signed digest stamp — no pledge involved.
    ///
    /// Refuses (like a pledged read) when excluded, when no sufficiently
    /// fresh digest anchor exists, or when the query is not provable
    /// (not a point read, or its table is missing).
    fn serve_proof_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        req_id: u64,
        query: Query,
    ) {
        let refuse = |ctx: &mut Ctx<'_, Msg>, reason: RefuseReason| {
            ctx.send(client, Msg::ReadRefused { req_id, reason });
        };
        if self.excluded {
            refuse(ctx, RefuseReason::Excluded);
            return;
        }
        // The proof-read self-gate: serve only with an anchor the client
        // will still consider fresh.
        let anchor_fresh = self
            .latest_digest_stamp
            .as_ref()
            .is_some_and(|s| s.is_fresh(ctx.now(), self.cfg.max_latency));
        if !anchor_fresh {
            ctx.metrics().inc("slave.refused_stale");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        }
        if let SlaveBehavior::Refuser { prob } = self.behavior {
            if ctx.coin() < prob {
                ctx.metrics().inc("slave.refused_malicious");
                refuse(ctx, RefuseReason::OutOfSync);
                return;
            }
        }
        let anchor = self.latest_digest_stamp.clone().expect("checked fresh");

        // Hot-read fast path: under one anchor, the honest reply for a
        // query is immutable, so the first build is memoized and every
        // repeat reader costs one cache probe.  RNG parity: execution
        // and proving draw no randomness, so the hit and miss paths
        // consume identical RNG streams (Refuser coin above, lie coin
        // below) and a run's trace never depends on cache contents.
        let cached = if self.cfg.proof_cache_bytes > 0 {
            ctx.charge(ctx.costs().cache_lookup);
            let key = Self::proof_reply_key(&anchor, &query);
            let hit = self.reply_cache.get(&key).cloned();
            match &hit {
                Some(_) => ctx.metrics().inc("slave.proof_cache_hit"),
                None => ctx.metrics().inc("slave.proof_cache_miss"),
            }
            hit
        } else {
            None
        };

        if let Some(reply) = cached {
            if self.cfg.cache_verify {
                // Host-side oracle: rebuild fresh and compare.  No
                // charges — virtual time must not see the recheck.
                let fresh = self.build_proof_reply(&query, &anchor);
                if fresh.as_ref().map(|m| format!("{m:?}")) != Some(format!("{:?}", *reply)) {
                    ctx.metrics().inc("slave.cache_divergence");
                }
            }
            self.reads_served += 1;
            ctx.metrics().inc("slave.reads");
            ctx.metrics().inc("slave.proof_reads");
            // Liars corrupt the shipped *result* even on a hit (fresh
            // allocation; the cache always holds the honest reply).
            let lie = match &*reply {
                Msg::ProofReadReply { result, .. } | Msg::RangeReadReply { result, .. } => {
                    apply_lie_behavior(self.behavior, ctx, result)
                }
                _ => None, // Poisoned by the test hook with junk.
            };
            match lie {
                Some(bad) => {
                    ctx.metrics().inc("slave.lies");
                    self.lies_told
                        .insert(ResultHash::of(&bad, self.cfg.pledge_hash).bytes().to_vec());
                    let (Msg::ProofReadReply {
                        query,
                        proof,
                        digest_stamp,
                        ..
                    }
                    | Msg::RangeReadReply {
                        query,
                        proof,
                        digest_stamp,
                        ..
                    }) = (*reply).clone()
                    else {
                        unreachable!("lie derives from a proof-read reply");
                    };
                    ctx.send(
                        client,
                        Self::proof_reply_msg(query, bad, proof, digest_stamp),
                    );
                }
                None => ctx.send_cached(client, reply),
            }
            return;
        }

        let Ok((result, qcost)) = execute(&self.db, &query) else {
            ctx.metrics().inc("slave.query_errors");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        };
        ctx.charge(crate::cost::query_charge(&qcost, result.size(), ctx.costs()));
        let Some(Ok(proof)) = self.db.prove_query(&query) else {
            // Not a point read, or the table itself is gone.
            ctx.metrics().inc("slave.proof_unsupported");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        };
        // Proof assembly re-hashes only the O(log n + k) path.
        ctx.charge(ctx.costs().hash_cost(64) * (1 + proof.depth() as u64));
        self.reads_served += 1;
        ctx.metrics().inc("slave.reads");
        ctx.metrics().inc("slave.proof_reads");
        if matches!(query, Query::ScanRange { .. }) {
            ctx.metrics().inc("slave.range_reads");
        }

        // The honest reply is assembled (and cached) regardless of
        // behaviour; liars corrupt a per-request copy of the result.
        // Forging the *proof* against the signed digest would need a
        // hash collision, so lies die at the client's verification.
        let honest = Arc::new(Self::proof_reply_msg(
            Box::new(query.clone()),
            result.clone(),
            Box::new(proof),
            anchor.clone(),
        ));
        if self.cfg.proof_cache_bytes > 0 {
            let key = Self::proof_reply_key(&anchor, &query);
            let bytes = honest.wire_len();
            let evicted = self.reply_cache.put(key, Arc::clone(&honest), bytes);
            ctx.metrics().add("slave.proof_cache_evict", evicted);
        }
        match apply_lie_behavior(self.behavior, ctx, &result) {
            Some(bad) => {
                ctx.metrics().inc("slave.lies");
                self.lies_told
                    .insert(ResultHash::of(&bad, self.cfg.pledge_hash).bytes().to_vec());
                let (Msg::ProofReadReply { query, proof, .. }
                | Msg::RangeReadReply { query, proof, .. }) = (*honest).clone()
                else {
                    unreachable!("just built");
                };
                ctx.send(client, Self::proof_reply_msg(query, bad, proof, anchor));
            }
            None => ctx.send_shared(client, honest),
        }
    }

    /// Picks the reply variant for a proof-anchored read: scans travel
    /// as [`Msg::RangeReadReply`], point reads as [`Msg::ProofReadReply`].
    /// Both are content-addressed and share one reply cache.
    fn proof_reply_msg(
        query: Box<Query>,
        result: QueryResult,
        proof: Box<StateProof>,
        digest_stamp: StateDigestStamp,
    ) -> Msg {
        if matches!(&*query, Query::ScanRange { .. }) {
            Msg::RangeReadReply {
                query,
                result,
                proof,
                digest_stamp,
            }
        } else {
            Msg::ProofReadReply {
                query,
                result,
                proof,
                digest_stamp,
            }
        }
    }

    /// Rebuilds the honest proof reply from scratch (the `cache_verify`
    /// oracle); returns `None` when the query no longer executes/proves.
    fn build_proof_reply(&self, query: &Query, anchor: &StateDigestStamp) -> Option<Msg> {
        let (result, _) = execute(&self.db, query).ok()?;
        let proof = self.db.prove_query(query)?.ok()?;
        Some(Self::proof_reply_msg(
            Box::new(query.clone()),
            result,
            Box::new(proof),
            anchor.clone(),
        ))
    }

    /// Serves a `ReadFileRange` as a proof-anchored chunk stream: one
    /// [`Msg::StreamHeader`] carrying the manifest proof, then the
    /// overlapping chunks as [`Msg::StreamChunk`]s.
    ///
    /// Same self-gates as [`SlaveProcess::serve_proof_read`].  A liar can
    /// corrupt chunk *bytes* but not the header — the manifest is pinned
    /// by the signed digest — so the client rejects the stream at exactly
    /// the corrupted chunk.
    fn serve_stream_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        req_id: u64,
        query: Query,
    ) {
        let refuse = |ctx: &mut Ctx<'_, Msg>, reason: RefuseReason| {
            ctx.send(client, Msg::ReadRefused { req_id, reason });
        };
        if self.excluded {
            refuse(ctx, RefuseReason::Excluded);
            return;
        }
        let anchor_fresh = self
            .latest_digest_stamp
            .as_ref()
            .is_some_and(|s| s.is_fresh(ctx.now(), self.cfg.max_latency));
        if !anchor_fresh {
            ctx.metrics().inc("slave.refused_stale");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        }
        if let SlaveBehavior::Refuser { prob } = self.behavior {
            if ctx.coin() < prob {
                ctx.metrics().inc("slave.refused_malicious");
                refuse(ctx, RefuseReason::OutOfSync);
                return;
            }
        }
        let Query::ReadFileRange { path, offset, len } = &query else {
            ctx.metrics().inc("slave.proof_unsupported");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        };

        let anchor = self.latest_digest_stamp.clone().expect("checked fresh");
        // The header proof is immutable under one anchor: memoize it so
        // repeat streams of a hot range skip the O(log n) path re-hash.
        // The key carries the byte range — a slice header proves only
        // the chunk-table rows that overlap it, so different ranges of
        // one file are different cache entries.  Chunk collection below
        // is per-request (the bytes really move).
        let proof = if self.cfg.proof_cache_bytes > 0 {
            ctx.charge(ctx.costs().cache_lookup);
            let window = self
                .db
                .fs()
                .manifest(path)
                .map_or((u64::MAX, u64::MAX), |m| {
                    let (a, b) = m.chunk_range(*offset, *len);
                    (a as u64, b as u64)
                });
            let key = Self::stream_proof_key(&anchor, path, window);
            match self.stream_proof_cache.get(&key).cloned() {
                Some(p) => {
                    ctx.metrics().inc("slave.proof_cache_hit");
                    if self.cfg.cache_verify {
                        let fresh = self.db.prove_stream(path, *offset, *len);
                        if format!("{fresh:?}") != format!("{p:?}") {
                            ctx.metrics().inc("slave.cache_divergence");
                        }
                    }
                    p
                }
                None => {
                    ctx.metrics().inc("slave.proof_cache_miss");
                    let p = self.db.prove_stream(path, *offset, *len);
                    // Header assembly re-hashes only the O(log n) path.
                    ctx.charge(ctx.costs().hash_cost(64) * (1 + p.depth() as u64));
                    let evicted = self.stream_proof_cache.put(key, p.clone(), p.wire_len());
                    ctx.metrics().add("slave.proof_cache_evict", evicted);
                    p
                }
            }
        } else {
            let p = self.db.prove_stream(path, *offset, *len);
            ctx.charge(ctx.costs().hash_cost(64) * (1 + p.depth() as u64));
            p
        };
        // The slice already covers exactly the chunks overlapping the
        // requested byte range; stream them at their absolute indexes.
        let (first, end) = proof.slice.as_ref().map_or((0, 0), |s| {
            (s.first as usize, s.first as usize + s.entries.len())
        });
        let chunks: Vec<(u32, Vec<u8>)> = proof
            .slice
            .as_ref()
            .map(|s| s.entries.as_slice())
            .unwrap_or_default()
            .iter()
            .enumerate()
            .filter_map(|(rel, entry)| {
                let data = self.db.fs().chunk_bytes(&entry.id)?.to_vec();
                Some(((first + rel) as u32, data))
            })
            .collect();
        if chunks.len() != end - first {
            // A manifest chunk missing from the store means replica
            // corruption; refusing beats streaming a doomed proof.
            ctx.metrics().inc("slave.query_errors");
            refuse(ctx, RefuseReason::OutOfSync);
            return;
        }
        let streamed: usize = chunks.iter().map(|(_, d)| d.len()).sum();
        ctx.charge(ctx.costs().serde_cost(streamed));
        self.reads_served += 1;
        ctx.metrics().inc("slave.reads");
        ctx.metrics().inc("slave.stream_reads");

        // Liars corrupt one chunk's bytes; the header stays honest
        // because the manifest is pinned by the signed digest.
        let mut chunks = chunks;
        let lie_coin = match self.behavior {
            SlaveBehavior::ConsistentLiar { prob, .. }
            | SlaveBehavior::InconsistentLiar { prob } => ctx.coin() < prob,
            _ => false,
        };
        if lie_coin {
            if let Some((_, data)) = chunks.last_mut() {
                data[0] ^= 0x5a;
                ctx.metrics().inc("slave.lies");
                let forged = QueryResult::Text(Some(
                    String::from_utf8_lossy(data).into_owned(),
                ));
                self.lies_told
                    .insert(ResultHash::of(&forged, self.cfg.pledge_hash).bytes().to_vec());
            }
        }

        ctx.send(
            client,
            Msg::StreamHeader {
                req_id,
                proof: Box::new(proof),
                digest_stamp: anchor,
                first_chunk: first as u32,
                chunk_count: (end - first) as u32,
            },
        );
        for (index, data) in chunks {
            ctx.send(client, Msg::StreamChunk { req_id, index, data });
        }
    }
}

impl Process<Msg> for SlaveProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ReadRequest { req_id, query } => self.serve_read(ctx, from, req_id, query),
            Msg::ProofRead { req_id, query } => self.serve_proof_read(ctx, from, req_id, query),
            Msg::StreamRead { req_id, query } => self.serve_stream_read(ctx, from, req_id, query),
            Msg::KeepAlive {
                stamp,
                digest_stamp,
            } => {
                // Only stamps genuinely signed by a known master count.
                ctx.charge(ctx.costs().verify * 2);
                let valid = self
                    .master_keys
                    .get(&stamp.master)
                    .is_some_and(|k| stamp.verify(k).is_ok() && digest_stamp.verify(k).is_ok());
                if valid {
                    self.last_keepalive_at = ctx.now();
                    self.accept_stamp(stamp);
                    self.accept_digest_stamp(ctx, digest_stamp);
                } else {
                    ctx.metrics().inc("slave.bad_keepalives");
                }
            }
            Msg::StateUpdate {
                version,
                ops,
                stamp,
                digest_stamp,
            } => {
                ctx.charge(ctx.costs().verify * 2);
                let valid = self
                    .master_keys
                    .get(&stamp.master)
                    .is_some_and(|k| stamp.verify(k).is_ok() && digest_stamp.verify(k).is_ok());
                if !valid {
                    ctx.metrics().inc("slave.bad_updates");
                    return;
                }
                if version > self.effective_version() {
                    self.pending_updates
                        .insert(version, (ops, stamp, Some(digest_stamp)));
                }
                self.apply_ready_updates(ctx);
                self.request_missing(ctx, from);
            }
            Msg::StateUpdateBatch {
                updates,
                stamp,
                digest_stamp,
            } => {
                // One stamp pair covers the whole batch: verify twice,
                // not 2 x batch.  The version stamp certifies the final
                // version; every run in the batch rides that signature.
                ctx.charge(ctx.costs().verify * 2);
                let valid = self
                    .master_keys
                    .get(&stamp.master)
                    .is_some_and(|k| stamp.verify(k).is_ok() && digest_stamp.verify(k).is_ok());
                if !valid {
                    ctx.metrics().inc("slave.bad_updates");
                    return;
                }
                let last = updates.last().map(|(v, _)| *v);
                for (version, ops) in updates {
                    if version <= self.effective_version() {
                        continue;
                    }
                    // Only the batch's final version carries the signed
                    // digest anchor; intermediates apply without one (a
                    // mid-batch digest was never signed).
                    let anchor = (Some(version) == last).then(|| digest_stamp.clone());
                    self.pending_updates
                        .insert(version, (ops, stamp.clone(), anchor));
                }
                self.apply_ready_updates(ctx);
                self.request_missing(ctx, from);
            }
            Msg::ExcludeNotice => {
                self.excluded = true;
                ctx.metrics().inc("slave.excluded_notices");
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("slave({:?})", self.behavior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_always_changes_hash() {
        let samples = vec![
            QueryResult::Rows(vec![]),
            QueryResult::Rows(vec![(1, Document::new().with("a", 1i64))]),
            QueryResult::Scalar(Value::Int(5)),
            QueryResult::Scalar(Value::Str("x".into())),
            QueryResult::Groups(vec![]),
            QueryResult::Groups(vec![(Value::Int(1), Value::Int(2))]),
            QueryResult::Text(None),
            QueryResult::Text(Some("abc".into())),
            QueryResult::Matches(vec![]),
            QueryResult::Paths(vec![]),
            QueryResult::Paths(vec!["/a".into()]),
        ];
        for r in samples {
            let c = corrupt(&r, 0);
            assert_ne!(r.sha1(), c.sha1(), "corrupt({r:?}) did not change hash");
            // Different salts give different forgeries for non-empty cases
            // where the salt lands in the payload.
            let c2 = corrupt(&r, 7);
            if matches!(
                r,
                QueryResult::Scalar(_) | QueryResult::Text(_) | QueryResult::Rows(_)
            ) {
                assert_ne!(c.sha1(), c2.sha1(), "salt ignored for {r:?}");
            }
        }
    }

    #[test]
    fn behavior_malice_flags() {
        assert!(!SlaveBehavior::Honest.is_malicious());
        assert!(SlaveBehavior::ConsistentLiar {
            prob: 0.1,
            collude: false
        }
        .is_malicious());
        assert!(SlaveBehavior::StaleServer { freeze_at: 1 }.is_malicious());
    }
}
