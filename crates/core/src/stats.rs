//! Experiment-facing statistics extraction.

use crate::client::ClientCounters;
use crate::system::System;
use sdr_sim::Summary;
use std::collections::{HashMap, HashSet};

/// Aggregated statistics for one run.
#[derive(Clone, Debug, serde::ToJson, serde::FromJson)]
pub struct SystemStats {
    /// Reads issued by clients.
    pub reads_issued: u64,
    /// Reads fully verified and accepted.
    pub reads_accepted: u64,
    /// Reads that exhausted retries.
    pub reads_failed: u64,
    /// Responses rejected for staleness.
    pub rejected_stale: u64,
    /// Responses rejected for hash mismatch (inconsistent liars).
    pub rejected_hash: u64,
    /// Read retries.
    pub read_retries: u64,
    /// Reads served by the trusted masters (sensitive variant).
    pub reads_sensitive: u64,
    /// Static reads issued on the authenticated proof path.
    pub proof_reads_issued: u64,
    /// Proof-verified reads accepted (deterministically, no auditor).
    pub proof_reads_accepted: u64,
    /// Proof-read replies rejected by client-side verification for any
    /// reason — bad proof, stale or forged digest stamp, unknown sender
    /// (lying or stale slaves caught immediately).
    pub proof_reads_rejected: u64,
    /// Proof reads that fell back to the pledged pipeline.
    pub proof_fallbacks: u64,
    /// Proof requests a slave refused because the query shape has no
    /// Merkle path (non-point queries routed to the proof path).
    pub proof_unsupported: u64,
    /// Rejected proof replies retried on another replica of the same
    /// shard while still on the proof path (proof-path hardening; these
    /// happen *before* any pledged fallback).
    pub proof_retries: u64,
    /// Proof size on the wire, bytes (per accepted proof read).
    pub proof_bytes: Summary,
    /// Proof path depth (hash work per verification).
    pub proof_depth: Summary,
    /// Latency of proof-verified reads (µs).
    pub proof_latency: Summary,
    /// Lies slaves told (ground truth).
    pub lies_told: u64,
    /// Accepted reads whose result was a lie (oracle join).
    pub wrong_accepted: u64,
    /// Double-checks sent by clients.
    pub dc_sent: u64,
    /// Double-check mismatches (immediate discoveries at the master).
    pub dc_mismatch: u64,
    /// Double-checks throttled by greedy enforcement.
    pub dc_throttled: u64,
    /// Immediate discoveries (Section 3.5).
    pub discovery_immediate: u64,
    /// Delayed discoveries via the audit (Section 3.5).
    pub discovery_delayed: u64,
    /// Slaves excluded.
    pub exclusions: u64,
    /// Client reassignments after exclusions.
    pub reassignments: u64,
    /// Pledges submitted to the auditor.
    pub audit_submitted: u64,
    /// Pledges actually checked.
    pub audit_checked: u64,
    /// Auditor cache hits.
    pub audit_cache_hits: u64,
    /// Audit mismatches found.
    pub audit_mismatch: u64,
    /// Pledges skipped by sampled auditing.
    pub audit_skipped: u64,
    /// Writes committed.
    pub writes_committed: u64,
    /// Writes denied by ACL.
    pub writes_denied: u64,
    /// Client writes committed per sequencer round (batch-size
    /// distribution; every observation is `1` at `max_write_batch = 1`).
    pub writes_per_round: Summary,
    /// Read latency summary (µs).
    pub read_latency: Summary,
    /// Write commit latency summary (µs).
    pub write_latency: Summary,
    /// Audit lag summary (µs).
    pub audit_lag: Summary,
    /// Final auditor backlog.
    pub audit_backlog: u64,
    /// Snapshot-ring nodes owned exclusively by one retained snapshot,
    /// summed over all masters (the ring's true retention cost).
    pub snapshot_nodes_owned: u64,
    /// Snapshot-ring nodes shared with other handles, summed over all
    /// masters (structural reuse across versions).
    pub snapshot_nodes_shared: u64,
    /// Per-master CPU utilisation (0..=1), by global shard-major index.
    pub master_utilisation: Vec<f64>,
    /// Per-slave CPU utilisation (0..=1), by global shard-major index.
    pub slave_utilisation: Vec<f64>,
    /// Per-client counters, by index.
    pub per_client: Vec<ClientCounters>,
    /// Writes committed per shard (counted once per commit, at the
    /// admitting sequencer of the owning subgroup).
    pub writes_committed_per_shard: Vec<u64>,
    /// Directory lookups per shard (the routing-table load split).
    pub dir_lookups_per_shard: Vec<u64>,
    /// Unique chunks in the content store (one master per shard, summed).
    pub chunks_stored: u64,
    /// Chunk writes that hit an existing chunk (dedup hits).
    pub chunks_deduped: u64,
    /// Logical file bytes (what the files claim to hold).
    pub chunk_logical_bytes: u64,
    /// Physical chunk bytes actually stored (after dedup).
    pub chunk_physical_bytes: u64,
    /// Streamed `ReadFileRange` requests issued on the proof path.
    pub stream_reads_issued: u64,
    /// Streams fully verified chunk-by-chunk and accepted.
    pub stream_reads_accepted: u64,
    /// Individual chunks verified across all streams.
    pub stream_chunks_verified: u64,
    /// Streams rejected at a corrupted chunk.
    pub stream_chunk_rejects: u64,
    /// Range-proof size on the wire, bytes (per verified `ScanRange`
    /// reply — one proof covers every row in the page).
    pub range_proof_bytes: Summary,
    /// Rows delivered under a verified range proof, summed over all
    /// accepted `ScanRange` replies.
    pub range_rows_verified: u64,
    /// `ScanRange` reads scattered across shard boundaries (the parent
    /// counts once; per-shard sub-scans are bookkeeping).
    pub range_scans_scattered: u64,
    /// Scattered scans whose verified per-shard pieces failed the
    /// stitch check (gap, overlap, or short coverage) and were refused.
    pub range_stitch_rejects: u64,
    /// Client churn rejoins completed (each redoes the setup phase).
    pub churn_joins: u64,
    /// Client churn departures.
    pub churn_leaves: u64,
    /// Simulator events processed over the run.
    pub sim_events: u64,
    /// High-water mark of live events in the scheduler.
    pub sim_queue_peak: u64,
    /// Live events still queued at collection time.
    pub sim_queue_live: u64,
    /// Event-slab slots allocated (scheduler resident-set proxy).
    pub sim_queue_slots: u64,
    /// Cancelled timers discarded lazily by the scheduler.
    pub sim_timers_cancelled: u64,
    /// Wire bytes summed over every enqueued delivery — what the queue
    /// would hold if each fan-out delivery carried its own copy.
    pub sim_msg_bytes_logical: u64,
    /// Wire bytes of unique payload allocations enqueued; a multicast
    /// counts once here, so `logical / resident` is the sharing ratio.
    pub sim_msg_bytes_resident: u64,
    /// Slave proof-cache hits: proof reads answered from a memoized
    /// reply (point proofs and stream headers alike).
    pub proof_cache_hits: u64,
    /// Slave proof-cache misses (the reply was built and cached).
    pub proof_cache_misses: u64,
    /// Entries evicted from slave proof caches by the LRU byte budget.
    pub proof_cache_evictions: u64,
    /// Wholesale slave proof-cache invalidations (new anchor stamp or
    /// an applied write wiped a non-empty cache).
    pub proof_cache_invalidations: u64,
    /// Bytes resident in slave proof caches at collection time, summed
    /// over every slave.
    pub proof_cache_bytes: u64,
    /// Client stamp-verification cache hits (anchor signature skipped).
    pub stamp_cache_hits: u64,
    /// Client stamp-verification cache misses (full signature check).
    pub stamp_cache_misses: u64,
    /// Client verified-certificate cache hits.
    pub cert_cache_hits: u64,
    /// Client verified-certificate cache misses.
    pub cert_cache_misses: u64,
}

impl SystemStats {
    /// Collects statistics from a (finished or running) system.
    pub fn collect(sys: &mut System) -> Self {
        // Oracle join: which accepted result hashes were lies?  The set is
        // for the join; the *count* of lie events comes from the metric
        // (identical lies to repeated queries hash identically).
        let mut lie_sets: HashMap<usize, HashSet<Vec<u8>>> = HashMap::new();
        for i in 0..sys.slaves.len() {
            let lies = sys.with_slave(i, |s| s.lies_told().clone());
            lie_sets.insert(i, lies);
        }
        let lies_told = sys.world.metrics().counter("slave.lies");
        let slave_index: HashMap<_, _> = sys
            .slaves
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i))
            .collect();

        let mut wrong_accepted = 0u64;
        let mut per_client = Vec::with_capacity(sys.clients.len());
        for i in 0..sys.clients.len() {
            let (acc, counters) =
                sys.with_client(i, |c| (c.acceptances().to_vec(), c.counters()));
            for (slave, hash) in acc {
                if let Some(idx) = slave_index.get(&slave) {
                    if lie_sets.get(idx).is_some_and(|l| l.contains(&hash)) {
                        wrong_accepted += 1;
                    }
                }
            }
            per_client.push(counters);
        }

        // Snapshot-ring memory telemetry: retention cost vs churn.
        let mut snapshot_nodes = sdr_store::NodeStats::default();
        for rank in 0..sys.masters.len() {
            snapshot_nodes.merge(sys.with_master(rank, |m| m.snapshot_node_stats()));
        }

        // Chunk-store telemetry: one master per shard (masters of the
        // same subgroup hold identical replicas; summing them all would
        // just multiply by the replication factor), summed across
        // shards.
        let masters_per_shard = (sys.masters.len() / sys.config.n_shards.max(1)).max(1);
        let mut chunk_stats = sdr_store::ChunkStats::default();
        for rank in (0..sys.masters.len()).step_by(masters_per_shard) {
            let cs = sys.with_master(rank, |m| m.chunk_stats());
            chunk_stats.chunks_stored += cs.chunks_stored;
            chunk_stats.chunks_deduped += cs.chunks_deduped;
            chunk_stats.logical_bytes += cs.logical_bytes;
            chunk_stats.physical_bytes += cs.physical_bytes;
        }

        // Slave proof-cache residency: per-slave state, summed over the
        // whole replica population.
        let mut proof_cache_bytes = 0u64;
        for i in 0..sys.slaves.len() {
            proof_cache_bytes += sys.with_slave(i, |s| s.cache_bytes());
        }

        let master_utilisation: Vec<f64> = sys
            .masters
            .clone()
            .into_iter()
            .map(|n| sys.world.utilisation(n))
            .collect();
        let slave_utilisation: Vec<f64> = sys
            .slaves
            .clone()
            .into_iter()
            .map(|n| sys.world.utilisation(n))
            .collect();

        let n_shards = sys.config.n_shards;
        let queue_depth = sys.world.queue_depth();
        let sim_events = sys.world.events_processed();
        let sim_msg_bytes_logical = sys.world.msg_bytes_logical();
        let sim_msg_bytes_resident = sys.world.msg_bytes_resident();
        let m = sys.world.metrics_mut();
        let writes_committed_per_shard: Vec<u64> = (0..n_shards)
            .map(|k| m.counter(&format!("write.committed.shard{k}")))
            .collect();
        let dir_lookups_per_shard: Vec<u64> = (0..n_shards)
            .map(|k| m.counter(&format!("directory.lookups.shard{k}")))
            .collect();
        SystemStats {
            reads_issued: m.counter("read.issued"),
            reads_accepted: m.counter("read.accepted"),
            reads_failed: m.counter("read.failed"),
            rejected_stale: m.counter("read.rejected.stale"),
            rejected_hash: m.counter("read.rejected.hash"),
            read_retries: m.counter("read.retry"),
            reads_sensitive: m.counter("read.sensitive"),
            proof_reads_issued: m.counter("read.proof_issued"),
            proof_reads_accepted: m.counter("read.proof_accepted"),
            proof_reads_rejected: m.counter("read.proof_rejected"),
            proof_fallbacks: m.counter("read.proof_fallback"),
            proof_unsupported: m.counter("slave.proof_unsupported"),
            proof_retries: m.counter("read.proof_retry"),
            proof_bytes: m.summary("proof.bytes"),
            proof_depth: m.summary("proof.depth"),
            proof_latency: m.summary("read.proof_latency_us"),
            lies_told,
            wrong_accepted,
            dc_sent: m.counter("dc.sent"),
            dc_mismatch: m.counter("dc.mismatch"),
            dc_throttled: m.counter("dc.throttled"),
            discovery_immediate: m.counter("discovery.immediate"),
            discovery_delayed: m.counter("discovery.delayed"),
            exclusions: m.counter("exclusion.count"),
            reassignments: m.counter("reassign.count"),
            audit_submitted: m.counter("audit.submitted"),
            audit_checked: m.counter("audit.checked"),
            audit_cache_hits: m.counter("audit.cache_hit"),
            audit_mismatch: m.counter("audit.mismatch"),
            audit_skipped: m.counter("audit.skipped_sampling"),
            writes_committed: m.counter("write.committed"),
            writes_denied: m.counter("write.denied"),
            writes_per_round: m.summary("write.batch_size"),
            read_latency: m.summary("read.latency_us"),
            write_latency: m.summary("write.latency_us"),
            audit_lag: m.summary("audit.lag_hist_us"),
            audit_backlog: {
                // Final backlog from the elected auditor.
                0 // Filled below after the metrics borrow ends.
            },
            snapshot_nodes_owned: snapshot_nodes.owned as u64,
            snapshot_nodes_shared: snapshot_nodes.shared as u64,
            master_utilisation,
            slave_utilisation,
            per_client,
            writes_committed_per_shard,
            dir_lookups_per_shard,
            chunks_stored: chunk_stats.chunks_stored,
            chunks_deduped: chunk_stats.chunks_deduped,
            chunk_logical_bytes: chunk_stats.logical_bytes,
            chunk_physical_bytes: chunk_stats.physical_bytes,
            stream_reads_issued: m.counter("read.stream_issued"),
            stream_reads_accepted: m.counter("read.stream_accepted"),
            stream_chunks_verified: m.counter("read.stream_chunks_verified"),
            stream_chunk_rejects: m.counter("read.stream_chunk_rejected"),
            range_proof_bytes: m.summary("range.proof_bytes"),
            range_rows_verified: m.counter("range.rows_verified"),
            range_scans_scattered: m.counter("read.range_scattered"),
            range_stitch_rejects: m.counter("read.range_stitch_rejected"),
            churn_joins: m.counter("client.churn_join"),
            churn_leaves: m.counter("client.churn_leave"),
            sim_events,
            sim_queue_peak: queue_depth.peak as u64,
            sim_queue_live: queue_depth.live as u64,
            sim_queue_slots: queue_depth.slots as u64,
            sim_timers_cancelled: queue_depth.drained_cancelled,
            sim_msg_bytes_logical,
            sim_msg_bytes_resident,
            proof_cache_hits: m.counter("slave.proof_cache_hit"),
            proof_cache_misses: m.counter("slave.proof_cache_miss"),
            proof_cache_evictions: m.counter("slave.proof_cache_evict"),
            proof_cache_invalidations: m.counter("slave.proof_cache_invalidate"),
            proof_cache_bytes,
            stamp_cache_hits: m.counter("client.stamp_cache_hit"),
            stamp_cache_misses: m.counter("client.stamp_cache_miss"),
            cert_cache_hits: m.counter("client.cert_cache_hit"),
            cert_cache_misses: m.counter("client.cert_cache_miss"),
        }
        .fill_auditor(sys)
    }

    fn fill_auditor(mut self, sys: &mut System) -> Self {
        // One elected auditor per shard: the backlog is their sum.
        for rank in 0..sys.masters.len() {
            let (is_auditor, backlog) =
                sys.with_master(rank, |m| (m.is_auditor(), m.auditor_state().backlog()));
            if is_auditor {
                self.audit_backlog += backlog;
            }
        }
        self
    }

    /// Fraction of accepted reads that were wrong (the headline
    /// correctness metric).
    pub fn wrong_accept_rate(&self) -> f64 {
        if self.reads_accepted == 0 {
            0.0
        } else {
            self.wrong_accepted as f64 / self.reads_accepted as f64
        }
    }

    /// Total misbehaviour discoveries.
    pub fn discoveries(&self) -> u64 {
        self.discovery_immediate + self.discovery_delayed
    }

    /// How many queued deliveries each unique payload allocation served
    /// on average (`logical / resident` bytes; 1.0 means no sharing,
    /// higher means multicast fan-out amortised its payloads).
    pub fn msg_sharing_ratio(&self) -> f64 {
        if self.sim_msg_bytes_resident == 0 {
            1.0
        } else {
            self.sim_msg_bytes_logical as f64 / self.sim_msg_bytes_resident as f64
        }
    }

    /// Fraction of proof reads the slaves answered from their reply
    /// caches (hits over hits+misses; 0 when no proof read probed one).
    pub fn proof_cache_hit_rate(&self) -> f64 {
        let total = self.proof_cache_hits + self.proof_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.proof_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of anchor-signature checks the clients answered from
    /// their stamp-verification caches.
    pub fn stamp_cache_hit_rate(&self) -> f64 {
        let total = self.stamp_cache_hits + self.stamp_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.stamp_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of logical bytes the chunk store saved through dedup
    /// (`1 - physical/logical`; 0 when nothing was written).
    pub fn chunk_dedup_ratio(&self) -> f64 {
        if self.chunk_logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.chunk_physical_bytes as f64 / self.chunk_logical_bytes as f64
        }
    }

    /// Every scalar field (plus a few derived rates), flattened to
    /// `(name, value)` pairs.  This is what the scenario runner's
    /// per-cell mean/min/max aggregation runs over, so adding a counter
    /// here makes it reportable everywhere.
    pub fn numeric_fields(&self) -> Vec<(&'static str, f64)> {
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let mut out: Vec<(&'static str, f64)> = vec![
            ("reads_issued", self.reads_issued as f64),
            ("reads_accepted", self.reads_accepted as f64),
            ("reads_failed", self.reads_failed as f64),
            ("rejected_stale", self.rejected_stale as f64),
            ("rejected_hash", self.rejected_hash as f64),
            ("read_retries", self.read_retries as f64),
            ("reads_sensitive", self.reads_sensitive as f64),
            ("proof_reads_issued", self.proof_reads_issued as f64),
            ("proof_reads_accepted", self.proof_reads_accepted as f64),
            ("proof_reads_rejected", self.proof_reads_rejected as f64),
            ("proof_fallbacks", self.proof_fallbacks as f64),
            ("proof_unsupported", self.proof_unsupported as f64),
            ("proof_retries", self.proof_retries as f64),
            ("snapshot_nodes_owned", self.snapshot_nodes_owned as f64),
            ("snapshot_nodes_shared", self.snapshot_nodes_shared as f64),
            ("lies_told", self.lies_told as f64),
            ("wrong_accepted", self.wrong_accepted as f64),
            ("wrong_accept_rate", self.wrong_accept_rate()),
            ("dc_sent", self.dc_sent as f64),
            ("dc_mismatch", self.dc_mismatch as f64),
            ("dc_throttled", self.dc_throttled as f64),
            ("discovery_immediate", self.discovery_immediate as f64),
            ("discovery_delayed", self.discovery_delayed as f64),
            ("exclusions", self.exclusions as f64),
            ("reassignments", self.reassignments as f64),
            ("audit_submitted", self.audit_submitted as f64),
            ("audit_checked", self.audit_checked as f64),
            ("audit_cache_hits", self.audit_cache_hits as f64),
            ("audit_mismatch", self.audit_mismatch as f64),
            ("audit_skipped", self.audit_skipped as f64),
            ("writes_committed", self.writes_committed as f64),
            ("writes_denied", self.writes_denied as f64),
            ("writes_per_round_mean", self.writes_per_round.mean),
            ("writes_per_round_max", self.writes_per_round.max as f64),
            ("audit_backlog", self.audit_backlog as f64),
            ("master_util_mean", mean(&self.master_utilisation)),
            ("slave_util_mean", mean(&self.slave_utilisation)),
            ("chunks_stored", self.chunks_stored as f64),
            ("chunks_deduped", self.chunks_deduped as f64),
            ("chunk_logical_bytes", self.chunk_logical_bytes as f64),
            ("chunk_physical_bytes", self.chunk_physical_bytes as f64),
            ("chunk_dedup_ratio", self.chunk_dedup_ratio()),
            ("stream_reads_issued", self.stream_reads_issued as f64),
            ("stream_reads_accepted", self.stream_reads_accepted as f64),
            ("stream_chunks_verified", self.stream_chunks_verified as f64),
            ("stream_chunk_rejects", self.stream_chunk_rejects as f64),
            ("range_proof_bytes", self.range_proof_bytes.mean),
            ("range_rows_verified", self.range_rows_verified as f64),
            ("range_scans_scattered", self.range_scans_scattered as f64),
            ("range_stitch_rejects", self.range_stitch_rejects as f64),
            ("churn_joins", self.churn_joins as f64),
            ("churn_leaves", self.churn_leaves as f64),
            ("sim_events", self.sim_events as f64),
            ("sim_queue_peak", self.sim_queue_peak as f64),
            ("sim_queue_live", self.sim_queue_live as f64),
            ("sim_queue_slots", self.sim_queue_slots as f64),
            ("sim_timers_cancelled", self.sim_timers_cancelled as f64),
            ("sim_msg_bytes_logical", self.sim_msg_bytes_logical as f64),
            ("sim_msg_bytes_resident", self.sim_msg_bytes_resident as f64),
            ("msg_sharing_ratio", self.msg_sharing_ratio()),
            ("proof_cache_hits", self.proof_cache_hits as f64),
            ("proof_cache_misses", self.proof_cache_misses as f64),
            ("proof_cache_evictions", self.proof_cache_evictions as f64),
            (
                "proof_cache_invalidations",
                self.proof_cache_invalidations as f64,
            ),
            ("proof_cache_bytes", self.proof_cache_bytes as f64),
            ("proof_cache_hit_rate", self.proof_cache_hit_rate()),
            ("stamp_cache_hits", self.stamp_cache_hits as f64),
            ("stamp_cache_misses", self.stamp_cache_misses as f64),
            ("stamp_cache_hit_rate", self.stamp_cache_hit_rate()),
            ("cert_cache_hits", self.cert_cache_hits as f64),
            ("cert_cache_misses", self.cert_cache_misses as f64),
        ];
        let s = &self.read_latency;
        out.extend([
            ("read_latency_mean", s.mean),
            ("read_latency_p50", s.p50 as f64),
            ("read_latency_p90", s.p90 as f64),
            ("read_latency_p99", s.p99 as f64),
        ]);
        let s = &self.write_latency;
        out.extend([
            ("write_latency_mean", s.mean),
            ("write_latency_p50", s.p50 as f64),
            ("write_latency_p90", s.p90 as f64),
            ("write_latency_p99", s.p99 as f64),
        ]);
        let s = &self.audit_lag;
        out.extend([
            ("audit_lag_mean", s.mean),
            ("audit_lag_p50", s.p50 as f64),
            ("audit_lag_p90", s.p90 as f64),
            ("audit_lag_p99", s.p99 as f64),
        ]);
        let s = &self.proof_latency;
        out.extend([
            ("proof_latency_mean", s.mean),
            ("proof_latency_p50", s.p50 as f64),
            ("proof_latency_p99", s.p99 as f64),
            ("proof_bytes_mean", self.proof_bytes.mean),
            ("proof_depth_mean", self.proof_depth.mean),
        ]);
        out
    }

    /// Compact human-readable summary (used by examples).
    pub fn render(&self) -> String {
        format!(
            "reads: issued={} accepted={} failed={} stale_rejects={} sensitive={}\n\
             proofs: issued={} accepted={} rejected={} retries={} fallbacks={} \
             unsupported={} bytes_p50={} depth_p50={}\n\
             streams: issued={} accepted={} chunks_verified={} chunk_rejects={}\n\
             ranges: rows_verified={} proof_bytes_p50={} scattered={} stitch_rejects={}\n\
             chunks: stored={} deduped={} logical={}B physical={}B dedup_ratio={:.3}\n\
             writes: committed={} denied={} per_round_mean={:.2}\n\
             lies: told={} wrong_accepted={} ({:.4}%)\n\
             double-check: sent={} mismatch={} throttled={}\n\
             discovery: immediate={} delayed={} exclusions={} reassignments={}\n\
             audit: submitted={} checked={} cache_hits={} mismatch={} backlog={}\n\
             caches: proof hit={} miss={} (rate={:.3}) evict={} inval={} bytes={} \
             stamp hit={} miss={} cert hit={} miss={}\n\
             sim: events={} queue_peak={} slots={} cancelled={} \
             msg_logical={}B msg_resident={}B sharing={:.2}x\n\
             read latency: p50={}us p90={}us p99={}us",
            self.reads_issued,
            self.reads_accepted,
            self.reads_failed,
            self.rejected_stale,
            self.reads_sensitive,
            self.proof_reads_issued,
            self.proof_reads_accepted,
            self.proof_reads_rejected,
            self.proof_retries,
            self.proof_fallbacks,
            self.proof_unsupported,
            self.proof_bytes.p50,
            self.proof_depth.p50,
            self.stream_reads_issued,
            self.stream_reads_accepted,
            self.stream_chunks_verified,
            self.stream_chunk_rejects,
            self.range_rows_verified,
            self.range_proof_bytes.p50,
            self.range_scans_scattered,
            self.range_stitch_rejects,
            self.chunks_stored,
            self.chunks_deduped,
            self.chunk_logical_bytes,
            self.chunk_physical_bytes,
            self.chunk_dedup_ratio(),
            self.writes_committed,
            self.writes_denied,
            self.writes_per_round.mean,
            self.lies_told,
            self.wrong_accepted,
            100.0 * self.wrong_accept_rate(),
            self.dc_sent,
            self.dc_mismatch,
            self.dc_throttled,
            self.discovery_immediate,
            self.discovery_delayed,
            self.exclusions,
            self.reassignments,
            self.audit_submitted,
            self.audit_checked,
            self.audit_cache_hits,
            self.audit_mismatch,
            self.audit_backlog,
            self.proof_cache_hits,
            self.proof_cache_misses,
            self.proof_cache_hit_rate(),
            self.proof_cache_evictions,
            self.proof_cache_invalidations,
            self.proof_cache_bytes,
            self.stamp_cache_hits,
            self.stamp_cache_misses,
            self.cert_cache_hits,
            self.cert_cache_misses,
            self.sim_events,
            self.sim_queue_peak,
            self.sim_queue_slots,
            self.sim_timers_cancelled,
            self.sim_msg_bytes_logical,
            self.sim_msg_bytes_resident,
            self.msg_sharing_ratio(),
            self.read_latency.p50,
            self.read_latency.p90,
            self.read_latency.p99,
        )
    }
}
