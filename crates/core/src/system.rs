//! Wires a full deployment into a simulation world.
//!
//! The [`SystemBuilder`] plays the *content owner*: it generates the
//! content key, signs master certificates, loads the initial data content
//! onto every replica, assigns slaves to masters (the highest-ranked
//! master is the initial elected auditor and gets none), and spawns
//! directory, masters, slaves, and clients into an `sdr-sim` [`World`].

use crate::client::ClientProcess;
use crate::config::SystemConfig;
use crate::dataset::DatasetSpec;
use crate::directory::DirectoryProcess;
use crate::master::MasterProcess;
use crate::messages::Msg;
use crate::slave::{SlaveBehavior, SlaveProcess};
use crate::stats::SystemStats;
use crate::workload::Workload;
use crate::acl::WritePolicy;
use sdr_broadcast::MemberId;
use sdr_crypto::{
    content_id_for_key, CertRole, Certificate, CertificateBody, HmacDrbg, HmacSigner, MssSigner,
    PublicKey, SignatureScheme, Signer,
};
use sdr_sim::{CostModel, LinkModel, NetworkConfig, NodeId, SimDuration, SimTime, World};
use std::collections::HashMap;

/// Builder for a complete simulated deployment.
pub struct SystemBuilder {
    config: SystemConfig,
    workload: Workload,
    behaviors: Vec<SlaveBehavior>,
    net: Option<NetworkConfig>,
    costs: CostModel,
    policy: WritePolicy,
}

impl SystemBuilder {
    /// Starts a builder from a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let behaviors = vec![SlaveBehavior::Honest; config.n_slaves];
        SystemBuilder {
            config,
            workload: Workload::default(),
            behaviors,
            net: None,
            costs: CostModel::standard(),
            policy: WritePolicy::allow_all(),
        }
    }

    /// Sets the workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Sets one slave's behaviour.
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a valid slave index for the
    /// configuration this builder was created with.
    pub fn slave_behavior(mut self, index: usize, b: SlaveBehavior) -> Self {
        assert!(
            index < self.behaviors.len(),
            "slave_behavior: index {index} out of range (n_slaves = {})",
            self.behaviors.len()
        );
        self.behaviors[index] = b;
        self
    }

    /// Sets every slave's behaviour at once (length must match).
    pub fn behaviors(mut self, b: Vec<SlaveBehavior>) -> Self {
        assert_eq!(b.len(), self.config.n_slaves);
        self.behaviors = b;
        self
    }

    /// Overrides the network model (default: 10 ms WAN-ish links).
    pub fn network(mut self, net: NetworkConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Overrides the virtual cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides the write policy (default: allow all).
    pub fn policy(mut self, policy: WritePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn make_signer(scheme: SignatureScheme, mss_height: u8, seed: u64, label: &str) -> Box<dyn Signer> {
        match scheme {
            SignatureScheme::Hmac => {
                Box::new(HmacSigner::from_seed_label(seed, label.as_bytes()))
            }
            SignatureScheme::Mss => {
                let mut drbg = HmacDrbg::from_seed_label(seed, label.as_bytes());
                let key_seed: [u8; 32] = drbg.gen_array();
                Box::new(
                    MssSigner::generate(key_seed, mss_height)
                        .expect("valid MSS height"),
                )
            }
        }
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SystemConfig::validate`].
    pub fn build(self) -> System {
        let cfg = self.config;
        cfg.validate().unwrap_or_else(|e| panic!("bad config: {e}"));
        let seed = cfg.seed;

        let net = self.net.unwrap_or_else(|| {
            NetworkConfig::new(LinkModel::wan(SimDuration::from_millis(10)))
        });
        let mut world: World<Msg> = World::new(seed, net, self.costs);

        // Deterministic node-id layout (spawn order below must match):
        // masters, slaves, directory, clients.
        let nm = cfg.n_masters;
        let ns = cfg.n_slaves;
        let master_ids: Vec<NodeId> = (0..nm).map(|i| NodeId(i as u32)).collect();
        let slave_ids: Vec<NodeId> = (0..ns).map(|i| NodeId((nm + i) as u32)).collect();
        let directory_id = NodeId((nm + ns) as u32);
        let client_ids: Vec<NodeId> =
            (0..cfg.n_clients).map(|i| NodeId((nm + ns + 1 + i) as u32)).collect();

        // The content owner and its key.
        let mut owner_signer =
            Self::make_signer(cfg.signer, cfg.mss_height, seed, "content-owner");
        let content_key = owner_signer.public_key();
        let content_id = content_id_for_key(&content_key);

        // Per-node signers and public keys.
        let mut master_signers: Vec<Box<dyn Signer>> = (0..nm)
            .map(|i| Self::make_signer(cfg.signer, cfg.mss_height, seed, &format!("master-{i}")))
            .collect();
        let master_keys: HashMap<NodeId, PublicKey> = master_ids
            .iter()
            .zip(master_signers.iter())
            .map(|(id, s)| (*id, s.public_key()))
            .collect();
        let slave_signers: Vec<Box<dyn Signer>> = (0..ns)
            .map(|i| Self::make_signer(cfg.signer, cfg.mss_height, seed, &format!("slave-{i}")))
            .collect();
        let slave_keys: HashMap<NodeId, PublicKey> = slave_ids
            .iter()
            .zip(slave_signers.iter())
            .map(|(id, s)| (*id, s.public_key()))
            .collect();

        // Master certificates signed with the content key (Section 2).
        let master_certs: Vec<Certificate> = master_ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                Certificate::issue(
                    CertificateBody {
                        serial: i as u64 + 1,
                        role: CertRole::Master,
                        subject_addr: format!("master-{i}"),
                        subject_key: master_keys[id],
                        issued_at_us: 0,
                        content_id,
                    },
                    owner_signer.as_mut(),
                )
                .expect("owner cert issuance")
            })
            .collect();

        // Slave assignment: the initial auditor (highest rank) gets none.
        let auditor_rank = nm - 1;
        let eligible: Vec<usize> = (0..nm).filter(|&r| r != auditor_rank).collect();
        let mut assignment: Vec<Vec<NodeId>> = vec![Vec::new(); nm];
        let mut slave_owner: HashMap<NodeId, MemberId> = HashMap::new();
        for (i, sid) in slave_ids.iter().enumerate() {
            let owner = eligible[i % eligible.len()];
            assignment[owner].push(*sid);
            slave_owner.insert(*sid, MemberId(owner as u32));
        }

        // Initial content, identical everywhere.
        let initial_db = self.workload.dataset.build();

        // Spawn masters (ranks 0..nm).
        for (rank, signer) in master_signers.drain(..).enumerate() {
            let process = MasterProcess::new(
                cfg.clone(),
                MemberId(rank as u32),
                master_ids.clone(),
                master_keys.clone(),
                signer,
                content_id,
                initial_db.clone(),
                self.policy.clone(),
                assignment[rank].clone(),
                slave_keys.clone(),
                slave_owner.clone(),
                directory_id,
            );
            let id = world.spawn(format!("master-{rank}"), Box::new(process));
            debug_assert_eq!(id, master_ids[rank]);
        }

        // Spawn slaves.
        let mut behaviors = self.behaviors;
        for (i, signer) in slave_signers.into_iter().enumerate() {
            let process = SlaveProcess::new(
                cfg.clone(),
                initial_db.clone(),
                behaviors[i],
                signer,
                master_keys.clone(),
            );
            let id = world.spawn(format!("slave-{i}"), Box::new(process));
            debug_assert_eq!(id, slave_ids[i]);
        }
        behaviors.clear();

        // Spawn the directory.
        let auditor_node = master_ids[auditor_rank];
        let id = world.spawn(
            "directory",
            Box::new(DirectoryProcess::new(
                master_certs,
                master_ids.clone(),
                auditor_node,
            )),
        );
        debug_assert_eq!(id, directory_id);

        // Spawn clients.
        // `Workload::validate` bounds writer_fraction at spec level; the
        // clamp keeps direct builder users safe from `ceil` overshoot too.
        let n_writers = (((cfg.n_clients as f64) * self.workload.writer_fraction).ceil() as usize)
            .min(cfg.n_clients);
        for (i, expected_id) in client_ids.iter().enumerate() {
            let process = ClientProcess::new(
                cfg.clone(),
                self.workload.clone(),
                i,
                directory_id,
                content_key,
                i < n_writers,
            );
            let id = world.spawn(format!("client-{i}"), Box::new(process));
            debug_assert_eq!(id, *expected_id);
        }

        System {
            world,
            config: cfg,
            masters: master_ids,
            slaves: slave_ids,
            directory: directory_id,
            clients: client_ids,
            content_key,
            initial_dataset: self.workload.dataset,
        }
    }
}

/// A running deployment: the world plus the node roster.
pub struct System {
    /// The simulation world.
    pub world: World<Msg>,
    /// The configuration it was built with.
    pub config: SystemConfig,
    /// Master nodes, by rank.
    pub masters: Vec<NodeId>,
    /// Slave nodes, by index.
    pub slaves: Vec<NodeId>,
    /// The directory node.
    pub directory: NodeId,
    /// Client nodes, by index.
    pub clients: Vec<NodeId>,
    /// The content public key.
    pub content_key: PublicKey,
    /// Dataset spec the content was generated from.
    pub initial_dataset: DatasetSpec,
}

impl System {
    /// Runs the world for `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Runs the world until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Crashes a master at time `at` (fault injection for E12).
    pub fn crash_master_at(&mut self, at: SimTime, rank: usize) {
        let node = self.masters[rank];
        self.world.schedule_crash(at, node);
    }

    /// Typed access to a master by rank.
    pub fn with_master<R>(&mut self, rank: usize, f: impl FnOnce(&mut MasterProcess) -> R) -> R {
        let node = self.masters[rank];
        self.world.with_process::<MasterProcess, R>(node, f)
    }

    /// Typed access to a slave by index.
    pub fn with_slave<R>(&mut self, index: usize, f: impl FnOnce(&mut SlaveProcess) -> R) -> R {
        let node = self.slaves[index];
        self.world.with_process::<SlaveProcess, R>(node, f)
    }

    /// Typed access to a client by index.
    pub fn with_client<R>(&mut self, index: usize, f: impl FnOnce(&mut ClientProcess) -> R) -> R {
        let node = self.clients[index];
        self.world.with_process::<ClientProcess, R>(node, f)
    }

    /// Harvests statistics (metrics + the lie/acceptance oracle join).
    pub fn stats(&mut self) -> SystemStats {
        SystemStats::collect(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_spawns_expected_roster() {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 5,
            ..SystemConfig::default()
        };
        let sys = SystemBuilder::new(cfg).build();
        // masters + slaves + directory + clients
        assert_eq!(sys.world.node_count(), 3 + 4 + 1 + 5);
        assert_eq!(sys.masters.len(), 3);
        assert_eq!(sys.clients.len(), 5);
    }

    #[test]
    fn initial_auditor_has_no_slaves() {
        let cfg = SystemConfig::default();
        let nm = cfg.n_masters;
        let mut sys = SystemBuilder::new(cfg).build();
        let auditor_slaves = sys.with_master(nm - 1, |m| m.slaves().len());
        assert_eq!(auditor_slaves, 0);
        let total: usize = (0..nm - 1)
            .map(|r| sys.with_master(r, |m| m.slaves().len()))
            .sum();
        assert_eq!(total, sys.slaves.len());
    }

    #[test]
    fn replicas_start_identical() {
        let mut sys = SystemBuilder::new(SystemConfig::default()).build();
        let d0 = sys.with_master(0, |m| m.state_digest());
        let d1 = sys.with_master(1, |m| m.state_digest());
        let ds = sys.with_slave(0, |s| s.state_digest());
        assert_eq!(d0, d1);
        assert_eq!(d0, ds);
    }
}
