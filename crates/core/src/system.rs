//! Wires a full deployment into a simulation world.
//!
//! The [`SystemBuilder`] plays the *content owner*: it generates the
//! content key, signs shard-scoped master certificates, splits the
//! initial data content across shards (each shard's replicas load only
//! their slice), assigns each shard's slaves to that shard's masters
//! (the highest-ranked master of every subgroup is its initial elected
//! auditor and gets none), and spawns the directory, every shard's
//! masters and slaves, and the clients into an `sdr-sim` [`World`].
//!
//! Node layout is shard-major and collapses to the classic single-group
//! layout when `n_shards == 1`: all masters (shard 0 ranks, then shard 1
//! ranks, …), all slaves (shard-major), the directory, then the clients.

use crate::client::ClientProcess;
use crate::config::SystemConfig;
use crate::dataset::DatasetSpec;
use crate::directory::{DirectoryProcess, ShardEntry};
use crate::master::MasterProcess;
use crate::messages::Msg;
use crate::shard::ShardMap;
use crate::slave::{SlaveBehavior, SlaveProcess};
use crate::stats::SystemStats;
use crate::workload::Workload;
use crate::acl::WritePolicy;
use sdr_broadcast::MemberId;
use sdr_crypto::{
    content_id_for_key, CertRole, Certificate, CertificateBody, HmacDrbg, HmacSigner, MssSigner,
    PublicKey, SignatureScheme, Signer,
};
use sdr_sim::{CostModel, LinkModel, NetworkConfig, NodeId, SimDuration, SimTime, World};
use std::collections::HashMap;

/// Builder for a complete simulated deployment.
pub struct SystemBuilder {
    config: SystemConfig,
    workload: Workload,
    behaviors: Vec<SlaveBehavior>,
    net: Option<NetworkConfig>,
    costs: CostModel,
    policy: WritePolicy,
}

impl SystemBuilder {
    /// Starts a builder from a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let behaviors =
            vec![SlaveBehavior::Honest; config.n_slaves * config.n_shards.max(1)];
        SystemBuilder {
            config,
            workload: Workload::default(),
            behaviors,
            net: None,
            costs: CostModel::standard(),
            policy: WritePolicy::allow_all(),
        }
    }

    /// Sets the workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Sets one slave's behaviour (`index` is the global, shard-major
    /// slave index).
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a valid slave index for the
    /// configuration this builder was created with.
    pub fn slave_behavior(mut self, index: usize, b: SlaveBehavior) -> Self {
        assert!(
            index < self.behaviors.len(),
            "slave_behavior: index {index} out of range (total slaves = {})",
            self.behaviors.len()
        );
        self.behaviors[index] = b;
        self
    }

    /// Sets every slave's behaviour at once (length must match the total
    /// slave count, `n_shards * n_slaves`).
    pub fn behaviors(mut self, b: Vec<SlaveBehavior>) -> Self {
        assert_eq!(b.len(), self.behaviors.len());
        self.behaviors = b;
        self
    }

    /// Overrides the network model (default: 10 ms WAN-ish links).
    pub fn network(mut self, net: NetworkConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Overrides the virtual cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides the write policy (default: allow all).
    pub fn policy(mut self, policy: WritePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn make_signer(scheme: SignatureScheme, mss_height: u8, seed: u64, label: &str) -> Box<dyn Signer> {
        match scheme {
            SignatureScheme::Hmac => {
                Box::new(HmacSigner::from_seed_label(seed, label.as_bytes()))
            }
            SignatureScheme::Mss => {
                let mut drbg = HmacDrbg::from_seed_label(seed, label.as_bytes());
                let key_seed: [u8; 32] = drbg.gen_array();
                Box::new(
                    MssSigner::generate(key_seed, mss_height)
                        .expect("valid MSS height"),
                )
            }
        }
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SystemConfig::validate`].
    pub fn build(self) -> System {
        let cfg = self.config;
        cfg.validate().unwrap_or_else(|e| panic!("bad config: {e}"));
        let seed = cfg.seed;
        let n_shards = cfg.n_shards;
        let map = ShardMap::new(n_shards, &self.workload.dataset);

        let net = self.net.unwrap_or_else(|| {
            NetworkConfig::new(LinkModel::wan(SimDuration::from_millis(10)))
        });
        let mut world: World<Msg> = World::new(seed, net, self.costs);

        // Deterministic shard-major node-id layout (spawn order below
        // must match): all masters, all slaves, directory, clients.
        let nm = cfg.n_masters;
        let ns = cfg.n_slaves;
        let total_masters = nm * n_shards;
        let total_slaves = ns * n_shards;
        let master_ids: Vec<NodeId> = (0..total_masters).map(|i| NodeId(i as u32)).collect();
        let slave_ids: Vec<NodeId> =
            (0..total_slaves).map(|i| NodeId((total_masters + i) as u32)).collect();
        let directory_id = NodeId((total_masters + total_slaves) as u32);
        let client_ids: Vec<NodeId> = (0..cfg.n_clients)
            .map(|i| NodeId((total_masters + total_slaves + 1 + i) as u32))
            .collect();

        // The content owner and its key.
        let mut owner_signer =
            Self::make_signer(cfg.signer, cfg.mss_height, seed, "content-owner");
        let content_key = owner_signer.public_key();
        let content_id = content_id_for_key(&content_key);

        // Per-node signers and public keys (labels use the global,
        // shard-major index so `n_shards == 1` reproduces the classic
        // key material exactly).
        let mut master_signers: Vec<Box<dyn Signer>> = (0..total_masters)
            .map(|i| Self::make_signer(cfg.signer, cfg.mss_height, seed, &format!("master-{i}")))
            .collect();
        let master_keys_all: Vec<PublicKey> =
            master_signers.iter().map(|s| s.public_key()).collect();
        let slave_signers: Vec<Box<dyn Signer>> = (0..total_slaves)
            .map(|i| Self::make_signer(cfg.signer, cfg.mss_height, seed, &format!("slave-{i}")))
            .collect();
        let slave_keys_all: Vec<PublicKey> =
            slave_signers.iter().map(|s| s.public_key()).collect();

        // Master certificates signed with the content key (Section 2),
        // carrying the shard-scope claim.
        let master_certs: Vec<Certificate> = (0..total_masters)
            .map(|i| {
                Certificate::issue(
                    CertificateBody {
                        serial: i as u64 + 1,
                        role: CertRole::Master,
                        subject_addr: format!("master-{i}"),
                        subject_key: master_keys_all[i],
                        issued_at_us: 0,
                        content_id,
                        shard: (i / nm) as u32,
                    },
                    owner_signer.as_mut(),
                )
                .expect("owner cert issuance")
            })
            .collect();

        // Per-shard rosters, keys, and slave assignment (the shard's
        // initial auditor — highest rank — gets none).
        let mut shard_master_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(n_shards);
        let mut shard_master_keys: Vec<HashMap<NodeId, PublicKey>> =
            Vec::with_capacity(n_shards);
        let mut shard_slave_keys: Vec<HashMap<NodeId, PublicKey>> =
            Vec::with_capacity(n_shards);
        let mut shard_assignment: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(n_shards);
        let mut shard_slave_owner: Vec<HashMap<NodeId, MemberId>> =
            Vec::with_capacity(n_shards);
        let auditor_rank = nm - 1;
        for s in 0..n_shards {
            let m_nodes: Vec<NodeId> = (0..nm).map(|r| master_ids[s * nm + r]).collect();
            let m_keys: HashMap<NodeId, PublicKey> = m_nodes
                .iter()
                .enumerate()
                .map(|(r, id)| (*id, master_keys_all[s * nm + r]))
                .collect();
            let s_nodes: Vec<NodeId> = (0..ns).map(|i| slave_ids[s * ns + i]).collect();
            let s_keys: HashMap<NodeId, PublicKey> = s_nodes
                .iter()
                .enumerate()
                .map(|(i, id)| (*id, slave_keys_all[s * ns + i]))
                .collect();

            let eligible: Vec<usize> = (0..nm).filter(|&r| r != auditor_rank).collect();
            let mut assignment: Vec<Vec<NodeId>> = vec![Vec::new(); nm];
            let mut slave_owner: HashMap<NodeId, MemberId> = HashMap::new();
            for (i, sid) in s_nodes.iter().enumerate() {
                let owner = eligible[i % eligible.len()];
                assignment[owner].push(*sid);
                slave_owner.insert(*sid, MemberId(owner as u32));
            }

            shard_master_nodes.push(m_nodes);
            shard_master_keys.push(m_keys);
            shard_slave_keys.push(s_keys);
            shard_assignment.push(assignment);
            shard_slave_owner.push(slave_owner);
        }

        // Initial content: each shard's replicas hold only their slice
        // (identical across the shard's masters and slaves); one
        // generator pass builds every slice.
        let shard_dbs = self.workload.dataset.build_shards(&map);

        // Spawn masters, shard-major.
        {
            let mut signers = master_signers.drain(..);
            for s in 0..n_shards {
                for rank in 0..nm {
                    let signer = signers.next().expect("one signer per master");
                    let process = MasterProcess::new(
                        cfg.clone(),
                        s as u32,
                        MemberId(rank as u32),
                        shard_master_nodes[s].clone(),
                        shard_master_keys[s].clone(),
                        signer,
                        content_id,
                        shard_dbs[s].clone(),
                        self.policy.clone(),
                        shard_assignment[s][rank].clone(),
                        shard_slave_keys[s].clone(),
                        shard_slave_owner[s].clone(),
                        directory_id,
                    );
                    let id = world.spawn(format!("master-{}", s * nm + rank), Box::new(process));
                    debug_assert_eq!(id, master_ids[s * nm + rank]);
                }
            }
        }

        // Spawn slaves, shard-major; each knows only its own shard's
        // master keys, so another shard's stamps never anchor it.
        let mut behaviors = self.behaviors;
        for (i, signer) in slave_signers.into_iter().enumerate() {
            let s = i / ns;
            let process = SlaveProcess::new(
                cfg.clone(),
                shard_dbs[s].clone(),
                behaviors[i],
                signer,
                shard_master_keys[s].clone(),
            );
            let id = world.spawn(format!("slave-{i}"), Box::new(process));
            debug_assert_eq!(id, slave_ids[i]);
        }
        behaviors.clear();

        // Spawn the shard-routing directory.
        let entries: Vec<ShardEntry> = (0..n_shards)
            .map(|s| ShardEntry {
                certs: master_certs[s * nm..(s + 1) * nm].to_vec(),
                nodes: shard_master_nodes[s].clone(),
                auditor: shard_master_nodes[s][auditor_rank],
            })
            .collect();
        let id = world.spawn("directory", Box::new(DirectoryProcess::new(entries)));
        debug_assert_eq!(id, directory_id);

        // Spawn clients.
        // `Workload::validate` bounds writer_fraction at spec level; the
        // clamp keeps direct builder users safe from `ceil` overshoot too.
        let n_writers = (((cfg.n_clients as f64) * self.workload.writer_fraction).ceil() as usize)
            .min(cfg.n_clients);
        for (i, expected_id) in client_ids.iter().enumerate() {
            let process = ClientProcess::new(
                cfg.clone(),
                self.workload.clone(),
                i,
                directory_id,
                content_key,
                i < n_writers,
            );
            let id = world.spawn(format!("client-{i}"), Box::new(process));
            debug_assert_eq!(id, *expected_id);
        }

        System {
            world,
            config: cfg,
            map,
            masters: master_ids,
            slaves: slave_ids,
            directory: directory_id,
            clients: client_ids,
            content_key,
            initial_dataset: self.workload.dataset,
        }
    }
}

/// A running deployment: the world plus the node roster.
pub struct System {
    /// The simulation world.
    pub world: World<Msg>,
    /// The configuration it was built with.
    pub config: SystemConfig,
    /// The shard routing map the deployment was built with.
    pub map: ShardMap,
    /// Master nodes, shard-major (`shard * n_masters + rank`).
    pub masters: Vec<NodeId>,
    /// Slave nodes, shard-major (`shard * n_slaves + index`).
    pub slaves: Vec<NodeId>,
    /// The directory node.
    pub directory: NodeId,
    /// Client nodes, by index.
    pub clients: Vec<NodeId>,
    /// The content public key.
    pub content_key: PublicKey,
    /// Dataset spec the content was generated from.
    pub initial_dataset: DatasetSpec,
}

impl System {
    /// Runs the world for `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Runs the world until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Number of shards in this deployment.
    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// Global master index of `(shard, rank)`.
    pub fn master_index(&self, shard: usize, rank: usize) -> usize {
        shard * self.config.n_masters + rank
    }

    /// Global slave index of `(shard, index_in_shard)`.
    pub fn slave_index(&self, shard: usize, index: usize) -> usize {
        shard * self.config.n_slaves + index
    }

    /// Crashes a master at time `at` (fault injection for E12).
    /// `rank` is the global, shard-major master index.
    pub fn crash_master_at(&mut self, at: SimTime, rank: usize) {
        let node = self.masters[rank];
        self.world.schedule_crash(at, node);
    }

    /// Typed access to a master by global (shard-major) index.
    pub fn with_master<R>(&mut self, rank: usize, f: impl FnOnce(&mut MasterProcess) -> R) -> R {
        let node = self.masters[rank];
        self.world.with_process::<MasterProcess, R>(node, f)
    }

    /// Typed access to a slave by global (shard-major) index.
    pub fn with_slave<R>(&mut self, index: usize, f: impl FnOnce(&mut SlaveProcess) -> R) -> R {
        let node = self.slaves[index];
        self.world.with_process::<SlaveProcess, R>(node, f)
    }

    /// Typed access to a client by index.
    pub fn with_client<R>(&mut self, index: usize, f: impl FnOnce(&mut ClientProcess) -> R) -> R {
        let node = self.clients[index];
        self.world.with_process::<ClientProcess, R>(node, f)
    }

    /// Harvests statistics (metrics + the lie/acceptance oracle join).
    pub fn stats(&mut self) -> SystemStats {
        SystemStats::collect(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_spawns_expected_roster() {
        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 4,
            n_clients: 5,
            ..SystemConfig::default()
        };
        let sys = SystemBuilder::new(cfg).build();
        // masters + slaves + directory + clients
        assert_eq!(sys.world.node_count(), 3 + 4 + 1 + 5);
        assert_eq!(sys.masters.len(), 3);
        assert_eq!(sys.clients.len(), 5);
    }

    #[test]
    fn sharded_build_spawns_one_subgroup_per_shard() {
        let cfg = SystemConfig {
            n_shards: 3,
            n_masters: 2,
            n_slaves: 2,
            n_clients: 4,
            ..SystemConfig::default()
        };
        let mut sys = SystemBuilder::new(cfg).build();
        assert_eq!(sys.masters.len(), 6);
        assert_eq!(sys.slaves.len(), 6);
        assert_eq!(sys.world.node_count(), 6 + 6 + 1 + 4);
        // Each subgroup knows its own shard and its own auditor rank.
        for shard in 0..3usize {
            for rank in 0..2usize {
                let gi = sys.master_index(shard, rank);
                assert_eq!(sys.with_master(gi, |m| m.shard()), shard as u32);
            }
            let auditor = sys.master_index(shard, 1);
            assert!(sys.with_master(auditor, |m| m.is_auditor()));
            assert_eq!(sys.with_master(auditor, |m| m.slaves().len()), 0);
        }
        // Shard replicas hold different slices: digests differ pairwise.
        let d0 = sys.with_master(0, |m| m.state_digest());
        let d1 = sys.with_master(sys.master_index(1, 0), |m| m.state_digest());
        assert_ne!(d0, d1);
        // But agree within a shard (master vs its slaves).
        let ds = sys.with_slave(0, |s| s.state_digest());
        assert_eq!(d0, ds);
    }

    #[test]
    fn initial_auditor_has_no_slaves() {
        let cfg = SystemConfig::default();
        let nm = cfg.n_masters;
        let mut sys = SystemBuilder::new(cfg).build();
        let auditor_slaves = sys.with_master(nm - 1, |m| m.slaves().len());
        assert_eq!(auditor_slaves, 0);
        let total: usize = (0..nm - 1)
            .map(|r| sys.with_master(r, |m| m.slaves().len()))
            .sum();
        assert_eq!(total, sys.slaves.len());
    }

    #[test]
    fn replicas_start_identical() {
        let mut sys = SystemBuilder::new(SystemConfig::default()).build();
        let d0 = sys.with_master(0, |m| m.state_digest());
        let d1 = sys.with_master(1, |m| m.state_digest());
        let ds = sys.with_slave(0, |s| s.state_digest());
        assert_eq!(d0, d1);
        assert_eq!(d0, ds);
    }
}
