//! Client-side response verification: the two read-acceptance strategies.
//!
//! Every read a client accepts went through exactly one of two pipelines:
//!
//! * **Pledged** ([`verify_pledged_read`]) — Section 3.2's checks for
//!   computed queries: result hash matches the pledge, slave signature
//!   over the pledge, master signature over the version stamp, and stamp
//!   freshness under the client's own `max_latency`.  Acceptance is
//!   provisional: the pledge still goes to the auditor (or a sampled
//!   double-check) because a consistent liar passes all four checks.
//! * **Proof-verified** ([`verify_proof_read`]) — static point reads
//!   (`GetRow`, `ReadFile`): master signature over the *state digest*
//!   stamp, stamp freshness, and an O(log n) Merkle path fold from the
//!   delivered result to the signed digest.  Acceptance is final: a
//!   wrong answer cannot carry a valid proof, so the auditor and the
//!   double-check machinery are skipped entirely.
//!
//! Both pipelines are built from the same helpers and report a
//! structured [`RejectReason`] instead of a bare bool, so metrics,
//! retries, and fallbacks can react to *why* a response died.

use crate::messages::{StateDigestStamp, VersionStamp};
use crate::pledge::Pledge;
use sdr_crypto::PublicKey;
use sdr_sim::{NodeId, SimDuration, SimTime};
use sdr_store::{ProofError, Query, QueryResult, StateProof, StreamProof};

/// Why a read response was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Delivered result does not hash to the pledged value
    /// (inconsistent liar — caught instantly).
    HashMismatch,
    /// Response came from a node the client never set up with.
    UnknownSlave,
    /// The slave's signature over the pledge does not verify.
    BadSlaveSignature,
    /// The master's signature over the (version or digest) stamp does
    /// not verify, or the stamping master is unknown.
    BadStampSignature,
    /// The stamp is older than the client's freshness bound.
    Stale,
    /// The Merkle path proof failed (wrong content, spliced path, or
    /// stale digest) — deterministic lie detection on the proof path.
    BadProof(ProofError),
}

impl RejectReason {
    /// Metric counter this rejection increments.
    pub fn metric(&self) -> &'static str {
        match self {
            RejectReason::HashMismatch => "read.rejected.hash",
            RejectReason::UnknownSlave => "read.rejected.unknown_slave",
            RejectReason::BadSlaveSignature => "read.rejected.sig",
            RejectReason::BadStampSignature => "read.rejected.stamp_sig",
            RejectReason::Stale => "read.rejected.stale",
            RejectReason::BadProof(_) => "read.rejected.proof",
        }
    }
}

/// Which pipeline serves a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStrategy {
    /// Pledge + double-check/audit (computed queries).
    Pledged,
    /// Merkle-path proof against the signed state digest (static point
    /// reads).
    Proof,
}

/// Picks the read strategy for a query: static point lookups, streamed
/// file ranges (which verify chunk-by-chunk against the manifest slice
/// proof), and key-range scans (which verify against an O(log n + k)
/// range proof) take the proof path when it is enabled; everything
/// computed stays pledged.
pub fn strategy_for(query: &Query, proof_reads_enabled: bool) -> ReadStrategy {
    match query {
        Query::GetRow { .. }
        | Query::ReadFile { .. }
        | Query::ReadFileRange { .. }
        | Query::ScanRange { .. }
            if proof_reads_enabled =>
        {
            ReadStrategy::Proof
        }
        _ => ReadStrategy::Pledged,
    }
}

/// The keys and bounds a verification runs against.  In a sharded
/// deployment this is the *owning shard's* environment: only that
/// subgroup's masters and replicas are acceptable signers here.
pub struct VerifyEnv<'a> {
    /// Known masters and their verification keys.
    pub masters: &'a [(NodeId, PublicKey)],
    /// The client's assigned slaves and their verification keys.
    pub slaves: &'a [(NodeId, PublicKey)],
    /// Spare replicas of the same shard (proof-retry targets); their
    /// certificates were verified at setup like the assigned slaves'.
    pub spares: &'a [(NodeId, PublicKey)],
    /// Current simulation time.
    pub now: SimTime,
    /// This client's freshness bound (possibly relaxed; Section 3.2).
    pub max_latency: SimDuration,
}

impl VerifyEnv<'_> {
    fn master_key(&self, master: NodeId) -> Option<&PublicKey> {
        self.masters
            .iter()
            .find(|(n, _)| *n == master)
            .map(|(_, k)| k)
    }

    fn slave_key(&self, slave: NodeId) -> Option<&PublicKey> {
        self.slaves
            .iter()
            .chain(self.spares.iter())
            .find(|(n, _)| *n == slave)
            .map(|(_, k)| k)
    }

    /// Current verification key of `master`, if it belongs to this
    /// shard's subgroup.  Exposed for the client's stamp-verification
    /// cache, whose entries bind the statement to the exact key it
    /// verified under (a key rotation therefore misses, never hits).
    pub fn master_key_of(&self, master: NodeId) -> Option<&PublicKey> {
        self.master_key(master)
    }

    /// Whether `slave` is an acceptable proof responder here (an
    /// assigned replica or a setup-issued spare of the shard).
    pub fn knows_slave(&self, slave: NodeId) -> bool {
        self.slave_key(slave).is_some()
    }
}

/// Step: the delivered result hashes to the pledged value.
pub fn check_result_hash(pledge: &Pledge, result: &QueryResult) -> Result<(), RejectReason> {
    if pledge.matches_result(result) {
        Ok(())
    } else {
        Err(RejectReason::HashMismatch)
    }
}

/// Step: the responding slave is known and its pledge signature holds.
pub fn check_slave_signature(
    env: &VerifyEnv<'_>,
    from: NodeId,
    pledge: &Pledge,
) -> Result<(), RejectReason> {
    let key = env.slave_key(from).ok_or(RejectReason::UnknownSlave)?;
    pledge
        .verify_signature(key)
        .map_err(|_| RejectReason::BadSlaveSignature)
}

/// Step: the version stamp is signed by a known master.
pub fn check_version_stamp(
    env: &VerifyEnv<'_>,
    stamp: &VersionStamp,
) -> Result<(), RejectReason> {
    env.master_key(stamp.master)
        .and_then(|k| stamp.verify(k).ok())
        .ok_or(RejectReason::BadStampSignature)
}

/// Step: the digest stamp is signed by a known master.
pub fn check_digest_stamp(
    env: &VerifyEnv<'_>,
    stamp: &StateDigestStamp,
) -> Result<(), RejectReason> {
    env.master_key(stamp.master)
        .and_then(|k| stamp.verify(k).ok())
        .ok_or(RejectReason::BadStampSignature)
}

/// Step: a stamp timestamp is within the client's freshness bound.
pub fn check_freshness(env: &VerifyEnv<'_>, stamped_at: SimTime) -> Result<(), RejectReason> {
    if env.now.since(stamped_at) <= env.max_latency {
        Ok(())
    } else {
        Err(RejectReason::Stale)
    }
}

/// Full pledged-read verification (Section 3.2's client checks, in
/// order: hash, slave signature, stamp signature, freshness).
pub fn verify_pledged_read(
    env: &VerifyEnv<'_>,
    from: NodeId,
    result: &QueryResult,
    pledge: &Pledge,
) -> Result<(), RejectReason> {
    check_result_hash(pledge, result)?;
    check_slave_signature(env, from, pledge)?;
    check_version_stamp(env, &pledge.stamp)?;
    check_freshness(env, pledge.stamp.timestamp)
}

/// Full proof-read verification: known responder, digest-stamp
/// signature, freshness, then the Merkle path fold from the delivered
/// result to the signed digest.
pub fn verify_proof_read(
    env: &VerifyEnv<'_>,
    from: NodeId,
    query: &Query,
    result: &QueryResult,
    proof: &StateProof,
    stamp: &StateDigestStamp,
) -> Result<(), RejectReason> {
    if env.slave_key(from).is_none() {
        return Err(RejectReason::UnknownSlave);
    }
    check_digest_stamp(env, stamp)?;
    check_freshness(env, stamp.timestamp)?;
    proof
        .verify_result(&stamp.digest, stamp.version, query, result)
        .map_err(RejectReason::BadProof)
}

/// Proof-read verification tail for a stamp whose master signature is
/// already trusted (the client's stamp-verification cache memoizes the
/// expensive signature check per statement).  The caller has verified
/// the responder and the stamp signature; freshness is **not** cached —
/// the same stamp statement goes stale as time passes, so it re-checks
/// on every reply — and the Merkle fold always runs, because it is what
/// ties *this* result to the signed digest.
pub fn verify_proof_read_stampless(
    env: &VerifyEnv<'_>,
    query: &Query,
    result: &QueryResult,
    proof: &StateProof,
    stamp: &StateDigestStamp,
) -> Result<(), RejectReason> {
    check_freshness(env, stamp.timestamp)?;
    proof
        .verify_result(&stamp.digest, stamp.version, query, result)
        .map_err(RejectReason::BadProof)
}

/// Stream-header verification tail for an already-trusted stamp
/// signature: path shape, freshness, and the manifest fold (the
/// counterpart of [`verify_proof_read_stampless`] for streams).
pub fn verify_stream_header_stampless(
    env: &VerifyEnv<'_>,
    query: &Query,
    proof: &StreamProof,
    stamp: &StateDigestStamp,
) -> Result<(), RejectReason> {
    let Query::ReadFileRange { path, .. } = query else {
        return Err(RejectReason::BadProof(ProofError::ShapeMismatch));
    };
    if proof.path != *path {
        return Err(RejectReason::BadProof(ProofError::ShapeMismatch));
    }
    check_freshness(env, stamp.timestamp)?;
    proof
        .verify_header(&stamp.digest, stamp.version)
        .map_err(RejectReason::BadProof)
}

/// Stream-header verification: known responder, the proof is about the
/// requested path, digest-stamp signature, freshness, then the Merkle
/// fold from the chunk manifest to the signed digest.  After this
/// passes, each arriving chunk is checked with
/// [`StreamProof::verify_chunk`] — no further trust in the slave, and
/// no buffering of the file.
pub fn verify_stream_header(
    env: &VerifyEnv<'_>,
    from: NodeId,
    query: &Query,
    proof: &StreamProof,
    stamp: &StateDigestStamp,
) -> Result<(), RejectReason> {
    if env.slave_key(from).is_none() {
        return Err(RejectReason::UnknownSlave);
    }
    let Query::ReadFileRange { path, .. } = query else {
        return Err(RejectReason::BadProof(ProofError::ShapeMismatch));
    };
    if proof.path != *path {
        return Err(RejectReason::BadProof(ProofError::ShapeMismatch));
    }
    check_digest_stamp(env, stamp)?;
    check_freshness(env, stamp.timestamp)?;
    proof
        .verify_header(&stamp.digest, stamp.version)
        .map_err(RejectReason::BadProof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashAlgo;
    use crate::pledge::ResultHash;
    use sdr_crypto::{HmacSigner, Signer as _};
    use sdr_store::{Database, Document, UpdateOp, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable {
                table: "t".into(),
                indexes: vec![],
            },
            UpdateOp::Insert {
                table: "t".into(),
                key: 7,
                doc: Document::new().with("v", 7i64),
            },
        ])
        .unwrap();
        db
    }

    struct Fixture {
        master: HmacSigner,
        slave: HmacSigner,
        masters: Vec<(NodeId, PublicKey)>,
        slaves: Vec<(NodeId, PublicKey)>,
    }

    fn fixture() -> Fixture {
        let master = HmacSigner::from_seed_label(1, b"m");
        let slave = HmacSigner::from_seed_label(2, b"s");
        Fixture {
            masters: vec![(NodeId(0), master.public_key())],
            slaves: vec![(NodeId(5), slave.public_key())],
            master,
            slave,
        }
    }

    fn env<'a>(f: &'a Fixture, now_ms: u64) -> VerifyEnv<'a> {
        VerifyEnv {
            masters: &f.masters,
            slaves: &f.slaves,
            spares: &[],
            now: SimTime::from_millis(now_ms),
            max_latency: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn strategy_picks_proof_only_for_static_reads() {
        let get = Query::GetRow {
            table: "t".into(),
            key: 1,
        };
        let grep = Query::Grep {
            pattern: "x".into(),
            prefix: "/".into(),
        };
        assert_eq!(strategy_for(&get, true), ReadStrategy::Proof);
        assert_eq!(strategy_for(&get, false), ReadStrategy::Pledged);
        assert_eq!(strategy_for(&grep, true), ReadStrategy::Pledged);
        assert_eq!(
            strategy_for(&Query::ReadFile { path: "/a".into() }, true),
            ReadStrategy::Proof
        );
        let range = Query::ReadFileRange {
            path: "/a".into(),
            offset: 0,
            len: 10,
        };
        assert_eq!(strategy_for(&range, true), ReadStrategy::Proof);
        assert_eq!(strategy_for(&range, false), ReadStrategy::Pledged);
        let scan = Query::ScanRange {
            table: "t".into(),
            start: 1,
            end: 100,
        };
        assert_eq!(strategy_for(&scan, true), ReadStrategy::Proof);
        assert_eq!(strategy_for(&scan, false), ReadStrategy::Pledged);
        // The legacy limit-truncatable Range stays pledged: truncation
        // makes its answer a computed result, not a provable slice.
        let legacy = Query::Range {
            table: "t".into(),
            low: 1,
            high: 100,
            limit: Some(10),
        };
        assert_eq!(strategy_for(&legacy, true), ReadStrategy::Pledged);
    }

    #[test]
    fn range_scan_pipeline_accepts_complete_answers_and_kills_omissions() {
        let mut f = fixture();
        let mut db = db();
        let ops: Vec<UpdateOp> = (10..30)
            .map(|k| UpdateOp::Insert {
                table: "t".into(),
                key: k,
                doc: Document::new().with("v", k as i64),
            })
            .collect();
        db.apply_write(&ops).unwrap();
        let query = Query::ScanRange {
            table: "t".into(),
            start: 12,
            end: 25,
        };
        let (result, _) = sdr_store::execute(&db, &query).unwrap();
        let proof = db.prove_scan("t", 12, 25).unwrap();
        let stamp = StateDigestStamp::build(
            db.version(),
            db.state_digest(),
            SimTime::from_millis(100),
            NodeId(0),
            &mut f.master,
        )
        .unwrap();

        verify_proof_read(&env(&f, 200), NodeId(5), &query, &result, &proof, &stamp).unwrap();

        // Omitting a row from the middle of the scan is caught — range
        // proofs prove completeness, not just membership.
        let QueryResult::Rows(rows) = &result else { panic!("rows") };
        let mut omitted = rows.clone();
        omitted.remove(5);
        assert!(matches!(
            verify_proof_read(
                &env(&f, 200),
                NodeId(5),
                &query,
                &QueryResult::Rows(omitted),
                &proof,
                &stamp
            ),
            Err(RejectReason::BadProof(_))
        ));
        // Same gates as point proofs: staleness and unknown responder.
        assert_eq!(
            verify_proof_read(&env(&f, 2_000), NodeId(5), &query, &result, &proof, &stamp),
            Err(RejectReason::Stale)
        );
        assert_eq!(
            verify_proof_read(&env(&f, 200), NodeId(99), &query, &result, &proof, &stamp),
            Err(RejectReason::UnknownSlave)
        );
    }

    #[test]
    fn stream_header_pipeline_checks_path_stamp_and_fold() {
        let mut f = fixture();
        let mut db = db();
        let contents: String = (0..800).map(|l| format!("line {l:04} of streamed data\n")).collect();
        db.apply_write(&[UpdateOp::WriteFile {
            path: "/big".into(),
            contents: contents.clone(),
        }])
        .unwrap();
        let query = Query::ReadFileRange {
            path: "/big".into(),
            offset: 0,
            len: contents.len() as u64,
        };
        let proof = db.prove_stream("/big", 0, contents.len() as u64);
        let stamp = StateDigestStamp::build(
            db.version(),
            db.state_digest(),
            SimTime::from_millis(100),
            NodeId(0),
            &mut f.master,
        )
        .unwrap();

        verify_stream_header(&env(&f, 200), NodeId(5), &query, &proof, &stamp).unwrap();
        // Chunks then verify individually against the manifest slice.
        let slice = proof.slice.as_ref().unwrap();
        let mut off = 0usize;
        for (i, e) in slice.entries.iter().enumerate() {
            proof
                .verify_chunk(i, &contents.as_bytes()[off..off + e.len as usize])
                .unwrap();
            off += e.len as usize;
        }

        // A proof for a different path is not accepted for this query.
        let wrong_path = Query::ReadFileRange {
            path: "/other".into(),
            offset: 0,
            len: 8,
        };
        assert!(matches!(
            verify_stream_header(&env(&f, 200), NodeId(5), &wrong_path, &proof, &stamp),
            Err(RejectReason::BadProof(_))
        ));
        // Unknown responder, forged stamp, staleness — same gates as
        // point-read proofs.
        assert_eq!(
            verify_stream_header(&env(&f, 200), NodeId(99), &query, &proof, &stamp),
            Err(RejectReason::UnknownSlave)
        );
        let mut bad_stamp = stamp.clone();
        bad_stamp.version += 1;
        assert_eq!(
            verify_stream_header(&env(&f, 200), NodeId(5), &query, &proof, &bad_stamp),
            Err(RejectReason::BadStampSignature)
        );
        assert_eq!(
            verify_stream_header(&env(&f, 2_000), NodeId(5), &query, &proof, &stamp),
            Err(RejectReason::Stale)
        );
    }

    #[test]
    fn pledged_pipeline_reports_each_failure() {
        let mut f = fixture();
        let query = Query::GetRow {
            table: "t".into(),
            key: 7,
        };
        let result = QueryResult::Scalar(Value::Int(9));
        let stamp =
            VersionStamp::build(1, SimTime::from_millis(100), NodeId(0), &mut f.master).unwrap();
        let pledge = Pledge::build(
            query,
            ResultHash::of(&result, HashAlgo::Sha1),
            stamp,
            NodeId(5),
            &mut f.slave,
        )
        .unwrap();

        verify_pledged_read(&env(&f, 200), NodeId(5), &result, &pledge).unwrap();

        // Wrong result → hash mismatch.
        let wrong = QueryResult::Scalar(Value::Int(10));
        assert_eq!(
            verify_pledged_read(&env(&f, 200), NodeId(5), &wrong, &pledge),
            Err(RejectReason::HashMismatch)
        );
        // Unknown responder.
        assert_eq!(
            verify_pledged_read(&env(&f, 200), NodeId(99), &result, &pledge),
            Err(RejectReason::UnknownSlave)
        );
        // Tampered stamp → master signature dies.
        let mut forged = pledge.clone();
        forged.stamp.version += 1;
        assert_eq!(
            verify_pledged_read(&env(&f, 200), NodeId(5), &result, &forged),
            Err(RejectReason::BadSlaveSignature)
        );
        // Staleness under the client bound.
        assert_eq!(
            verify_pledged_read(&env(&f, 2_000), NodeId(5), &result, &pledge),
            Err(RejectReason::Stale)
        );
    }

    #[test]
    fn proof_pipeline_accepts_true_answers_and_kills_lies() {
        let mut f = fixture();
        let db = db();
        let query = Query::GetRow {
            table: "t".into(),
            key: 7,
        };
        let (result, _) = sdr_store::execute(&db, &query).unwrap();
        let proof = db.prove_row("t", 7).unwrap();
        let stamp = StateDigestStamp::build(
            db.version(),
            db.state_digest(),
            SimTime::from_millis(100),
            NodeId(0),
            &mut f.master,
        )
        .unwrap();

        verify_proof_read(&env(&f, 200), NodeId(5), &query, &result, &proof, &stamp).unwrap();

        // A corrupted result cannot carry a valid proof.
        let lie = QueryResult::Rows(vec![(7, Document::new().with("v", 666i64))]);
        assert!(matches!(
            verify_proof_read(&env(&f, 200), NodeId(5), &query, &lie, &proof, &stamp),
            Err(RejectReason::BadProof(_))
        ));
        // A forged digest stamp dies on the master signature.
        let mut bad_stamp = stamp.clone();
        bad_stamp.version += 1;
        assert_eq!(
            verify_proof_read(&env(&f, 200), NodeId(5), &query, &result, &proof, &bad_stamp),
            Err(RejectReason::BadStampSignature)
        );
        // Stale digest stamps are rejected like stale pledges.
        assert_eq!(
            verify_proof_read(&env(&f, 2_000), NodeId(5), &query, &result, &proof, &stamp),
            Err(RejectReason::Stale)
        );
        // Unknown responder.
        assert_eq!(
            verify_proof_read(&env(&f, 200), NodeId(99), &query, &result, &proof, &stamp),
            Err(RejectReason::UnknownSlave)
        );
    }
}
