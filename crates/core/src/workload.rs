//! Workload generation: read/write mixes, query shapes, diurnal load, and
//! greedy clients.

use crate::dataset::{DatasetSpec, CATEGORIES, LOG_WORDS};
use rand::Rng;
use sdr_sim::{SimDuration, SimTime};
use sdr_store::{Aggregate, CmpOp, Document, Predicate, Query, UpdateOp};
use serde::{FromJson, ToJson};

/// Relative weights of query shapes in the read mix.
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct QueryMix {
    /// Point reads by primary key.
    pub get: u32,
    /// Primary-key range scans.
    pub range: u32,
    /// Predicate filters (indexed and scanning).
    pub filter: u32,
    /// Aggregations with and without group-by.
    pub aggregate: u32,
    /// Two-table joins.
    pub join: u32,
    /// File greps (the expensive reads).
    pub grep: u32,
    /// Whole-file reads.
    pub read_file: u32,
    /// Byte-range file reads, streamed chunk-by-chunk on the proof path.
    pub stream: u32,
    /// Proof-verified half-open key scans (`ScanRange`): one
    /// O(log n + k) range proof authenticates the whole answer,
    /// scattered across shards when the range crosses a boundary.
    pub scan: u32,
    /// Rows per sampled `ScanRange` (`0` means 16).
    pub scan_len: u32,
}

impl QueryMix {
    /// A read-mostly catalogue mix: cheap point reads dominate, with a
    /// tail of expensive aggregations and greps.
    pub fn catalogue() -> Self {
        QueryMix {
            get: 50,
            range: 10,
            filter: 15,
            aggregate: 10,
            join: 5,
            grep: 7,
            read_file: 3,
            stream: 0,
            scan: 0,
            scan_len: 0,
        }
    }

    /// A mix dominated by expensive queries (stress for the auditor).
    pub fn heavy() -> Self {
        QueryMix {
            get: 10,
            range: 5,
            filter: 15,
            aggregate: 25,
            join: 15,
            grep: 25,
            read_file: 5,
            stream: 0,
            scan: 0,
            scan_len: 0,
        }
    }

    /// A large-media mix: streamed range reads dominate, point lookups
    /// and greps trail (the `cdn_media` flash-crowd shape).
    pub fn media() -> Self {
        QueryMix {
            get: 20,
            range: 5,
            filter: 5,
            aggregate: 5,
            join: 0,
            grep: 5,
            read_file: 10,
            stream: 50,
            scan: 0,
            scan_len: 0,
        }
    }

    fn total(&self) -> u32 {
        self.get + self.range + self.filter + self.aggregate + self.join + self.grep
            + self.read_file
            + self.stream
            + self.scan
    }

    /// Samples a query against the generated dataset.
    pub fn sample<R: Rng>(&self, rng: &mut R, spec: &DatasetSpec) -> Query {
        let n = spec.n_products.max(1) as u64;
        let mut pick = rng.gen_range(0..self.total());
        let mut take = |w: u32| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        };
        if take(self.get) {
            Query::GetRow {
                table: "products".into(),
                key: 1 + sample_skewed(rng, spec, n),
            }
        } else if take(self.range) {
            let low = 1 + rng.gen_range(0..n);
            Query::Range {
                table: "products".into(),
                low,
                high: low + rng.gen_range(1..25),
                limit: Some(25),
            }
        } else if take(self.filter) {
            if rng.gen_bool(0.5) {
                // Indexed filter.
                let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
                Query::Filter {
                    table: "products".into(),
                    predicate: Predicate::eq("category", cat),
                    projection: None,
                    limit: None,
                }
            } else {
                // Scanning filter.
                let floor = rng.gen_range(0..900) as i64;
                Query::Filter {
                    table: "products".into(),
                    predicate: Predicate::cmp("price", CmpOp::Ge, floor)
                        .and(Predicate::cmp("stock", CmpOp::Gt, 0i64)),
                    projection: Some(vec!["name".into(), "price".into()]),
                    limit: Some(50),
                }
            }
        } else if take(self.aggregate) {
            let (agg, group_by) = match rng.gen_range(0..4) {
                0 => (Aggregate::Count, Some("category".to_string())),
                1 => (Aggregate::Avg("price".into()), Some("category".to_string())),
                2 => (Aggregate::Sum("stock".into()), None),
                _ => (Aggregate::Max("price".into()), None),
            };
            Query::Aggregate {
                table: "products".into(),
                predicate: Predicate::True,
                agg,
                group_by,
            }
        } else if take(self.join) {
            // Products carry their key mirrored in the `id` field; reviews
            // reference it via `product_id`.
            Query::Join {
                left: "products".into(),
                right: "reviews".into(),
                left_field: "id".into(),
                right_field: "product_id".into(),
                predicate: Predicate::cmp("r.stars", CmpOp::Ge, 4i64),
                limit: Some(100),
            }
        } else if take(self.grep) {
            let word = LOG_WORDS[rng.gen_range(0..LOG_WORDS.len())];
            Query::Grep {
                pattern: word.to_string(),
                prefix: "/docs".into(),
            }
        } else if take(self.read_file) {
            Query::ReadFile {
                path: format!(
                    "/docs/file-{:03}.log",
                    sample_skewed(rng, spec, spec.n_files.max(1) as u64)
                ),
            }
        } else if take(self.scan) {
            // Half-open primary-key scan, answered under one range proof.
            let len = if self.scan_len == 0 { 16 } else { self.scan_len } as u64;
            let len = len.min(n);
            let start = 1 + sample_skewed(rng, spec, (n - len).max(1));
            Query::ScanRange {
                table: "products".into(),
                start,
                end: start + len,
            }
        } else {
            // Byte-range read somewhere inside the file (generated lines
            // are ~30-40 bytes, so scale the window to the file's shape).
            let approx_len = (spec.lines_per_file.max(1) as u64) * 36;
            let offset = rng.gen_range(0..approx_len.max(2) / 2);
            Query::ReadFileRange {
                path: format!(
                    "/docs/file-{:03}.log",
                    sample_skewed(rng, spec, spec.n_files.max(1) as u64)
                ),
                offset,
                len: rng.gen_range(512..8192),
            }
        }
    }
}

/// Draws an index in `0..n`, biased toward the dataset's hot set: with
/// probability `spec.skew` the draw lands uniformly inside the first
/// `ceil(n × hot_fraction)` entries (at least one), otherwise uniformly
/// over all of `0..n`.  The bias coin is only flipped when `skew > 0`,
/// so legacy workloads (`skew = 0`) consume exactly the pre-skew RNG
/// stream and stay byte-identical.
fn sample_skewed<R: Rng>(rng: &mut R, spec: &DatasetSpec, n: u64) -> u64 {
    if spec.skew > 0.0 && rng.gen::<f64>() < spec.skew {
        let hot = ((n as f64 * spec.hot_fraction).ceil() as u64).clamp(1, n);
        rng.gen_range(0..hot)
    } else {
        rng.gen_range(0..n)
    }
}

/// Diurnal load modulation (Section 3.4's "daily peak patterns … few
/// requests at 3AM").
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct DiurnalPattern {
    /// Length of one simulated "day".
    pub period: SimDuration,
    /// Trough rate as a fraction of peak (e.g. 0.1 = night is 10% of peak).
    pub trough: f64,
}

impl DiurnalPattern {
    /// Rate multiplier at time `t` (1.0 at midday peak, `trough` at t=0).
    pub fn multiplier(&self, t: SimTime) -> f64 {
        let phase = (t.as_micros() % self.period.as_micros()) as f64
            / self.period.as_micros() as f64;
        let wave = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
        self.trough + (1.0 - self.trough) * wave
    }
}

/// Client session churn: participating clients alternate between an
/// online session and an offline gap, redoing the setup phase (directory
/// lookup + slave assignment) on every rejoin — the membership stress of
/// a planet-scale CDN where edge clients come and go all day.
#[derive(Clone, Copy, Debug, ToJson, FromJson)]
pub struct ChurnModel {
    /// Mean online session length (actual sessions are uniform in
    /// `[0.5, 1.5] × session`).
    pub session: SimDuration,
    /// Mean offline gap between sessions (same uniform spread).
    pub offline: SimDuration,
    /// Fraction of clients that churn at all; the rest stay connected
    /// for the whole run.
    pub fraction: f64,
}

impl ChurnModel {
    /// Samples one online-session length.
    pub fn sample_session<R: Rng>(&self, rng: &mut R) -> SimDuration {
        sample_uniform_spread(rng, self.session)
    }

    /// Samples one offline gap.
    pub fn sample_offline<R: Rng>(&self, rng: &mut R) -> SimDuration {
        sample_uniform_spread(rng, self.offline)
    }
}

/// Uniform draw in `[0.5, 1.5] × mean`, floored at 1ms so a zero-mean
/// config cannot schedule a same-instant churn flip loop.
fn sample_uniform_spread<R: Rng>(rng: &mut R, mean: SimDuration) -> SimDuration {
    let us = mean.as_micros().max(2_000);
    SimDuration::from_micros(rng.gen_range(us / 2..=us + us / 2).max(1_000))
}

/// Per-run workload description.
#[derive(Clone, Debug, ToJson, FromJson)]
pub struct Workload {
    /// Dataset shape (queries are sampled against it).
    pub dataset: DatasetSpec,
    /// Mean reads per second per client (peak rate when diurnal).
    pub reads_per_sec: f64,
    /// Mean writes per second across the whole system.
    pub writes_per_sec: f64,
    /// Fraction of clients that issue writes.
    pub writer_fraction: f64,
    /// Query shape mix.
    pub mix: QueryMix,
    /// Optional diurnal modulation of read rate.
    pub diurnal: Option<DiurnalPattern>,
    /// Per-client double-check-probability overrides: `(client_index,
    /// probability)` — used to model greedy clients (Section 3.3).
    pub greedy_clients: Vec<(usize, f64)>,
    /// Per-client `max_latency` overrides (Section 3.2's client-chosen
    /// freshness): `(client_index, bound)`.
    pub client_max_latency: Vec<(usize, SimDuration)>,
    /// Optional client session churn (join/leave cycling).
    pub churn: Option<ChurnModel>,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            dataset: DatasetSpec::default(),
            reads_per_sec: 4.0,
            writes_per_sec: 0.2,
            writer_fraction: 0.25,
            mix: QueryMix::catalogue(),
            diurnal: None,
            greedy_clients: Vec::new(),
            client_max_latency: Vec::new(),
            churn: None,
        }
    }
}

impl Workload {
    /// Sanity-checks the workload, returning a description of the first
    /// problem found.  Runs at spec/config validation time so a bad
    /// `writer_fraction` can no longer make the writer count overshoot
    /// `n_clients` via the builder's `ceil`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.writer_fraction) {
            return Err(format!(
                "workload.writer_fraction must be in [0,1], got {}",
                self.writer_fraction
            ));
        }
        if !self.reads_per_sec.is_finite() || self.reads_per_sec < 0.0 {
            return Err(format!(
                "workload.reads_per_sec must be finite and >= 0, got {}",
                self.reads_per_sec
            ));
        }
        if !self.writes_per_sec.is_finite() || self.writes_per_sec < 0.0 {
            return Err(format!(
                "workload.writes_per_sec must be finite and >= 0, got {}",
                self.writes_per_sec
            ));
        }
        if !(0.0..=1.0).contains(&self.dataset.skew) {
            return Err(format!(
                "workload.dataset.skew must be in [0,1], got {}",
                self.dataset.skew
            ));
        }
        if !(0.0..=1.0).contains(&self.dataset.hot_fraction) {
            return Err(format!(
                "workload.dataset.hot_fraction must be in [0,1], got {}",
                self.dataset.hot_fraction
            ));
        }
        for &(_, p) in &self.greedy_clients {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "workload.greedy_clients: probability must be in [0,1], got {p}"
                ));
            }
        }
        if let Some(c) = &self.churn {
            if !(0.0..=1.0).contains(&c.fraction) {
                return Err(format!(
                    "workload.churn.fraction must be in [0,1], got {}",
                    c.fraction
                ));
            }
            if c.session.as_micros() == 0 || c.offline.as_micros() == 0 {
                return Err("workload.churn: session and offline must be > 0".into());
            }
        }
        Ok(())
    }

    /// Samples an exponential inter-arrival gap for rate `per_sec`
    /// (modulated by the diurnal pattern at time `now`).
    pub fn read_gap<R: Rng>(&self, rng: &mut R, now: SimTime) -> SimDuration {
        let mut rate = self.reads_per_sec;
        if let Some(d) = &self.diurnal {
            rate *= d.multiplier(now).max(1e-3);
        }
        sample_exp_gap(rng, rate)
    }

    /// Samples a write inter-arrival gap for one writer client.
    pub fn write_gap<R: Rng>(&self, rng: &mut R, n_writers: usize) -> SimDuration {
        let rate = self.writes_per_sec / n_writers.max(1) as f64;
        sample_exp_gap(rng, rate)
    }

    /// Samples a write operation batch (small catalogue touch-ups).
    pub fn sample_write<R: Rng>(&self, rng: &mut R) -> Vec<UpdateOp> {
        let n = self.dataset.n_products.max(1) as u64;
        match rng.gen_range(0..3) {
            0 => vec![UpdateOp::Update {
                table: "products".into(),
                key: 1 + rng.gen_range(0..n),
                changes: Document::new().with("price", rng.gen_range(5..1000) as i64),
            }],
            1 => vec![UpdateOp::Update {
                table: "products".into(),
                key: 1 + rng.gen_range(0..n),
                changes: Document::new().with("stock", rng.gen_range(0..200) as i64),
            }],
            _ => vec![UpdateOp::AppendFile {
                path: format!(
                    "/docs/file-{:03}.log",
                    rng.gen_range(0..self.dataset.n_files.max(1))
                ),
                contents: format!("entry upd {} code={:04}\n", "restock", rng.gen_range(0..10_000)),
            }],
        }
    }
}

fn sample_exp_gap<R: Rng>(rng: &mut R, rate_per_sec: f64) -> SimDuration {
    if rate_per_sec <= 0.0 {
        return SimDuration::from_secs(3_600);
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let secs = -u.ln() / rate_per_sec;
    SimDuration::from_micros((secs * 1e6).min(3.6e9) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mix_samples_every_shape() {
        let mix = QueryMix::catalogue();
        let spec = DatasetSpec::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            kinds.insert(mix.sample(&mut rng, &spec).kind());
        }
        for k in ["get", "range", "filter", "aggregate", "grep", "read_file"] {
            assert!(kinds.contains(k), "missing {k}");
        }
    }

    #[test]
    fn media_mix_samples_streams() {
        let mix = QueryMix::media();
        let spec = DatasetSpec::default();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut streams = 0;
        for _ in 0..400 {
            let q = mix.sample(&mut rng, &spec);
            if let Query::ReadFileRange { path, len, .. } = &q {
                assert!(path.starts_with("/docs/"));
                assert!(*len >= 512);
                streams += 1;
            }
        }
        // stream weight is 50/100: roughly half the samples.
        assert!((100..300).contains(&streams), "streams {streams}");
    }

    #[test]
    fn zero_skew_is_byte_identical_to_legacy_sampler() {
        // The skew coin must not be flipped at skew = 0: the same seed
        // yields the same query stream as a spec without the knob.
        let mix = QueryMix::catalogue();
        let plain = DatasetSpec::default();
        assert_eq!(plain.skew, 0.0);
        let hot_but_off = DatasetSpec {
            hot_fraction: 0.5,
            ..plain
        };
        let draw = |spec: &DatasetSpec| {
            let mut rng = SmallRng::seed_from_u64(11);
            (0..200).map(|_| mix.sample(&mut rng, spec)).collect::<Vec<_>>()
        };
        assert_eq!(draw(&plain), draw(&hot_but_off));
    }

    #[test]
    fn high_skew_concentrates_point_reads() {
        let mix = QueryMix {
            get: 100,
            range: 0,
            filter: 0,
            aggregate: 0,
            join: 0,
            grep: 0,
            read_file: 0,
            stream: 0,
            scan: 0,
            scan_len: 0,
        };
        let spec = DatasetSpec {
            n_products: 10_000,
            hot_fraction: 0.001, // 10-key hot set
            skew: 0.95,
            ..DatasetSpec::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hot = 0;
        for _ in 0..1_000 {
            match mix.sample(&mut rng, &spec) {
                Query::GetRow { key, .. } => {
                    if key <= 10 {
                        hot += 1;
                    }
                }
                q => panic!("unexpected {q:?}"),
            }
        }
        assert!(hot > 900, "hot draws {hot}/1000 at skew 0.95");
    }

    #[test]
    fn skew_bounds_are_validated() {
        for (skew, hot) in [(1.5, 0.01), (-0.1, 0.01), (0.5, 2.0)] {
            let w = Workload {
                dataset: DatasetSpec {
                    skew,
                    hot_fraction: hot,
                    ..DatasetSpec::default()
                },
                ..Workload::default()
            };
            assert!(w.validate().is_err(), "skew {skew} hot {hot}");
        }
    }

    #[test]
    fn diurnal_trough_and_peak() {
        let d = DiurnalPattern {
            period: SimDuration::from_secs(100),
            trough: 0.1,
        };
        let at = |s| d.multiplier(SimTime::from_secs(s));
        assert!((at(0) - 0.1).abs() < 1e-9);
        assert!((at(50) - 1.0).abs() < 1e-9);
        assert!(at(25) > 0.1 && at(25) < 1.0);
        // Periodicity.
        assert!((at(0) - at(100)).abs() < 1e-9);
    }

    #[test]
    fn exp_gap_mean_close() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = Workload {
            reads_per_sec: 10.0,
            ..Workload::default()
        };
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| w.read_gap(&mut rng, SimTime::ZERO).as_micros())
            .sum();
        let mean_us = total as f64 / n as f64;
        assert!((80_000.0..120_000.0).contains(&mean_us), "mean {mean_us}");
    }

    #[test]
    fn zero_rate_yields_huge_gap() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = Workload {
            writes_per_sec: 0.0,
            ..Workload::default()
        };
        assert!(w.write_gap(&mut rng, 1) >= SimDuration::from_secs(3_600));
    }

    #[test]
    fn writer_fraction_bounds_are_validated() {
        let ok = Workload::default();
        assert!(ok.validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN] {
            let w = Workload {
                writer_fraction: bad,
                ..Workload::default()
            };
            let err = w.validate().unwrap_err();
            assert!(err.contains("writer_fraction"), "{err}");
        }
        let w = Workload {
            reads_per_sec: f64::INFINITY,
            ..Workload::default()
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn writes_are_valid_ops() {
        let mut rng = SmallRng::seed_from_u64(4);
        let w = Workload::default();
        let mut db = w.dataset.build();
        for _ in 0..50 {
            let ops = w.sample_write(&mut rng);
            db.apply_write(&ops).unwrap();
        }
    }
}
