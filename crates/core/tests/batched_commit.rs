//! Batched sequencer commits: version arithmetic, log pruning lockstep,
//! failed-batch rollback, and replica convergence under multi-version
//! rounds anchored by a single digest stamp.

use proptest::prelude::*;
use sdr_core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimDuration;
use sdr_store::{Database, Document, UpdateOp};

fn doc(v: i64) -> Document {
    Document::new().with("v", v)
}

proptest! {
    /// A commit advances the version by exactly one per applied write
    /// batch — so a sequencer round of `n` writes moves the store from
    /// `V` to `V + n`, never more, never less.
    #[test]
    fn version_advances_by_exactly_the_batch_length(
        n in 1usize..8,
        keys in proptest::collection::vec(0u64..64, 8..9),
    ) {
        let mut db = Database::new();
        db.apply_write(&[UpdateOp::CreateTable {
            table: "t".into(),
            indexes: vec![],
        }])
        .expect("create");
        let before = db.version();
        for (i, key) in keys.iter().take(n).enumerate() {
            let v = db
                .apply_write(&[UpdateOp::Upsert {
                    table: "t".into(),
                    key: *key,
                    doc: doc(i as i64),
                }])
                .expect("write applies");
            prop_assert_eq!(v, before + i as u64 + 1);
        }
        prop_assert_eq!(db.version(), before + n as u64);
    }

    /// A write that fails mid-batch leaves the handle exactly at its
    /// pre-batch state: same version, same digest — the rollback the
    /// master's batch loop relies on when one entry of a round fails.
    #[test]
    fn failed_batch_restores_the_pre_batch_handle(
        good in 0u64..32,
        dup in 0u64..32,
    ) {
        let mut db = Database::new();
        db.apply_write(&[
            UpdateOp::CreateTable { table: "t".into(), indexes: vec![] },
            UpdateOp::Insert { table: "t".into(), key: dup, doc: doc(1) },
        ])
        .expect("seed");
        let pre = db.clone();
        // Poisoned op list: the first op succeeds, the second (duplicate
        // insert) fails — the whole list must roll back.
        let err = db.apply_write(&[
            UpdateOp::Upsert { table: "t".into(), key: good, doc: doc(2) },
            UpdateOp::Insert { table: "t".into(), key: dup, doc: doc(3) },
        ]);
        prop_assert!(err.is_err());
        prop_assert_eq!(db.version(), pre.version());
        prop_assert_eq!(db.state_digest(), pre.state_digest());
        // The handle is still live: the next good batch commits.
        let v = db
            .apply_write(&[UpdateOp::Upsert { table: "t".into(), key: good, doc: doc(4) }])
            .expect("recovers");
        prop_assert_eq!(v, pre.version() + 1);
    }
}

fn batched(seed: u64, max_write_batch: usize, snapshot_capacity: usize) -> sdr_core::System {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 2,
        n_clients: 8,
        max_latency: SimDuration::from_millis(500),
        keepalive_period: SimDuration::from_millis(125),
        double_check_prob: 0.0,
        max_write_batch,
        snapshot_capacity,
        seed,
        ..SystemConfig::default()
    };
    SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(Workload {
            reads_per_sec: 1.0,
            writes_per_sec: 30.0,
            writer_fraction: 1.0,
            ..Workload::default()
        })
        .build()
}

/// End to end: under batched rounds the sequencer's version moves by
/// exactly the number of committed writes (the sum of the per-round
/// batch sizes), and the batch-size histogram actually records batches
/// bigger than one.
#[test]
fn sequencer_version_tracks_committed_writes_under_batching() {
    let mut sys = batched(31_337, 4, 64);
    let v0 = sys.with_master(0, |m| m.version());
    sys.run_for(SimDuration::from_secs(20));

    let committed = sys.world.metrics().counter("write.committed.shard0");
    let rounds = sys.world.metrics_mut().summary("write.batch_size");
    assert!(committed > 10, "write demand never saturated: {committed}");
    let v1 = sys.with_master(0, |m| m.version());
    assert_eq!(
        v1 - v0,
        committed,
        "sequencer version must advance by exactly the committed writes"
    );
    // The histogram's total is the same count, split over fewer rounds.
    let total = (rounds.mean * rounds.count as f64).round() as u64;
    assert_eq!(total, committed, "batch-size observations must sum to the commits");
    assert!(
        (rounds.count as u64) < committed,
        "saturating demand must pack some rounds beyond one write"
    );
    assert!(rounds.max <= 4, "no round may exceed max_write_batch");
}

/// `write_log` and `digest_log` prune in lockstep under batched commits:
/// every master keeps the identical, contiguous version window, bounded
/// by `snapshot_capacity`, with the digest log covering exactly the
/// write log (sync replay needs both for every retained version).
#[test]
fn log_pruning_stays_in_lockstep_under_batched_commits() {
    let mut sys = batched(808, 4, 8);
    sys.run_for(SimDuration::from_secs(25));
    assert!(
        sys.world.metrics().counter("write.committed.shard0") > 8,
        "must commit past the retention window to exercise pruning"
    );
    for rank in 0..3 {
        let (wl, dl) = sys.with_master(rank, |m| {
            (m.write_log_versions(), m.digest_log_versions())
        });
        assert_eq!(wl, dl, "master {rank}: logs must prune in lockstep");
        assert!(wl.len() <= 8, "master {rank}: window exceeds snapshot_capacity");
        for pair in wl.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "master {rank}: window must be contiguous");
        }
    }
}

/// Replicas converge under batched pushes: one `StateUpdateBatch` per
/// round carries every version run plus a single stamp pair, and the
/// slaves apply it without ever seeing a digest mismatch (the anchor is
/// attached only to the batch's final version).
#[test]
fn slaves_converge_under_batched_pushes_without_digest_mismatches() {
    let mut sys = batched(4_004, 8, 64);
    sys.run_for(SimDuration::from_secs(20));
    let committed = sys.world.metrics().counter("write.committed.shard0");
    assert!(committed > 10, "write demand never saturated");
    // Let in-flight pushes land, then stop the workload clock reading.
    let master_version = sys.with_master(0, |m| m.version());
    for i in 0..2 {
        let v = sys.with_slave(i, |s| s.version());
        assert!(
            master_version - v <= 8,
            "slave {i} fell behind the last round: master={master_version} slave={v}"
        );
    }
    assert_eq!(
        sys.world.metrics().counter("slave.digest_mismatch"),
        0,
        "batch anchors must never be tried against intermediate versions"
    );
    assert_eq!(sys.world.metrics().counter("slave.bad_updates"), 0);
}
