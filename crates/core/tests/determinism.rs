//! Scheduler-determinism pin.
//!
//! The bucketed event queue must reproduce the seed `BinaryHeap`
//! scheduler's behaviour *exactly* at small sizes: same event order,
//! same RNG draws, same stats, byte for byte.  The fixture under
//! `tests/fixtures/` was captured from the seed scheduler; every field
//! it contains must match the current run bit-exactly (fields added to
//! `SystemStats` after the capture are allowed to appear alongside).
//!
//! Regenerate (only when intentionally changing workload semantics):
//! `UPDATE_FIXTURES=1 cargo test -p sdr-core --test determinism`.

use sdr_core::scenario::{registry, Runner, ScenarioSpec};
use sdr_sim::SimDuration;
use serde::json::Value;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/quickstart_seed_report.json")
}

/// A short single-shard quickstart run: one subtle liar, mixed reads
/// and writes, every timer/cancel path exercised.
fn pinned_spec() -> ScenarioSpec {
    let mut spec = registry::lookup("quickstart").expect("registered scenario");
    spec.duration = SimDuration::from_secs(10);
    spec.checkpoints = vec![SimDuration::from_secs(5)];
    spec
}

/// Asserts every value present in `fixture` appears identically in
/// `current`.  Objects may gain keys (new telemetry fields); arrays of
/// `{field, ...}` / `{name, ...}` records are matched by that key so
/// appended aggregate rows don't shift positions.
fn assert_subset(fixture: &Value, current: &Value, path: &str) {
    match (fixture, current) {
        (Value::Object(f), Value::Object(c)) => {
            for (k, fv) in f.iter() {
                let cv = c
                    .get(k)
                    .unwrap_or_else(|| panic!("{path}.{k}: missing in current run"));
                assert_subset(fv, cv, &format!("{path}.{k}"));
            }
        }
        (Value::Array(f), Value::Array(c)) => {
            let keyed = |v: &Value| -> Option<String> {
                if let Value::Object(o) = v {
                    for key in ["field", "name"] {
                        if let Some(Value::Str(s)) = o.get(key) {
                            return Some(s.clone());
                        }
                    }
                }
                None
            };
            if f.iter().all(|v| keyed(v).is_some()) && !f.is_empty() {
                for fv in f {
                    let k = keyed(fv).unwrap();
                    let cv = c
                        .iter()
                        .find(|v| keyed(v).as_deref() == Some(&k))
                        .unwrap_or_else(|| panic!("{path}[{k}]: missing in current run"));
                    assert_subset(fv, cv, &format!("{path}[{k}]"));
                }
            } else {
                assert_eq!(
                    f.len(),
                    c.len(),
                    "{path}: array length {} != {}",
                    f.len(),
                    c.len()
                );
                for (i, (fv, cv)) in f.iter().zip(c.iter()).enumerate() {
                    assert_subset(fv, cv, &format!("{path}[{i}]"));
                }
            }
        }
        _ => {
            assert_eq!(
                fixture.render(),
                current.render(),
                "{path}: fixture {} != current {}",
                fixture.render(),
                current.render()
            );
        }
    }
}

#[test]
fn small_run_is_byte_identical_to_seed_scheduler() {
    let report = Runner::new(pinned_spec()).run().expect("run");
    let text = report.to_json_string();
    let current = Value::parse(&text).expect("report parses");

    if std::env::var("UPDATE_FIXTURES").is_ok() {
        std::fs::write(fixture_path(), &text).expect("write fixture");
        return;
    }
    let raw = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let fixture = Value::parse(&raw).expect("fixture parses");
    assert_subset(&fixture, &current, "$");
}

#[test]
fn repeated_runs_are_byte_identical() {
    let a = Runner::new(pinned_spec()).run().expect("run").to_json_string();
    let b = Runner::new(pinned_spec()).run().expect("run").to_json_string();
    assert_eq!(a, b);
}
