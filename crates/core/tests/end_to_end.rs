//! End-to-end protocol tests: full deployments in the simulator.

use sdr_core::{SlaveBehavior, System, SystemBuilder, SystemConfig, Workload};
use sdr_sim::{SimDuration, SimTime};

fn small_config(seed: u64) -> SystemConfig {
    SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 8,
        seed,
        ..SystemConfig::default()
    }
}

fn build(cfg: SystemConfig, behaviors: Vec<SlaveBehavior>, workload: Workload) -> System {
    SystemBuilder::new(cfg).behaviors(behaviors).workload(workload).build()
}

#[test]
fn honest_run_accepts_reads_and_commits_writes() {
    let cfg = small_config(1);
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], Workload::default());
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(stats.reads_issued > 100, "reads issued: {}", stats.reads_issued);
    assert!(
        stats.reads_accepted as f64 >= 0.9 * stats.reads_issued as f64,
        "accepted {}/{} reads",
        stats.reads_accepted,
        stats.reads_issued
    );
    assert!(stats.writes_committed > 0, "no writes committed");
    assert_eq!(stats.lies_told, 0);
    assert_eq!(stats.wrong_accepted, 0);
    assert_eq!(stats.exclusions, 0);
    assert_eq!(stats.dc_mismatch, 0);
    assert_eq!(stats.audit_mismatch, 0);
    // Every pledge either double-checked or audited.
    assert!(stats.audit_submitted > 0);
}

#[test]
fn replicas_converge_after_writes() {
    let cfg = small_config(2);
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], Workload::default());
    sys.run_for(SimDuration::from_secs(20));
    // Quiesce: stop issuing (time passes, writes spaced >= max_latency so
    // let propagation settle by just running further).
    sys.run_for(SimDuration::from_secs(10));

    let master_digest = sys.with_master(0, |m| m.state_digest());
    let master_version = sys.with_master(0, |m| m.version());
    for r in 1..sys.masters.len() {
        assert_eq!(sys.with_master(r, |m| m.state_digest()), master_digest);
    }
    assert!(master_version > 4, "writes should have advanced the version");
    // Slaves converge to within the inconsistency window; after quiet time
    // they must match exactly.
    for i in 0..sys.slaves.len() {
        let (v, d) = sys.with_slave(i, |s| (s.version(), s.state_digest()));
        assert_eq!(v, master_version, "slave {i} at version {v}");
        assert_eq!(d, master_digest, "slave {i} digest mismatch");
    }
}

#[test]
fn consistent_liar_is_caught_and_excluded() {
    let mut cfg = small_config(3);
    cfg.double_check_prob = 0.2; // Aggressive checking to catch it fast.
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[0] = SlaveBehavior::ConsistentLiar { prob: 0.5, collude: false };
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    assert!(stats.lies_told > 0, "liar never lied");
    assert!(
        stats.exclusions >= 1,
        "liar not excluded: {}",
        stats.render()
    );
    assert!(stats.discoveries() >= 1);
    // The excluded slave must know it.
    assert!(sys.with_slave(0, |s| s.is_excluded()));
    // System keeps operating after the exclusion.
    assert!(stats.reads_accepted > 0);
}

#[test]
fn audit_alone_catches_liar_when_no_double_checks() {
    let mut cfg = small_config(4);
    cfg.double_check_prob = 0.0; // No probabilistic checking at all.
    cfg.audit_fraction = 1.0;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[1] = SlaveBehavior::ConsistentLiar { prob: 0.3, collude: false };
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(90));
    let stats = sys.stats();

    assert!(stats.lies_told > 0);
    assert_eq!(stats.dc_sent, 0, "no double-checks should happen");
    assert!(
        stats.discovery_delayed >= 1,
        "audit never caught the liar: {}",
        stats.render()
    );
    assert!(stats.exclusions >= 1);
    // Every wrong answer that was accepted is eventually detected: with
    // full audit the number of audit mismatches must reach the number of
    // accepted lies (the paper's 100% detection claim), modulo pledges
    // still in the backlog at cutoff.
    assert!(stats.audit_mismatch >= 1);
}

#[test]
fn inconsistent_liar_rejected_instantly_no_harm() {
    let mut cfg = small_config(5);
    cfg.double_check_prob = 0.05;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[2] = SlaveBehavior::InconsistentLiar { prob: 0.4 };
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(stats.rejected_hash > 0, "hash check never fired");
    assert_eq!(
        stats.wrong_accepted, 0,
        "client accepted a hash-mismatched result"
    );
}

#[test]
fn honest_streamed_reads_verify_every_chunk() {
    let cfg = small_config(41);
    let n = cfg.n_slaves;
    let workload = Workload {
        mix: sdr_core::QueryMix::media(),
        ..Workload::default()
    };
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], workload);
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(
        stats.stream_reads_issued > 20,
        "streamed reads issued: {}",
        stats.stream_reads_issued
    );
    assert_eq!(
        stats.stream_reads_accepted, stats.stream_reads_issued,
        "honest streams must all verify: {}",
        stats.render()
    );
    assert_eq!(stats.stream_chunk_rejects, 0);
    assert!(
        stats.stream_chunks_verified >= stats.stream_reads_accepted,
        "each accepted stream verifies its chunks: {} chunks / {} streams",
        stats.stream_chunks_verified,
        stats.stream_reads_accepted
    );
    assert_eq!(stats.wrong_accepted, 0);
}

#[test]
fn corrupted_stream_chunk_rejected_at_that_chunk() {
    let mut cfg = small_config(42);
    cfg.double_check_prob = 0.0; // Stream verification needs no checks.
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[1] = SlaveBehavior::ConsistentLiar { prob: 0.5, collude: false };
    let workload = Workload {
        mix: sdr_core::QueryMix::media(),
        ..Workload::default()
    };
    let mut sys = build(cfg, behaviors, workload);
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    // The chunk hash pins each corruption to the exact chunk: detection
    // is the client's own verification, with no checks configured.
    assert!(
        stats.stream_chunk_rejects > 0,
        "corrupted chunks never rejected: {}",
        stats.render()
    );
    // Every accepted *stream* verified all its chunks — a corrupted
    // stream can only be rejected, never folded into an accept.  (The
    // pledged fallback path can still wrongly accept a consistent lie
    // until audits catch it, which is the paper's delayed-detection
    // story, not the stream path's.)
    assert!(stats.stream_reads_accepted < stats.stream_reads_issued);
    assert!(
        stats.stream_chunks_verified > 0 && stats.reads_accepted > 0,
        "clients stopped making progress: {}",
        stats.render()
    );
}

#[test]
fn stale_server_detected_by_audit() {
    let mut cfg = small_config(6);
    cfg.double_check_prob = 0.02;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    // Freeze at the initial version: it keeps serving pre-write data.
    behaviors[3] = SlaveBehavior::StaleServer { freeze_at: 4 };
    let workload = Workload {
        writes_per_sec: 0.5,
        ..Workload::default()
    };
    let mut sys = build(cfg, behaviors, workload);
    sys.run_for(SimDuration::from_secs(90));
    let stats = sys.stats();

    assert!(stats.writes_committed > 3, "need writes to expose staleness");
    assert!(
        stats.exclusions >= 1 || stats.discoveries() >= 1,
        "stale server never caught: {}",
        stats.render()
    );
}

#[test]
fn wrong_accepts_bounded_and_all_detected_eventually() {
    let mut cfg = small_config(7);
    cfg.double_check_prob = 0.1;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[0] = SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false }; // Lies always.
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    // An always-liar gets caught fast; only a handful of lies slip through
    // before exclusion, and each slipped lie is found by the audit.
    assert!(stats.exclusions >= 1);
    assert!(
        stats.wrong_accepted <= stats.lies_told,
        "oracle join inconsistent"
    );
    let detected = stats.audit_mismatch + stats.dc_mismatch;
    assert!(
        detected >= 1,
        "no detection events despite constant lying: {}",
        stats.render()
    );
}

#[test]
fn master_crash_redistributes_slaves_and_clients_recover() {
    let mut cfg = small_config(8);
    cfg.n_masters = 4;
    cfg.n_slaves = 6;
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], Workload::default());
    // Let it warm up, then kill master 0 (the sequencer).
    sys.crash_master_at(SimTime::from_secs(10), 0);
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    // Slaves of the dead master were adopted by survivors.
    let mut owned = 0;
    for r in 1..4 {
        owned += sys.with_master(r, |m| m.slaves().len());
    }
    assert_eq!(owned, 6, "all slaves must be owned by survivors");
    // The system still serves reads and commits writes after the crash.
    assert!(stats.reads_accepted > 0);
    assert!(stats.writes_committed > 0);
    // Clients of the dead master redid setup.
    let re_setups: u64 = stats.per_client.iter().map(|c| c.re_setups).sum();
    assert!(re_setups > 0, "no client redid setup after master crash");
}

#[test]
fn quorum_reads_catch_single_liar_without_accepting() {
    let mut cfg = small_config(9);
    cfg.read_quorum = 2;
    cfg.double_check_prob = 0.0;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[0] = SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false };
    behaviors[1] = SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false };
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    // Any disagreement forces a double-check even though p = 0.
    assert!(
        stats.dc_sent > 0,
        "quorum mismatch must auto-double-check: {}",
        stats.render()
    );
    // Lies never get accepted unverified: the corrupted answer can only be
    // accepted if *all* quorum members colluded on the same wrong result,
    // which independent corruption here cannot do.
    assert_eq!(stats.wrong_accepted, 0);
}

#[test]
fn sensitive_reads_served_by_master_always_correct() {
    let mut cfg = small_config(10);
    cfg.sensitive_fraction = 0.5;
    let mut behaviors = vec![SlaveBehavior::Honest; cfg.n_slaves];
    behaviors[0] = SlaveBehavior::ConsistentLiar { prob: 1.0, collude: false };
    let mut sys = build(cfg, behaviors, Workload::default());
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(stats.reads_sensitive > 0, "no sensitive reads issued");
    // Sensitive reads bypass slaves entirely, so lies can only enter
    // through the non-sensitive path.
    assert!(stats.reads_accepted > stats.reads_sensitive / 2);
}

#[test]
fn greedy_client_gets_throttled() {
    let mut cfg = small_config(11);
    cfg.n_clients = 10;
    cfg.double_check_prob = 0.02;
    let workload = Workload {
        greedy_clients: vec![(0, 0.9)], // Client 0 double-checks 90% of reads.
        reads_per_sec: 8.0,
        ..Workload::default()
    };
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], workload);
    sys.run_for(SimDuration::from_secs(120));
    let stats = sys.stats();

    let greedy = &stats.per_client[0];
    assert!(
        greedy.dc_throttled > 0,
        "greedy client was never throttled: {:?}",
        greedy
    );
    // Honest clients are (essentially) never throttled.
    let honest_throttled: u64 = stats.per_client[1..].iter().map(|c| c.dc_throttled).sum();
    assert!(
        honest_throttled * 10 <= greedy.dc_throttled.max(1) * 2,
        "honest clients throttled too much: {honest_throttled} vs greedy {}",
        greedy.dc_throttled
    );
}

#[test]
fn determinism_same_seed_same_stats() {
    let run = |seed: u64| {
        let cfg = small_config(seed);
        let n = cfg.n_slaves;
        let mut behaviors = vec![SlaveBehavior::Honest; n];
        behaviors[0] = SlaveBehavior::ConsistentLiar { prob: 0.2, collude: false };
        let mut sys = build(cfg, behaviors, Workload::default());
        sys.run_for(SimDuration::from_secs(20));
        let s = sys.stats();
        (
            s.reads_issued,
            s.reads_accepted,
            s.lies_told,
            s.dc_sent,
            s.writes_committed,
            s.audit_checked,
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn audit_sampling_reduces_checks() {
    let mut cfg = small_config(12);
    cfg.audit_fraction = 0.3;
    cfg.double_check_prob = 0.0;
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], Workload::default());
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(stats.audit_skipped > 0, "sampling never skipped a pledge");
    assert!(stats.audit_checked > 0);
    let frac = stats.audit_checked as f64 / (stats.audit_checked + stats.audit_skipped) as f64;
    assert!(
        (0.15..0.45).contains(&frac),
        "checked fraction {frac} far from configured 0.3"
    );
}

#[test]
fn churning_clients_rejoin_and_keep_reading() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 12,
        seed: 77,
        ..SystemConfig::default()
    };
    let n = cfg.n_slaves;
    let workload = Workload {
        reads_per_sec: 4.0,
        churn: Some(sdr_core::workload::ChurnModel {
            session: SimDuration::from_secs(6),
            offline: SimDuration::from_secs(3),
            fraction: 0.75,
        }),
        ..Workload::default()
    };
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], workload);
    sys.run_for(SimDuration::from_secs(60));
    let stats = sys.stats();

    // Churners left and came back — each rejoin redoes the setup phase.
    assert!(stats.churn_leaves > 10, "leaves: {}", stats.churn_leaves);
    assert!(stats.churn_joins > 10, "joins: {}", stats.churn_joins);
    // The system keeps serving through the churn: reads flow and nearly
    // all issued reads verify (in-flight reads dropped at a leave are
    // issued-but-never-answered, so demand only near-equality).
    assert!(stats.reads_issued > 200, "reads issued: {}", stats.reads_issued);
    assert!(
        stats.reads_accepted as f64 >= 0.8 * stats.reads_issued as f64,
        "accepted {}/{} reads",
        stats.reads_accepted,
        stats.reads_issued
    );
    assert_eq!(stats.wrong_accepted, 0);
    // Offline clients answer nothing, so no exclusions of honest slaves.
    assert_eq!(stats.exclusions, 0);
}

#[test]
fn churn_scheduler_telemetry_is_populated() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 8,
        seed: 78,
        ..SystemConfig::default()
    };
    let n = cfg.n_slaves;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], Workload::default());
    sys.run_for(SimDuration::from_secs(20));
    let stats = sys.stats();
    assert!(stats.sim_events > 1_000, "events: {}", stats.sim_events);
    assert!(stats.sim_queue_peak > 0);
    assert!(stats.sim_msg_bytes_logical >= stats.sim_msg_bytes_resident);
    assert!(stats.sim_msg_bytes_resident > 0);
    // Master → slave replication fans out shared payloads: the logical
    // byte volume must exceed the resident (allocated-once) volume.
    assert!(
        stats.msg_sharing_ratio() > 1.0,
        "sharing ratio {}",
        stats.msg_sharing_ratio()
    );
}
