//! Hot-read fast-path tests: the two-sided proof/stamp cache must be an
//! optimization only.  Cached replies are byte-identical to freshly
//! built ones (the `cache_verify` oracle), stale cached proofs never
//! survive a version bump, a cache-poisoning slave cannot forge an
//! accepted proof, and the flash-crowd scenario hits the cache hard
//! with zero wrong accepts.

use sdr_core::messages::{Msg, StateDigestStamp};
use sdr_core::scenario::{registry, Grid, Param, Runner};
use sdr_core::verify::{self, RejectReason, VerifyEnv};
use sdr_core::{SlaveBehavior, System, SystemBuilder, SystemConfig, Workload};
use sdr_crypto::{HmacSigner, Signer};
use sdr_sim::{NodeId, SimDuration, SimTime};
use sdr_store::{execute, Query, QueryResult, Value};

fn small_config(seed: u64) -> SystemConfig {
    SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 8,
        seed,
        ..SystemConfig::default()
    }
}

fn build(cfg: SystemConfig, behaviors: Vec<SlaveBehavior>, workload: Workload) -> System {
    SystemBuilder::new(cfg).behaviors(behaviors).workload(workload).build()
}

/// Point-read-only workload hammering a deliberately small catalogue, so
/// cached entries are guaranteed to be re-requested within one anchor
/// window.
fn hot_workload(reads_per_sec: f64) -> Workload {
    let mut w = Workload::default();
    w.dataset.n_products = 50;
    w.dataset.n_files = 4;
    w.dataset.hot_fraction = 0.02; // 1-key hot set.
    w.dataset.skew = 0.9;
    w.reads_per_sec = reads_per_sec;
    w.writes_per_sec = 0.0;
    w.writer_fraction = 0.0;
    w.mix.get = 100;
    w.mix.range = 0;
    w.mix.filter = 0;
    w.mix.aggregate = 0;
    w.mix.join = 0;
    w.mix.grep = 0;
    w.mix.read_file = 0;
    w.mix.stream = 0;
    w
}

/// An honest steady run with writes: the slave caches must take hits
/// (the whole point), be invalidated on every anchor move, and never
/// cause a single proof rejection — a stale cached proof surviving a
/// version bump would show up here as `proof_reads_rejected`.
#[test]
fn honest_run_caches_hits_and_never_serves_stale_proofs() {
    let cfg = small_config(11);
    let n = cfg.n_slaves;
    let mut w = hot_workload(40.0);
    w.writes_per_sec = 1.0;
    w.writer_fraction = 0.25;
    // Churning clients re-verify the same setup certificates on every
    // rejoin — exactly where the cert memo pays off.
    w.churn = Some(sdr_core::workload::ChurnModel {
        session: SimDuration::from_secs(4),
        offline: SimDuration::from_secs(1),
        fraction: 0.5,
    });
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], w);
    sys.run_for(SimDuration::from_secs(20));
    let stats = sys.stats();

    assert!(stats.proof_cache_hits > 0, "cache never hit: {}", stats.render());
    assert!(
        stats.proof_cache_invalidations > 0,
        "anchor moves never invalidated: {}",
        stats.render()
    );
    assert!(stats.stamp_cache_hits > 0, "stamp cache never hit");
    assert!(stats.cert_cache_hits > 0, "cert memo never hit");
    assert_eq!(
        stats.proof_reads_rejected, 0,
        "honest cached replies were rejected: {}",
        stats.render()
    );
    assert_eq!(stats.wrong_accepted, 0);
    assert!(stats.reads_accepted > 100);
}

/// The `cache_verify` oracle: on every cache hit the host rebuilds the
/// reply (or re-verifies the stamp/cert) and byte-compares against the
/// cached copy, counting divergences in raw metrics.  An honest run
/// with writes interleaved must show hits and zero divergence — cached
/// replies are byte-identical to freshly built ones.
#[test]
fn cache_verify_oracle_finds_no_divergence() {
    let mut cfg = small_config(12);
    cfg.cache_verify = true;
    let n = cfg.n_slaves;
    let mut w = hot_workload(40.0);
    w.writes_per_sec = 0.5;
    w.writer_fraction = 0.25;
    w.mix.stream = 10; // Exercise the stream-proof cache too.
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], w);
    sys.run_for(SimDuration::from_secs(15));
    let stats = sys.stats();

    assert!(stats.proof_cache_hits > 0, "no hits to verify");
    assert!(stats.stamp_cache_hits > 0, "no stamp hits to verify");
    let m = sys.world.metrics();
    assert_eq!(
        m.counter("slave.cache_divergence"),
        0,
        "cached reply diverged from a fresh rebuild"
    );
    assert_eq!(
        m.counter("client.cache_divergence"),
        0,
        "memoized verification diverged from a recheck"
    );
}

/// The oracle is host-side only: flipping `cache_verify` must not change
/// the modeled system at all — same spec, same seed, byte-identical
/// `RunReport`.
#[test]
fn cache_verify_does_not_change_the_report() {
    let run = |cache_verify: bool| {
        let mut spec = registry::lookup("flash_crowd").expect("registered");
        spec.duration = SimDuration::from_secs(3);
        spec.seeds = vec![9];
        spec.config.n_clients = 100;
        spec.config.cache_verify = cache_verify;
        spec.grid = Grid::sweep("skew", Param::Skew, &[0.9]);
        Runner::new(spec).run().expect("runs").to_json_string()
    };
    assert_eq!(run(false), run(true), "cache_verify leaked into the report");
}

/// Disabling the caches entirely must not change *correctness* either:
/// same workload, caches on vs off, and every accepted read is still
/// right (the caches change modeled latency, so only the correctness
/// counters are compared).
#[test]
fn disabled_caches_accept_the_same_reads_correctly() {
    let run = |proof_cache_bytes: usize, stamp_entries: usize| {
        let mut cfg = small_config(13);
        cfg.proof_cache_bytes = proof_cache_bytes;
        cfg.stamp_cache_entries = stamp_entries;
        cfg.cert_cache_entries = stamp_entries;
        let n = cfg.n_slaves;
        let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], hot_workload(20.0));
        sys.run_for(SimDuration::from_secs(10));
        sys.stats()
    };
    let cached = run(1 << 20, 64);
    let uncached = run(0, 0);
    assert!(cached.proof_cache_hits > 0);
    assert_eq!(uncached.proof_cache_hits, 0);
    assert_eq!(uncached.stamp_cache_hits, 0);
    for s in [&cached, &uncached] {
        assert_eq!(s.wrong_accepted, 0);
        assert_eq!(s.proof_reads_rejected, 0);
        assert!(s.reads_accepted > 50, "accepted only {}", s.reads_accepted);
    }
}

/// Assembled `RangeReadReply`s are memoized under the same
/// `(anchor, query)` key as point-proof replies, and every anchor move
/// or applied write wipes them wholesale — so a scan-heavy run with
/// writes interleaved must show cache hits AND zero proof rejections.
/// A cached range reply surviving a version bump would be served under
/// a dead anchor and die at the client as `proof_reads_rejected`.
#[test]
fn cached_range_replies_hit_and_are_never_served_stale() {
    let cfg = small_config(15);
    let n = cfg.n_slaves;
    let mut w = hot_workload(40.0);
    w.writes_per_sec = 1.0;
    w.writer_fraction = 0.25;
    w.mix.get = 0;
    w.mix.scan = 100;
    w.mix.scan_len = 8;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], w);
    sys.run_for(SimDuration::from_secs(20));
    let stats = sys.stats();
    let m = sys.world.metrics();

    assert!(m.counter("slave.range_reads") > 0, "no scans served");
    assert!(
        stats.range_rows_verified > 0,
        "no rows verified under range proofs: {}",
        stats.render()
    );
    assert!(
        stats.proof_cache_hits > 0,
        "range replies never hit the cache: {}",
        stats.render()
    );
    assert!(
        stats.proof_cache_invalidations > 0,
        "writes never invalidated the reply cache: {}",
        stats.render()
    );
    assert_eq!(
        stats.proof_reads_rejected, 0,
        "a cached range reply was served stale: {}",
        stats.render()
    );
    assert_eq!(stats.wrong_accepted, 0);
    assert!(stats.reads_accepted > 100, "accepted only {}", stats.reads_accepted);
}

/// A Byzantine slave that poisons its own reply cache — planting a
/// forged result under the *genuine* signed anchor with an honest-shaped
/// proof — still cannot get a wrong answer accepted: the Merkle fold
/// ties the result to the signed digest, so every poisoned serve dies at
/// the client as a proof rejection.
#[test]
fn poisoned_cache_cannot_forge_an_accepted_proof() {
    let cfg = small_config(14);
    let n = cfg.n_slaves;
    let w = hot_workload(60.0);
    let dataset = w.dataset;
    let mut sys = build(cfg, vec![SlaveBehavior::Honest; n], w);

    // Let anchors propagate, then check our replica of the dataset
    // matches the slaves' (no writes in this workload), so locally built
    // proofs are exactly what an honest slave would serve.
    sys.run_for(SimDuration::from_secs(2));
    let db = dataset.build();
    assert_eq!(sys.with_slave(0, |s| s.state_digest()), db.state_digest());

    // Poison slave 0's cache for every product key: honest proof, lying
    // result, genuine anchor.  Keep-alives wipe the cache every anchor
    // refresh, so re-poison between short bursts.
    let mut poisoned = 0u64;
    for _ in 0..20 {
        poisoned += sys.with_slave(0, |s| {
            let Some(anchor) = s.digest_anchor().cloned() else {
                return 0;
            };
            for key in 1..=50u64 {
                let query = Query::GetRow { table: "products".into(), key };
                let proof = db.prove_row("products", key).expect("table exists");
                let reply = Msg::ProofReadReply {
                    query: Box::new(query.clone()),
                    result: QueryResult::Scalar(Value::Int(666)),
                    proof: Box::new(proof),
                    digest_stamp: anchor.clone(),
                };
                s.poison_reply_cache_for_test(&query, reply);
            }
            50
        });
        sys.run_for(SimDuration::from_millis(200));
    }
    assert!(poisoned > 0, "anchor never arrived; poison was a no-op");

    let stats = sys.stats();
    assert!(
        stats.proof_reads_rejected > 0,
        "poisoned cache was never served (test is vacuous): {}",
        stats.render()
    );
    assert_eq!(
        stats.wrong_accepted, 0,
        "a forged cached proof was accepted: {}",
        stats.render()
    );
    // Clients route around the poisoner and keep reading.
    assert!(stats.reads_accepted > 100);
}

/// Unit-level injection: a cached reply that outlives its anchor is
/// rejected.  Within the freshness bound an old cached reply is
/// legitimately acceptable; past `max_latency` it must die as `Stale`,
/// and after a version bump its proof no longer folds to the new signed
/// digest.
#[test]
fn injected_stale_cached_reply_is_rejected() {
    let mut master = HmacSigner::from_seed_label(1, b"master");
    let masters = vec![(NodeId(0), master.public_key())];
    let slaves = vec![(NodeId(5), HmacSigner::from_seed_label(2, b"slave").public_key())];
    let env = |now_ms: u64| VerifyEnv {
        masters: &masters,
        slaves: &slaves,
        spares: &[],
        now: SimTime::from_millis(now_ms),
        max_latency: SimDuration::from_millis(500),
    };

    let mut db = sdr_core::dataset::DatasetSpec::default().build();
    let query = Query::GetRow { table: "products".into(), key: 3 };
    let (result, _) = execute(&db, &query).unwrap();
    let proof = db.prove_row("products", 3).unwrap();
    let stamp = StateDigestStamp::build(
        db.version(),
        db.state_digest(),
        SimTime::from_millis(100),
        NodeId(0),
        &mut master,
    )
    .unwrap();

    // Fresh enough: the cached reply verifies like a new one.
    verify::verify_proof_read_stampless(&env(400), &query, &result, &proof, &stamp).unwrap();
    // Replayed past the freshness bound: rejected as stale.
    assert_eq!(
        verify::verify_proof_read_stampless(&env(700), &query, &result, &proof, &stamp),
        Err(RejectReason::Stale)
    );

    // A write bumps the version; the old cached proof cannot fold to the
    // new signed digest even under a fresh stamp.
    db.apply_write(&[sdr_store::UpdateOp::Update {
        table: "products".into(),
        key: 3,
        changes: sdr_store::Document::new().with("price", 1i64),
    }])
    .unwrap();
    let new_stamp = StateDigestStamp::build(
        db.version(),
        db.state_digest(),
        SimTime::from_millis(450),
        NodeId(0),
        &mut master,
    )
    .unwrap();
    assert!(matches!(
        verify::verify_proof_read_stampless(&env(500), &query, &result, &proof, &new_stamp),
        Err(RejectReason::BadProof(_))
    ));
}

/// The flash-crowd scenario itself (trimmed): at extreme skew the slave
/// reply cache must absorb >90% of proof reads, with zero wrong accepts.
#[test]
fn flash_crowd_hits_cache_at_high_skew_with_zero_wrong_accepts() {
    let mut spec = registry::lookup("flash_crowd").expect("registered");
    spec.duration = SimDuration::from_secs(6);
    spec.seeds = vec![1];
    spec.config.n_clients = 800;
    spec.grid = Grid::sweep("skew", Param::Skew, &[0.99]);
    let report = Runner::new(spec).run().expect("runs");
    let cell = &report.cells[0];

    let hit_rate = cell.mean("proof_cache_hit_rate");
    assert!(hit_rate > 0.9, "hit rate {hit_rate:.3} at skew 0.99");
    assert_eq!(cell.mean("wrong_accepted"), 0.0);
    assert!(cell.mean("stamp_cache_hits") > 0.0);
    assert!(cell.mean("reads_accepted") > 100.0);
}
