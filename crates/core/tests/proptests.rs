//! Property-based tests for protocol-level invariants: pledge
//! unforgeability, corruption detectability, and evidence soundness.

use proptest::prelude::*;
use sdr_core::config::HashAlgo;
use sdr_core::messages::VersionStamp;
use sdr_core::pledge::{Pledge, ResultHash};
use sdr_core::slave::corrupt;
use sdr_crypto::{HmacSigner, Signer};
use sdr_sim::{NodeId, SimTime};
use sdr_store::{Document, Query, QueryResult, Value};

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        ("[a-z]{1,8}", any::<u64>()).prop_map(|(table, key)| Query::GetRow { table, key }),
        ("[a-z]{1,8}", any::<u64>(), 0u32..100).prop_map(|(table, low, span)| Query::Range {
            table,
            low,
            high: low.saturating_add(u64::from(span)),
            limit: None,
        }),
        "[a-z/]{1,16}".prop_map(|path| Query::ReadFile { path }),
        ("[a-z]{1,6}", "[a-z/]{0,10}").prop_map(|(pattern, prefix)| Query::Grep {
            pattern,
            prefix
        }),
    ]
}

fn arb_result() -> impl Strategy<Value = QueryResult> {
    prop_oneof![
        any::<i64>().prop_map(|i| QueryResult::Scalar(Value::Int(i))),
        "[a-z ]{0,32}".prop_map(|s| QueryResult::Text(Some(s))),
        Just(QueryResult::Text(None)),
        proptest::collection::vec((any::<u64>(), any::<i64>()), 0..6).prop_map(|rows| {
            QueryResult::Rows(
                rows.into_iter()
                    .map(|(k, v)| (k, Document::new().with("v", v)))
                    .collect(),
            )
        }),
        proptest::collection::vec("[a-z/]{1,10}", 0..5).prop_map(QueryResult::Paths),
    ]
}

proptest! {
    /// Pledges verify when untouched and fail under any single-field
    /// tampering — a client can never frame an honest slave.
    #[test]
    fn pledge_unforgeable(
        query in arb_query(),
        result in arb_result(),
        version in any::<u64>(),
        ts in 0u64..1_000_000,
        tamper in 0usize..4,
    ) {
        let mut master = HmacSigner::from_seed_label(1, b"master");
        let mut slave = HmacSigner::from_seed_label(2, b"slave");
        let stamp = VersionStamp::build(
            version,
            SimTime::from_micros(ts),
            NodeId(0),
            &mut master,
        ).expect("stamp");
        let pledge = Pledge::build(
            query,
            ResultHash::of(&result, HashAlgo::Sha1),
            stamp,
            NodeId(9),
            &mut slave,
        ).expect("pledge");
        let key = slave.public_key();
        prop_assert!(pledge.verify_signature(&key).is_ok());
        prop_assert!(pledge.matches_result(&result));

        let mut forged = pledge.clone();
        match tamper {
            0 => { forged.slave = NodeId(10); }
            1 => { forged.stamp.version = forged.stamp.version.wrapping_add(1); }
            2 => {
                forged.result_hash = ResultHash::of(
                    &QueryResult::Scalar(Value::Int(-12345)),
                    HashAlgo::Sha1,
                );
            }
            _ => {
                forged.query = Query::ReadFile { path: "/tampered".into() };
            }
        }
        // Skip the rare no-op tamper (e.g. hash collision of same result).
        if forged != pledge {
            prop_assert!(forged.verify_signature(&key).is_err());
        }
    }

    /// Corruption always changes the canonical hash, for any result and
    /// salt, and distinct salts disagree on salt-bearing variants.
    #[test]
    fn corruption_always_detectable(result in arb_result(), salt in 0u64..1000) {
        let bad = corrupt(&result, salt);
        prop_assert_ne!(result.sha1(), bad.sha1());
        prop_assert_ne!(result.sha256(), bad.sha256());
    }

    /// Version stamps verify only under the signing master's key.
    #[test]
    fn stamp_key_binding(version in any::<u64>(), ts in any::<u32>()) {
        let mut m1 = HmacSigner::from_seed_label(1, b"m");
        let m2 = HmacSigner::from_seed_label(2, b"m");
        let stamp = VersionStamp::build(
            version,
            SimTime::from_micros(u64::from(ts)),
            NodeId(0),
            &mut m1,
        ).expect("stamp");
        prop_assert!(stamp.verify(&m1.public_key()).is_ok());
        prop_assert!(stamp.verify(&m2.public_key()).is_err());
    }

    /// Freshness is monotone: if a pledge is fresh at `t`, it is fresh at
    /// any earlier time ≥ its stamp.
    #[test]
    fn freshness_monotone(
        ts in 0u64..1_000_000u64,
        bound_ms in 1u64..5_000,
        dt1 in 0u64..10_000_000,
        dt2 in 0u64..10_000_000,
    ) {
        let mut master = HmacSigner::from_seed_label(1, b"m");
        let mut slave = HmacSigner::from_seed_label(2, b"s");
        let stamp = VersionStamp::build(
            1, SimTime::from_micros(ts), NodeId(0), &mut master,
        ).expect("stamp");
        let pledge = Pledge::build(
            Query::ReadFile { path: "/x".into() },
            ResultHash::of(&QueryResult::Text(None), HashAlgo::Sha1),
            stamp,
            NodeId(3),
            &mut slave,
        ).expect("pledge");
        let bound = sdr_sim::SimDuration::from_millis(bound_ms);
        let (early, late) = if dt1 <= dt2 { (dt1, dt2) } else { (dt2, dt1) };
        let t_early = SimTime::from_micros(ts + early);
        let t_late = SimTime::from_micros(ts + late);
        if pledge.is_fresh(t_late, bound) {
            prop_assert!(pledge.is_fresh(t_early, bound));
        }
    }
}

proptest! {
    // End-to-end cache oracle runs are expensive; a handful of random
    // interleavings per CI run is plenty (PROPTEST_CASES raises it
    // locally).
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Cached-vs-fresh oracle: across random write/read interleavings
    /// (seed, skew, and write rate all drawn), every cache hit rebuilds
    /// the reply host-side and byte-compares it against the cached copy
    /// (`cache_verify`).  Zero divergence means cached replies are
    /// byte-identical to freshly built ones; zero proof rejections means
    /// no stale cached proof ever outlived a version bump.
    #[test]
    fn cached_replies_byte_identical_to_fresh_under_random_interleavings(
        seed in 1u64..1_000,
        skew in 0.0f64..1.0,
        writes_per_sec in 0.0f64..2.0,
    ) {
        use sdr_core::{SlaveBehavior, SystemBuilder, SystemConfig, Workload};

        let cfg = SystemConfig {
            n_masters: 3,
            n_slaves: 3,
            n_clients: 4,
            seed,
            cache_verify: true,
            ..SystemConfig::default()
        };
        let mut w = Workload::default();
        w.dataset.n_products = 40;
        w.dataset.hot_fraction = 0.05;
        w.dataset.skew = skew;
        w.reads_per_sec = 30.0;
        w.writes_per_sec = writes_per_sec;
        w.writer_fraction = 0.5;
        w.mix.get = 80;
        w.mix.grep = 0;
        w.mix.join = 0;
        w.mix.aggregate = 0;
        let n = cfg.n_slaves;
        let mut sys = SystemBuilder::new(cfg)
            .behaviors(vec![SlaveBehavior::Honest; n])
            .workload(w)
            .build();
        sys.run_for(sdr_sim::SimDuration::from_secs(4));

        let stats = sys.stats();
        prop_assert_eq!(stats.wrong_accepted, 0);
        prop_assert_eq!(stats.proof_reads_rejected, 0, "stale cached proof served");
        let m = sys.world.metrics();
        prop_assert_eq!(m.counter("slave.cache_divergence"), 0);
        prop_assert_eq!(m.counter("client.cache_divergence"), 0);
    }
}
