//! Focused protocol-unit tests: exercise single mechanisms through small
//! worlds where the surrounding noise (workload randomness) is disabled.

use sdr_core::{SlaveBehavior, System, SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimDuration;

/// A quiet system: no reads, no writes — only protocol background traffic.
fn quiet(seed: u64, n_masters: usize, n_slaves: usize) -> System {
    let cfg = SystemConfig {
        n_masters,
        n_slaves,
        n_clients: 2,
        seed,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 0.0,
        writes_per_sec: 0.0,
        ..Workload::default()
    };
    SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; n_slaves])
        .workload(workload)
        .build()
}

#[test]
fn keepalives_keep_slaves_fresh_without_writes() {
    let mut sys = quiet(1, 3, 4);
    sys.run_for(SimDuration::from_secs(20));
    // Keep-alives flowed...
    assert!(sys.world.metrics().counter("keepalive.sent") >= 30);
    // ...and no slave ever refused for staleness (nobody read, but the
    // mechanism's health shows in zero bad-keepalive counts).
    assert_eq!(sys.world.metrics().counter("slave.bad_keepalives"), 0);
}

#[test]
fn clients_complete_setup_and_get_distinct_masters() {
    let mut sys = quiet(2, 4, 6);
    sys.run_for(SimDuration::from_secs(5));
    let mut ready = 0;
    for i in 0..2 {
        if sys.with_client(i, |c| c.is_ready()) {
            ready += 1;
        }
    }
    assert_eq!(ready, 2, "both clients should finish setup");
    // Each client got read_quorum slaves.
    for i in 0..2 {
        let slaves = sys.with_client(i, |c| c.assigned_slaves());
        assert_eq!(slaves.len(), 1);
    }
}

#[test]
fn auditor_advances_versions_while_lagging() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 2,
        n_clients: 2,
        max_latency: SimDuration::from_millis(500),
        keepalive_period: SimDuration::from_millis(125),
        seed: 3,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 1.0,
        writes_per_sec: 1.0, // Saturates the 2-per-second spacing budget.
        writer_fraction: 1.0,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(20));

    let master_version = sys.with_master(0, |m| m.version());
    let (audit_version, backlog) = sys.with_master(2, |m| {
        (m.auditor_state().audit_version(), m.auditor_state().backlog())
    });
    assert!(master_version > 8, "writes should commit: {master_version}");
    // The auditor lags by design but stays within a few versions once the
    // max_latency horizon passes.
    assert!(audit_version <= master_version);
    assert!(
        master_version - audit_version <= 4,
        "auditor stuck: audit at {audit_version}, masters at {master_version} (backlog {backlog})"
    );
}

#[test]
fn version_stamps_advance_monotonically_at_slaves() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 3,
        n_clients: 2,
        seed: 4,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 0.5,
        writes_per_sec: 0.4,
        writer_fraction: 1.0,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 3])
        .workload(workload)
        .build();

    let mut last = [0u64; 3];
    for _ in 0..10 {
        sys.run_for(SimDuration::from_secs(3));
        for (i, prev) in last.iter_mut().enumerate() {
            let v = sys.with_slave(i, |s| s.version());
            assert!(v >= *prev, "slave {i} version went backwards");
            *prev = v;
        }
    }
    // All slaves ended up past the initial dataset version.
    assert!(last.iter().all(|&v| v > 4));
}

#[test]
fn overload_backpressure_rejects_excess_writes_quickly() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 2,
        n_clients: 4,
        max_latency: SimDuration::from_millis(2_000),
        seed: 5,
        ..SystemConfig::default()
    };
    let workload = Workload {
        reads_per_sec: 0.5,
        writes_per_sec: 10.0, // 20x the spacing capacity.
        writer_fraction: 1.0,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; 2])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(30));
    let m = sys.world.metrics();

    assert!(m.counter("write.overloaded") > 0, "no backpressure seen");
    // Overload must not be misread as master crashes.
    assert_eq!(m.counter("write.timeout"), 0, "writes timed out");
    // Committed rate respects the spacing bound (1 per 2 s, ~15 total,
    // plus slack for the pipeline).
    let committed = m.counter("write.committed");
    assert!(committed <= 20, "spacing violated: {committed} commits in 30s");
    assert!(committed >= 10, "write path starved: {committed}");
}

#[test]
fn excluded_slave_refuses_and_clients_rehome() {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 6,
        double_check_prob: 0.5,
        seed: 6,
        ..SystemConfig::default()
    };
    let mut behaviors = vec![SlaveBehavior::Honest; 4];
    behaviors[0] = SlaveBehavior::ConsistentLiar {
        prob: 1.0,
        collude: false,
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(behaviors)
        .workload(Workload {
            reads_per_sec: 4.0,
            writes_per_sec: 0.0,
            ..Workload::default()
        })
        .build();
    sys.run_for(SimDuration::from_secs(30));
    let stats = sys.stats();

    assert!(stats.exclusions >= 1, "{}", stats.render());
    assert!(sys.with_slave(0, |s| s.is_excluded()));
    // No client still has the excluded slave assigned.
    let excluded_node = sys.slaves[0];
    for i in 0..6 {
        let assigned = sys.with_client(i, |c| c.assigned_slaves());
        assert!(
            !assigned.contains(&excluded_node),
            "client {i} still assigned to excluded slave"
        );
    }
    // And the excluded slave serves nothing after exclusion: its reads
    // stop growing.
    let served_at_exclusion = sys.with_slave(0, |s| s.reads_served());
    sys.run_for(SimDuration::from_secs(10));
    let served_later = sys.with_slave(0, |s| s.reads_served());
    assert_eq!(served_at_exclusion, served_later);
}

#[test]
fn auditor_election_follows_view() {
    let mut sys = quiet(7, 4, 4);
    sys.run_for(SimDuration::from_secs(5));
    // Initially rank 3 is the auditor.
    assert!(sys.with_master(3, |m| m.is_auditor()));
    assert!(!sys.with_master(2, |m| m.is_auditor()));

    // Kill it; rank 2 must take over.
    let t = sys.now();
    sys.crash_master_at(t + SimDuration::from_secs(1), 3);
    sys.run_for(SimDuration::from_secs(15));
    assert!(
        sys.with_master(2, |m| m.is_auditor()),
        "auditor duty did not move to the highest survivor"
    );
    // And the old auditor's (empty) duties moved without slave loss.
    let total: usize = (0..3).map(|r| sys.with_master(r, |m| m.slaves().len())).sum();
    assert_eq!(total, 4);
}
