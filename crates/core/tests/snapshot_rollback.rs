//! Snapshot-ring eviction and Section 3.5 rollback re-materialisation
//! over the copy-on-write store.
//!
//! The master keeps two bounded, version-keyed histories: the snapshot
//! ring (cheap structural-sharing handles) and the write log (the op
//! batches that produced each version).  These tests pin down that the
//! two stay in lockstep under live traffic, that eviction works, and
//! that any retained version re-materialises exactly — both by handle
//! and by replaying the write log onto an older snapshot.

use sdr_core::dataset::DatasetSpec;
use sdr_core::{SlaveBehavior, System, SystemBuilder, SystemConfig, Workload};
use sdr_sim::SimDuration;
use sdr_store::{Database, SnapshotStore, UpdateOp};

fn run_system(snapshot_capacity: usize, seed: u64) -> System {
    let cfg = SystemConfig {
        n_masters: 3,
        n_slaves: 4,
        n_clients: 8,
        snapshot_capacity,
        seed,
        ..SystemConfig::default()
    };
    let n = cfg.n_slaves;
    let workload = Workload {
        writes_per_sec: 2.0,
        writer_fraction: 0.5,
        ..Workload::default()
    };
    let mut sys = SystemBuilder::new(cfg)
        .behaviors(vec![SlaveBehavior::Honest; n])
        .workload(workload)
        .build();
    sys.run_for(SimDuration::from_secs(60));
    sys
}

#[test]
fn write_log_stays_in_lockstep_with_snapshot_ring() {
    let capacity = 4;
    let mut sys = run_system(capacity, 11);
    for rank in 0..sys.masters.len() {
        let (version, snaps, log) = sys.with_master(rank, |m| {
            (m.version(), m.snapshot_versions(), m.write_log_versions())
        });
        assert!(
            version > capacity as u64 + 4,
            "master {rank}: too few writes committed ({version}) to exercise eviction"
        );
        assert!(snaps.len() <= capacity, "master {rank}: ring over capacity");
        assert!(log.len() <= capacity, "master {rank}: log over capacity");
        // Eviction happened: the initial version is long gone.
        assert!(
            snaps.first().copied().unwrap_or(0) > 1,
            "master {rank}: oldest snapshot never evicted: {snaps:?}"
        );
        // Lockstep: both histories cover the same trailing window, ending
        // at the live version.
        assert_eq!(snaps.last().copied(), Some(version), "master {rank}");
        assert_eq!(
            snaps, log,
            "master {rank}: snapshot ring and write log diverged"
        );
    }
}

#[test]
fn retained_snapshots_rematerialise_identically_across_masters() {
    let mut sys = run_system(8, 12);
    let versions = sys.with_master(0, |m| m.snapshot_versions());
    assert!(versions.len() > 2, "expected several retained versions");
    let mut compared = 0;
    for v in versions {
        let reference = sys.with_master(0, |m| m.snapshot_digest(v)).expect("retained");
        for rank in 1..sys.masters.len() {
            if let Some(d) = sys.with_master(rank, |m| m.snapshot_digest(v)) {
                assert_eq!(d, reference, "master {rank} snapshot v{v} diverged");
                compared += 1;
            }
        }
    }
    assert!(
        compared > 2,
        "masters retained too few common versions to compare ({compared})"
    );
}

/// Replaying the bounded write log onto an older snapshot must land on
/// the exact same state the newer snapshot retains — the re-execution
/// path Section 3.5 uses after a delayed discovery.
#[test]
fn write_log_replay_over_cow_handles_reproduces_snapshots() {
    let mut db = DatasetSpec {
        n_products: 200,
        n_reviews: 100,
        n_files: 10,
        lines_per_file: 5,
        shared_block_lines: 0,
        hot_fraction: 0.01,
        skew: 0.0,
        seed: 3,
    }
    .build();
    let mut snaps = SnapshotStore::new(16);
    let mut log: Vec<(u64, Vec<UpdateOp>)> = Vec::new();
    snaps.record(&db);

    // A deterministic write stream touching rows and files.
    for i in 0..12u64 {
        let ops = vec![
            UpdateOp::Update {
                table: "products".into(),
                key: 1 + (i * 17) % 200,
                changes: sdr_store::Document::new().with("price", (50 + i) as i64),
            },
            UpdateOp::AppendFile {
                path: format!("/docs/file-{:03}.log", i % 10),
                contents: format!("audit entry {i}\n"),
            },
        ];
        let version = db.apply_write(&ops).expect("writes apply");
        snaps.record(&db);
        log.push((version, ops));
    }

    // Roll back to each retained version and replay the logged ops; the
    // replay must hit every later snapshot's digest exactly, even though
    // all these states share structure.
    for start in snaps.versions() {
        let mut replay: Database = snaps.get(start).expect("retained").clone();
        assert_eq!(replay.state_digest(), snaps.get(start).unwrap().state_digest());
        for (version, ops) in log.iter().filter(|(v, _)| *v > start) {
            replay.apply_write(ops).expect("replay applies");
            assert_eq!(replay.version(), *version);
            assert_eq!(
                replay.state_digest(),
                snaps.get(*version).expect("retained").state_digest(),
                "replay from v{start} diverged at v{version}"
            );
        }
        assert_eq!(replay.state_digest(), db.state_digest());
    }
}

/// A zero-capacity ring (documented no-retention mode) leaves the master
/// protocol functional: current-version double-checks still work because
/// the live replica answers them.
#[test]
fn no_retention_mode_keeps_system_live() {
    let mut sys = run_system(0, 13);
    let stats = sys.stats();
    assert!(stats.writes_committed > 0, "no writes committed");
    assert!(
        stats.reads_accepted as f64 >= 0.8 * stats.reads_issued as f64,
        "accepted {}/{} reads",
        stats.reads_accepted,
        stats.reads_issued
    );
    for rank in 0..sys.masters.len() {
        let snaps = sys.with_master(rank, |m| m.snapshot_versions());
        assert!(snaps.is_empty(), "master {rank} retained snapshots: {snaps:?}");
    }
}
