//! Certificates binding a server's contact address to its public key.
//!
//! Exactly the paper's Section 2 construction: "These certificates bind each
//! server's contact address (IP address and port number) to its public key",
//! are issued by the content owner, and signed with the *content key*.
//! Clients that know the content public key can therefore authenticate every
//! master, and (transitively, via master-issued slave certificates) every
//! slave.

use crate::digest::{Digest, Hash256};
use crate::error::CryptoError;
use crate::sha256::Sha256;
use crate::sign::{PublicKey, Signature, Signer};
use serde::{Deserialize, Serialize};

/// Role a certificate grants to its subject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertRole {
    /// The content owner itself (root of trust; self-signed).
    ContentOwner,
    /// A trusted master server.
    Master,
    /// A marginally-trusted slave server.
    Slave,
    /// The elected auditor.
    Auditor,
}

impl CertRole {
    fn tag(self) -> u8 {
        match self {
            CertRole::ContentOwner => 0,
            CertRole::Master => 1,
            CertRole::Slave => 2,
            CertRole::Auditor => 3,
        }
    }
}

/// The signed portion of a certificate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertificateBody {
    /// Monotonic serial number assigned by the issuer.
    pub serial: u64,
    /// Role granted to the subject.
    pub role: CertRole,
    /// Contact address ("ip:port" in the paper; any routable name here).
    pub subject_addr: String,
    /// The subject's verification key.
    pub subject_key: PublicKey,
    /// Issuance timestamp (simulation microseconds).
    pub issued_at_us: u64,
    /// Identifier of the content this certificate belongs to (hash of the
    /// content public key, as in self-certifying names [5]).
    pub content_id: Hash256,
    /// Shard of the content space this certificate is scoped to: the
    /// subject may only act (sequence writes, stamp digests, serve
    /// replicas) for this shard.  Unsharded deployments use shard 0, so
    /// the claim is always present and always checked.
    pub shard: u32,
}

impl CertificateBody {
    /// Canonical byte encoding of the body (what gets signed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.subject_addr.len());
        out.extend_from_slice(b"sdr/cert/v2");
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.push(self.role.tag());
        out.extend_from_slice(&(self.subject_addr.len() as u32).to_be_bytes());
        out.extend_from_slice(self.subject_addr.as_bytes());
        let key = self.subject_key.encode();
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&key);
        out.extend_from_slice(&self.issued_at_us.to_be_bytes());
        out.extend_from_slice(self.content_id.as_ref());
        out.extend_from_slice(&self.shard.to_be_bytes());
        out
    }
}

/// A certificate: body plus the issuer's signature over its encoding.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The signed statement.
    pub body: CertificateBody,
    /// Issuer signature over [`CertificateBody::encode`].
    pub signature: Signature,
}

impl Certificate {
    /// Issues a certificate by signing `body` with `issuer`.
    pub fn issue(body: CertificateBody, issuer: &mut dyn Signer) -> Result<Self, CryptoError> {
        let signature = issuer.sign(&body.encode())?;
        Ok(Certificate { body, signature })
    }

    /// Verifies the certificate against the issuer's public key.
    pub fn verify(&self, issuer_key: &PublicKey) -> Result<(), CryptoError> {
        issuer_key
            .verify(&self.body.encode(), &self.signature)
            .map_err(|_| CryptoError::InvalidCertificate("bad issuer signature"))
    }

    /// Verifies and additionally checks the expected role.
    pub fn verify_role(&self, issuer_key: &PublicKey, role: CertRole) -> Result<(), CryptoError> {
        self.verify(issuer_key)?;
        if self.body.role != role {
            return Err(CryptoError::InvalidCertificate("unexpected role"));
        }
        Ok(())
    }

    /// Verifies role *and* shard scope: a certificate issued for one
    /// shard must not authenticate a server for another shard's data.
    pub fn verify_scoped(
        &self,
        issuer_key: &PublicKey,
        role: CertRole,
        shard: u32,
    ) -> Result<(), CryptoError> {
        self.verify_role(issuer_key, role)?;
        if self.body.shard != shard {
            return Err(CryptoError::InvalidCertificate("wrong shard scope"));
        }
        Ok(())
    }

    /// Memoization key for a successful [`Certificate::verify_scoped`]
    /// check: it binds the issuer key, the expected role and shard, and
    /// the full signed body encoding.  The signature is deliberately
    /// excluded — the key identifies the *statement* that was verified,
    /// and any forged body hashes to a different key, so remembering
    /// "this key accepted this statement" is sound even if an attacker
    /// later replays the body with a mangled signature.
    pub fn scoped_cache_key(&self, issuer_key: &PublicKey, role: CertRole, shard: u32) -> Hash256 {
        Sha256::digest_parts(&[
            b"sdr/cert-cache/v1",
            &issuer_key.encode(),
            &[role.tag()],
            &shard.to_be_bytes(),
            &self.body.encode(),
        ])
    }
}

/// Derives a content identifier from the content public key, following the
/// self-certifying-name idea the paper cites ([5]).
pub fn content_id_for_key(content_key: &PublicKey) -> Hash256 {
    Sha256::digest_parts(&[b"sdr/content-id", &content_key.encode()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sign::HmacSigner;

    fn body(serial: u64, owner_key: &PublicKey) -> CertificateBody {
        CertificateBody {
            serial,
            role: CertRole::Master,
            subject_addr: "10.0.0.1:7000".to_string(),
            subject_key: HmacSigner::from_seed_label(serial, b"subject").public_key(),
            issued_at_us: 1_000,
            content_id: content_id_for_key(owner_key),
            shard: 0,
        }
    }

    #[test]
    fn issue_and_verify() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        cert.verify(&owner_pk).unwrap();
        cert.verify_role(&owner_pk, CertRole::Master).unwrap();
    }

    #[test]
    fn wrong_issuer_rejected() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let mallory = HmacSigner::from_seed_label(2, b"mallory");
        let owner_pk = owner.public_key();
        let cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        assert!(cert.verify(&mallory.public_key()).is_err());
    }

    #[test]
    fn tampered_address_rejected() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let mut cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        cert.body.subject_addr = "6.6.6.6:666".to_string();
        assert!(cert.verify(&owner_pk).is_err());
    }

    #[test]
    fn tampered_key_rejected() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let mut cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        cert.body.subject_key = HmacSigner::from_seed_label(99, b"evil").public_key();
        assert!(cert.verify(&owner_pk).is_err());
    }

    #[test]
    fn role_check_enforced() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        assert_eq!(
            cert.verify_role(&owner_pk, CertRole::Slave),
            Err(CryptoError::InvalidCertificate("unexpected role"))
        );
    }

    #[test]
    fn shard_scope_is_signed_and_enforced() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let mut b = body(1, &owner_pk);
        b.shard = 3;
        let cert = Certificate::issue(b, &mut owner).unwrap();
        cert.verify_scoped(&owner_pk, CertRole::Master, 3).unwrap();
        // Scope mismatch is rejected even though the signature holds.
        assert_eq!(
            cert.verify_scoped(&owner_pk, CertRole::Master, 0),
            Err(CryptoError::InvalidCertificate("wrong shard scope"))
        );
        // Rewriting the claim breaks the signature.
        let mut forged = cert;
        forged.body.shard = 0;
        assert!(forged.verify(&owner_pk).is_err());
    }

    #[test]
    fn scoped_cache_key_binds_statement_not_signature() {
        let mut owner = HmacSigner::from_seed_label(1, b"owner");
        let owner_pk = owner.public_key();
        let other_pk = HmacSigner::from_seed_label(2, b"other").public_key();
        let cert = Certificate::issue(body(1, &owner_pk), &mut owner).unwrap();
        let k = cert.scoped_cache_key(&owner_pk, CertRole::Master, 0);
        // Stable for the same statement, even with a mangled signature.
        let mut mangled = cert.clone();
        mangled.signature = owner.sign(b"junk").unwrap();
        assert_eq!(k, mangled.scoped_cache_key(&owner_pk, CertRole::Master, 0));
        // Any change to issuer, role, shard, or body moves the key.
        assert_ne!(k, cert.scoped_cache_key(&other_pk, CertRole::Master, 0));
        assert_ne!(k, cert.scoped_cache_key(&owner_pk, CertRole::Slave, 0));
        assert_ne!(k, cert.scoped_cache_key(&owner_pk, CertRole::Master, 1));
        let mut b2 = cert.clone();
        b2.body.serial = 2;
        assert_ne!(k, b2.scoped_cache_key(&owner_pk, CertRole::Master, 0));
    }

    #[test]
    fn content_id_stable_and_distinct() {
        let a = HmacSigner::from_seed_label(1, b"k").public_key();
        let b = HmacSigner::from_seed_label(2, b"k").public_key();
        assert_eq!(content_id_for_key(&a), content_id_for_key(&a));
        assert_ne!(content_id_for_key(&a), content_id_for_key(&b));
    }

    #[test]
    fn encoding_is_injective_on_fields() {
        let owner_pk = HmacSigner::from_seed_label(1, b"owner").public_key();
        let b1 = body(1, &owner_pk);
        let mut b2 = b1.clone();
        b2.serial = 2;
        assert_ne!(b1.encode(), b2.encode());
        let mut b3 = b1.clone();
        b3.issued_at_us += 1;
        assert_ne!(b1.encode(), b3.encode());
    }
}
