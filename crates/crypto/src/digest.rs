//! Common digest trait and fixed-size hash value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An incremental cryptographic hash function.
///
/// Implemented by [`crate::Sha1`] and [`crate::Sha256`].  The associated
/// `Output` type is a fixed-size value type ([`Hash160`] or [`Hash256`]).
pub trait Digest: Clone {
    /// The hash value produced by this function.
    type Output: AsRef<[u8]> + Clone + Eq + fmt::Debug;

    /// Internal block length in bytes (needed by HMAC).
    const BLOCK_LEN: usize;
    /// Output length in bytes.
    const OUTPUT_LEN: usize;

    /// Creates a fresh hasher in its initial state.
    fn new() -> Self;

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the final hash value.
    fn finalize(self) -> Self::Output;

    /// Convenience one-shot hash of `data`.
    fn digest(data: &[u8]) -> Self::Output {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot hash over a sequence of byte slices (domain-separated
    /// concatenation is the caller's responsibility).
    fn digest_parts(parts: &[&[u8]]) -> Self::Output {
        let mut h = Self::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }
}

macro_rules! hash_value {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub struct $name(pub [u8; $len]);

        impl $name {
            /// Length of the hash value in bytes.
            pub const LEN: usize = $len;

            /// The all-zero hash value (used as a placeholder/sentinel).
            pub const ZERO: $name = $name([0u8; $len]);

            /// Returns the raw bytes.
            pub fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Builds a hash value from a slice.
            ///
            /// Returns `None` when `bytes` is not exactly [`Self::LEN`] long.
            pub fn from_slice(bytes: &[u8]) -> Option<Self> {
                if bytes.len() == $len {
                    let mut out = [0u8; $len];
                    out.copy_from_slice(bytes);
                    Some(Self(out))
                } else {
                    None
                }
            }

            /// Hex-encodes the hash value.
            pub fn to_hex(&self) -> String {
                crate::hex::encode(&self.0)
            }

            /// Parses a hex-encoded hash value.
            pub fn from_hex(s: &str) -> Option<Self> {
                crate::hex::decode(s).and_then(|v| Self::from_slice(&v))
            }

            /// Returns a short (8 hex char) prefix, handy for logs.
            pub fn short(&self) -> String {
                self.to_hex()[..8].to_string()
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.short())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.to_hex())
            }
        }
    };
}

hash_value!(
    /// A 160-bit hash value (SHA-1 output).
    Hash160,
    20
);
hash_value!(
    /// A 256-bit hash value (SHA-256 output).
    Hash256,
    32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash256_hex_roundtrip() {
        let h = Hash256([0xab; 32]);
        let hex = h.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Hash256::from_hex(&hex), Some(h));
    }

    #[test]
    fn hash160_from_slice_rejects_bad_length() {
        assert!(Hash160::from_slice(&[0u8; 19]).is_none());
        assert!(Hash160::from_slice(&[0u8; 21]).is_none());
        assert!(Hash160::from_slice(&[0u8; 20]).is_some());
    }

    #[test]
    fn short_prefix_is_eight_chars() {
        assert_eq!(Hash256::ZERO.short(), "00000000");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Hash160([0x01; 20]);
        let b = Hash160([0x02; 20]);
        assert!(a < b);
    }
}
