//! HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//!
//! Used to derive all key material deterministically from a seed so that
//! simulations are exactly reproducible run-to-run.

use crate::hmac::HmacSha256;

/// Deterministic random bit generator (HMAC-DRBG with SHA-256).
///
/// # Examples
///
/// ```
/// use sdr_crypto::HmacDrbg;
///
/// let mut a = HmacDrbg::from_seed_label(7, b"keys");
/// let mut b = HmacDrbg::from_seed_label(7, b"keys");
/// assert_eq!(a.generate(16), b.generate(16)); // Same seed, same stream.
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material (entropy || nonce ||
    /// personalization, concatenated by the caller).
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0x00; 32],
            value: [0x01; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Convenience constructor from a 64-bit seed plus a domain-separation
    /// label, the common pattern in the simulator.
    pub fn from_seed_label(seed: u64, label: &[u8]) -> Self {
        let mut material = Vec::with_capacity(8 + label.len());
        material.extend_from_slice(&seed.to_be_bytes());
        material.extend_from_slice(label);
        Self::new(&material)
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&self.value);
        mac.update(&[0x00]);
        if let Some(data) = provided {
            mac.update(data);
        }
        self.key = mac.finalize().0;
        self.value = HmacSha256::mac(&self.key, &self.value).0;

        if let Some(data) = provided {
            let mut mac = HmacSha256::new(&self.key);
            mac.update(&self.value);
            mac.update(&[0x01]);
            mac.update(data);
            self.key = mac.finalize().0;
            self.value = HmacSha256::mac(&self.key, &self.value).0;
        }
    }

    /// Mixes fresh seed material into the state.
    pub fn reseed(&mut self, seed: &[u8]) {
        self.update(Some(seed));
        self.reseed_counter = 1;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut offset = 0;
        while offset < out.len() {
            self.value = HmacSha256::mac(&self.key, &self.value).0;
            let take = (out.len() - offset).min(32);
            out[offset..offset + take].copy_from_slice(&self.value[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Returns `n` pseudorandom bytes.
    pub fn generate(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a pseudorandom array (convenience for key material).
    pub fn gen_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let bytes: [u8; 8] = self.gen_array();
        u64::from_be_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = HmacDrbg::new(b"seed material");
        let mut b = HmacDrbg::new(b"seed material");
        assert_eq!(a.generate(100), b.generate(100));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed A");
        let mut b = HmacDrbg::new(b"seed B");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn label_separation() {
        let mut a = HmacDrbg::from_seed_label(7, b"wots");
        let mut b = HmacDrbg::from_seed_label(7, b"mss");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut d = HmacDrbg::new(b"x");
        let first = d.generate(32);
        let second = d.generate(32);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"x");
        let mut b = HmacDrbg::new(b"x");
        let _ = a.generate(16);
        let _ = b.generate(16);
        b.reseed(b"extra entropy");
        assert_ne!(a.generate(16), b.generate(16));
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Crude sanity check: bit balance within 5% over 64 KiB.
        let mut d = HmacDrbg::new(b"balance test");
        let data = d.generate(65536);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        let total = (data.len() * 8) as f64;
        let ratio = f64::from(ones) / total;
        assert!((0.45..0.55).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn large_request_spans_blocks() {
        let mut d = HmacDrbg::new(b"big");
        let out = d.generate(1000);
        assert_eq!(out.len(), 1000);
        // No obvious 32-byte repetition.
        assert_ne!(&out[0..32], &out[32..64]);
    }
}
