//! Error type for cryptographic operations.

use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A one-time / many-time signing key has no signatures left.
    KeyExhausted,
    /// A signature failed verification.
    InvalidSignature,
    /// An input had the wrong length (expected, actual).
    InvalidLength(usize, usize),
    /// A Merkle proof did not authenticate against the expected root.
    InvalidProof,
    /// A certificate failed validation (reason).
    InvalidCertificate(&'static str),
    /// Mismatched key or signature scheme (e.g. HMAC signature checked
    /// against an MSS public key).
    SchemeMismatch,
    /// A structurally malformed input was supplied.
    Malformed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::KeyExhausted => write!(f, "signing key exhausted"),
            CryptoError::InvalidSignature => write!(f, "invalid signature"),
            CryptoError::InvalidLength(want, got) => {
                write!(f, "invalid length: expected {want}, got {got}")
            }
            CryptoError::InvalidProof => write!(f, "Merkle proof does not authenticate"),
            CryptoError::InvalidCertificate(why) => write!(f, "invalid certificate: {why}"),
            CryptoError::SchemeMismatch => write!(f, "signature/key scheme mismatch"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = CryptoError::InvalidLength(32, 20).to_string();
        assert!(msg.contains("32") && msg.contains("20"));
        assert!(CryptoError::KeyExhausted.to_string().contains("exhausted"));
    }
}
