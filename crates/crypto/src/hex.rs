//! Minimal hex encoding/decoding helpers.

/// Encodes `bytes` as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper- or lowercase) into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let raw = s.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00, 0x01, 0xab, 0xff];
        assert_eq!(encode(&data), "0001abff");
        assert_eq!(decode("0001abff").unwrap(), data);
        assert_eq!(decode("0001ABFF").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_none());
        assert!(decode("zz").is_none());
    }

    #[test]
    fn empty_ok() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
