//! HMAC (RFC 2104) over any [`Digest`] implementation.

use crate::digest::{Digest, Hash160, Hash256};
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// Generic incremental HMAC.
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    opad_key: Vec<u8>,
}

/// Incremental HMAC-SHA-256 (the workhorse MAC in this workspace).
pub type HmacSha256 = Hmac<Sha256>;

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let block = D::BLOCK_LEN;
        let mut key_block = vec![0u8; block];
        if key.len() > block {
            let kh = D::digest(key);
            key_block[..D::OUTPUT_LEN].copy_from_slice(kh.as_ref());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = key_block.clone();
        let mut opad = key_block;
        for b in ipad.iter_mut() {
            *b ^= 0x36;
        }
        for b in opad.iter_mut() {
            *b ^= 0x5c;
        }

        let mut inner = D::new();
        inner.update(&ipad);
        Hmac {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes and returns the MAC value.
    pub fn finalize(self) -> D::Output {
        let inner_hash = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(inner_hash.as_ref());
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> D::Output {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }
}

/// One-shot HMAC-SHA-1.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> Hash160 {
    Hmac::<Sha1>::mac(key, data)
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Hash256 {
    Hmac::<Sha256>::mac(key, data)
}

/// Constant-time byte-slice equality (length leaks, contents do not).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test case 1 for HMAC-SHA-1.
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha1(&key, b"Hi There");
        assert_eq!(mac.to_hex(), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let mut h = HmacSha256::new(key);
        h.update(b"part one | ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hmac_sha256(key, b"part one | part two"));
    }

    #[test]
    fn different_keys_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
