//! From-scratch cryptographic substrate for the Secure Data Replication system.
//!
//! The paper ("Secure Data Replication over Untrusted Hosts", HotOS 2003)
//! relies on three cryptographic building blocks:
//!
//! * **SHA-1** (FIPS 180-1) — the secure hash used inside pledge packets
//!   (`sha1`); we additionally provide SHA-256 (`sha256`) as the modern
//!   default used by the signature scheme.
//! * **Digital signatures** — slaves sign pledge packets, masters sign
//!   keep-alives and state updates, and the content owner signs master
//!   certificates.  Instead of 2003-era RSA/DSA (which would need a bignum
//!   stack) we implement *hash-based* signatures: Winternitz one-time
//!   signatures (`wots`) certified by a Merkle tree (`mss`).  These preserve
//!   the cost asymmetry the paper's auditor argument depends on: signing is
//!   far more expensive than verification, which is more expensive than
//!   hashing.
//! * **Certificates** (`cert`) binding a server's contact address to its
//!   public key, signed with the content key, exactly as in the paper's
//!   system model (Section 2).
//!
//! Supporting pieces: HMAC (`hmac`), a deterministic HMAC-DRBG (`drbg`) so
//! key generation is reproducible from a seed, Merkle hash trees (`merkle`,
//! also used by the state-signing baseline), and a pluggable signer facade
//! (`sign`) that lets large-scale simulations swap the real Merkle signature
//! scheme for a cheap HMAC-based stand-in without changing protocol code.
//!
//! No `unsafe` code and no external cryptography dependencies are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod digest;
pub mod drbg;
pub mod error;
pub mod hex;
pub mod hmac;
pub mod merkle;
pub mod mss;
pub mod sha1;
pub mod sha256;
pub mod sign;
pub mod wots;

pub use cert::{content_id_for_key, CertRole, Certificate, CertificateBody};
pub use digest::{Digest, Hash160, Hash256};
pub use drbg::HmacDrbg;
pub use error::CryptoError;
pub use hmac::{hmac_sha1, hmac_sha256, Hmac, HmacSha256};
pub use merkle::{chunk_hash, verify_path, MerkleProof, MerkleRangeProof, MerkleTree, TreapStep};
pub use mss::{MssKeypair, MssPublicKey, MssSignature};
pub use sha1::Sha1;
pub use sha256::Sha256;
pub use sign::{
    HmacSigner, KeyedVerifier, MssSigner, PublicKey, Signature, SignatureScheme, Signer,
};
pub use wots::{WotsKeypair, WotsParams, WotsSignature};
