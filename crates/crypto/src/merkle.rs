//! Merkle hash trees with authentication paths.
//!
//! Two tree shapes share the `leaf_hash`/`node_hash` primitives:
//!
//! * [`MerkleTree`] — the classic balanced tree over a leaf *list*; the
//!   Merkle signature scheme (`crate::mss`) certifies one-time keys with
//!   it, exactly the "hash-tree authentication [12]" the paper's
//!   related-work section describes.
//! * **Treap paths** ([`TreapStep`], [`verify_path`]) — authentication
//!   paths through the search-tree-shaped digests the persistent store
//!   (`sdr-store::pmap`) maintains, where every node carries an *entry*
//!   (a key/value commitment) in addition to its two children.  These
//!   back the protocol's authenticated point reads: a slave proves a row
//!   or file against a master-signed state digest with O(log n) hashes.

use crate::digest::{Digest, Hash256};
use crate::error::CryptoError;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Domain-separation prefixes so leaves can never collide with nodes.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hashes raw leaf data into a leaf hash.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    Sha256::digest_parts(&[&[LEAF_PREFIX], data])
}

/// Hashes two child hashes into a parent node hash.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    Sha256::digest_parts(&[&[NODE_PREFIX], left.as_ref(), right.as_ref()])
}

/// Domain tag for content-defined chunk commitments ([`chunk_hash`]).
const CHUNK_DOMAIN: &[u8] = b"sdr/chunk/v1";

/// Commitment to one content-defined chunk of file data.
///
/// The chunk store (`sdr-store::chunk`) addresses chunks by this digest,
/// and file manifests embed it per chunk, so a streamed read verifies
/// each chunk independently: `chunk_hash(bytes)` must equal the manifest
/// entry, which the manifest's own commitment binds into the state
/// digest.  The length prefix plus a dedicated domain keep chunk
/// commitments disjoint from leaf/node hashes and from each other under
/// concatenation ambiguity.
pub fn chunk_hash(data: &[u8]) -> Hash256 {
    Sha256::digest_parts(&[CHUNK_DOMAIN, &(data.len() as u64).to_be_bytes(), data])
}

/// Commitment to one search-tree entry: a key commitment paired with a
/// value commitment.  Binding key and value separately (instead of
/// hashing their concatenation) lets authentication paths ship a path
/// node's key in the clear — needed to check search-order consistency
/// for absence proofs — while its possibly-large value travels only as
/// a 32-byte commitment.
pub fn entry_commitment(key_commitment: &Hash256, value_commitment: &Hash256) -> Hash256 {
    node_hash(key_commitment, value_commitment)
}

/// Subtree hash of a search-tree node from its parts:
/// `H(H(left, entry), right)`.
pub fn treap_node_hash(left: &Hash256, entry: &Hash256, right: &Hash256) -> Hash256 {
    node_hash(&node_hash(left, entry), right)
}

/// One step up a treap-shaped authentication path: the ancestor's entry
/// commitment, the subtree hash of its *other* child, and which side the
/// proven subtree hangs off.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreapStep {
    /// The ancestor node's entry commitment ([`entry_commitment`]).
    pub entry: Hash256,
    /// Subtree hash of the ancestor's child on the *opposite* side.
    pub sibling: Hash256,
    /// `true` when the proven subtree is the ancestor's **left** child.
    pub from_left: bool,
}

/// Folds a starting subtree hash up a treap authentication path,
/// returning the implied root.  `steps` run leaf-to-root.
pub fn fold_treap_path(start: &Hash256, steps: &[TreapStep]) -> Hash256 {
    let mut acc = *start;
    for step in steps {
        acc = if step.from_left {
            treap_node_hash(&acc, &step.entry, &step.sibling)
        } else {
            treap_node_hash(&step.sibling, &step.entry, &acc)
        };
    }
    acc
}

/// Verifies that `start` (the commitment of the proven subtree — a
/// present node's [`treap_node_hash`], or the empty-subtree digest for an
/// absence proof) folds up `steps` to `root`.
///
/// This checks hash structure only; callers that need *semantic* claims
/// (the path really is the search path for a key) must additionally
/// check key ordering against the per-step keys they transported — the
/// typed layer in `sdr-store` does exactly that.
pub fn verify_path(
    root: &Hash256,
    start: &Hash256,
    steps: &[TreapStep],
) -> Result<(), CryptoError> {
    if fold_treap_path(start, steps) == *root {
        Ok(())
    } else {
        Err(CryptoError::InvalidProof)
    }
}

/// A Merkle tree over a list of leaf hashes.
///
/// Odd nodes at any level are paired with themselves (duplicated), so the
/// tree is defined for any non-zero leaf count.  All levels are retained,
/// making proof generation O(log n) with no recomputation.
///
/// # Examples
///
/// ```
/// use sdr_crypto::merkle::{leaf_hash, MerkleTree};
///
/// let items = [b"alpha".as_ref(), b"beta".as_ref(), b"gamma".as_ref()];
/// let tree = MerkleTree::from_data(&items).unwrap();
/// let proof = tree.prove(1).unwrap();
/// MerkleTree::verify(&tree.root(), &leaf_hash(b"beta"), &proof).unwrap();
/// assert!(MerkleTree::verify(&tree.root(), &leaf_hash(b"evil"), &proof).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    levels: Vec<Vec<Hash256>>,
}

/// An authentication path proving a leaf belongs to a root.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// Sibling hashes from the leaf level up to (excluding) the root.
    pub siblings: Vec<Hash256>,
}

impl MerkleTree {
    /// Builds a tree from pre-hashed leaves.
    ///
    /// Returns an error when `leaves` is empty.
    pub fn from_leaves(leaves: Vec<Hash256>) -> Result<Self, CryptoError> {
        if leaves.is_empty() {
            return Err(CryptoError::Malformed("empty Merkle tree"));
        }
        let mut levels = vec![leaves];
        while levels.last().map(Vec::len) != Some(1) {
            let prev = levels.last().expect("levels is non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        Ok(MerkleTree { levels })
    }

    /// Builds a tree by hashing raw leaf data with [`leaf_hash`].
    pub fn from_data<T: AsRef<[u8]>>(items: &[T]) -> Result<Self, CryptoError> {
        Self::from_leaves(items.iter().map(|d| leaf_hash(d.as_ref())).collect())
    }

    /// The tree root.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns the leaf hash at `index`, if present.
    pub fn leaf(&self, index: usize) -> Option<&Hash256> {
        self.levels[0].get(index)
    }

    /// Produces the authentication path for the leaf at `index`.
    pub fn prove(&self, index: usize) -> Result<MerkleProof, CryptoError> {
        if index >= self.leaf_count() {
            return Err(CryptoError::Malformed("leaf index out of range"));
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Ok(MerkleProof {
            leaf_index: index as u64,
            siblings,
        })
    }

    /// Verifies that `leaf` at the proof's index folds up to `root`.
    pub fn verify(root: &Hash256, leaf: &Hash256, proof: &MerkleProof) -> Result<(), CryptoError> {
        let computed = Self::fold(leaf, proof);
        if computed == *root {
            Ok(())
        } else {
            Err(CryptoError::InvalidProof)
        }
    }

    /// Folds a leaf up an authentication path, returning the implied root.
    pub fn fold(leaf: &Hash256, proof: &MerkleProof) -> Hash256 {
        let mut acc = *leaf;
        let mut idx = proof.leaf_index;
        for sibling in &proof.siblings {
            acc = if idx & 1 == 0 {
                node_hash(&acc, sibling)
            } else {
                node_hash(sibling, &acc)
            };
            idx >>= 1;
        }
        acc
    }

    /// Height of the tree (number of levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Produces one authentication object for the contiguous leaf range
    /// `[first, end)` — O(log n) sibling hashes total, instead of one
    /// full path per leaf.
    pub fn prove_range(&self, first: usize, end: usize) -> Result<MerkleRangeProof, CryptoError> {
        if first >= end || end > self.leaf_count() {
            return Err(CryptoError::Malformed("leaf range out of bounds"));
        }
        let mut siblings = Vec::new();
        let (mut a, mut b) = (first, end);
        for level in &self.levels[..self.levels.len() - 1] {
            if a % 2 == 1 {
                siblings.push(level[a - 1]);
                a -= 1;
            }
            if b % 2 == 1 && b < level.len() {
                siblings.push(level[b]);
            }
            a /= 2;
            b = b.div_ceil(2);
        }
        Ok(MerkleRangeProof {
            first: first as u64,
            siblings,
        })
    }
}

/// An authentication object for a *contiguous* range of leaves.
///
/// Where [`MerkleProof`] ships one sibling path per leaf (O(k log n)
/// hashes for k leaves), a range proof ships only the boundary siblings:
/// the verifier folds the claimed leaves pairwise level by level, pulling
/// a sibling from the proof only where the known segment starts at an odd
/// index or ends before an odd boundary — O(log n) hashes total.
///
/// The verifier must know the tree's total leaf count from a trusted
/// channel (here: the manifest encoding the outer fold commits to), so
/// the odd-node duplication rule cannot be abused to append phantom
/// copies of the last leaf.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleRangeProof {
    /// Index of the first proven leaf.
    pub first: u64,
    /// Boundary sibling hashes, leaf level upward; within one level the
    /// left sibling (if any) precedes the right.
    pub siblings: Vec<Hash256>,
}

impl MerkleRangeProof {
    /// Folds the claimed `leaves` (the range's leaf hashes, in order) up
    /// to the implied root of a tree with `leaf_count` total leaves.
    ///
    /// Errors when the range is out of bounds or the proof has the wrong
    /// number of siblings for this geometry.
    pub fn fold(&self, leaf_count: usize, leaves: &[Hash256]) -> Result<Hash256, CryptoError> {
        let first = self.first as usize;
        let end = first.checked_add(leaves.len()).ok_or(CryptoError::Malformed("range overflow"))?;
        if leaves.is_empty() || end > leaf_count {
            return Err(CryptoError::Malformed("leaf range out of bounds"));
        }
        let mut segment: Vec<Hash256> = leaves.to_vec();
        let (mut a, mut b) = (first, end);
        let mut level_len = leaf_count;
        let mut used = 0usize;
        while level_len > 1 {
            if a % 2 == 1 {
                let sib = *self.siblings.get(used).ok_or(CryptoError::InvalidProof)?;
                used += 1;
                segment.insert(0, sib);
                a -= 1;
            }
            if b % 2 == 1 {
                if b < level_len {
                    let sib = *self.siblings.get(used).ok_or(CryptoError::InvalidProof)?;
                    used += 1;
                    segment.push(sib);
                } else {
                    // Odd tail: the last node pairs with itself.
                    segment.push(*segment.last().expect("segment non-empty"));
                }
            }
            segment = segment
                .chunks(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            a /= 2;
            b = b.div_ceil(2);
            level_len = level_len.div_ceil(2);
        }
        if used != self.siblings.len() || segment.len() != 1 {
            return Err(CryptoError::InvalidProof);
        }
        Ok(segment[0])
    }

    /// Verifies the claimed leaf range against a trusted root.
    pub fn verify(
        &self,
        root: &Hash256,
        leaf_count: usize,
        leaves: &[Hash256],
    ) -> Result<(), CryptoError> {
        if self.fold(leaf_count, leaves)? == *root {
            Ok(())
        } else {
            Err(CryptoError::InvalidProof)
        }
    }

    /// Approximate wire size in bytes (index + sibling hashes).
    pub fn wire_len(&self) -> usize {
        8 + self.siblings.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n)
            .map(|i| leaf_hash(format!("leaf-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        assert_eq!(tree.root(), l[0]);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn empty_rejected() {
        assert!(MerkleTree::from_leaves(vec![]).is_err());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=33 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone()).unwrap();
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                MerkleTree::verify(&tree.root(), leaf, &proof)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l).unwrap();
        let proof = tree.prove(3).unwrap();
        let bogus = leaf_hash(b"not a real leaf");
        assert_eq!(
            MerkleTree::verify(&tree.root(), &bogus, &proof),
            Err(CryptoError::InvalidProof)
        );
    }

    #[test]
    fn wrong_index_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let mut proof = tree.prove(3).unwrap();
        proof.leaf_index = 4;
        assert!(MerkleTree::verify(&tree.root(), &l[3], &proof).is_err());
    }

    #[test]
    fn tampered_sibling_fails() {
        let l = leaves(16);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let mut proof = tree.prove(7).unwrap();
        proof.siblings[2] = leaf_hash(b"evil");
        assert!(MerkleTree::verify(&tree.root(), &l[7], &proof).is_err());
    }

    #[test]
    fn out_of_range_proof_rejected() {
        let tree = MerkleTree::from_leaves(leaves(4)).unwrap();
        assert!(tree.prove(4).is_err());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A node hash over (x, x) must differ from leaf hash of x||x.
        let x = leaf_hash(b"x");
        let node = node_hash(&x, &x);
        let mut concat = Vec::new();
        concat.extend_from_slice(x.as_ref());
        concat.extend_from_slice(x.as_ref());
        assert_ne!(node, leaf_hash(&concat));
    }

    #[test]
    fn from_data_matches_manual() {
        let items = [b"a".as_ref(), b"b".as_ref(), b"c".as_ref()];
        let t1 = MerkleTree::from_data(&items).unwrap();
        let t2 =
            MerkleTree::from_leaves(items.iter().map(|d| leaf_hash(d)).collect()).unwrap();
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_data(&[b"a", b"b"]).unwrap();
        let b = MerkleTree::from_data(&[b"a", b"c"]).unwrap();
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn range_proofs_verify_for_all_sizes_and_ranges() {
        for n in 1..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone()).unwrap();
            for first in 0..n {
                for end in (first + 1)..=n {
                    let proof = tree.prove_range(first, end).unwrap();
                    proof
                        .verify(&tree.root(), n, &l[first..end])
                        .unwrap_or_else(|e| panic!("n={n} [{first},{end}): {e}"));
                }
            }
        }
    }

    #[test]
    fn range_proof_is_logarithmic_not_linear() {
        let n = 1024;
        let tree = MerkleTree::from_leaves(leaves(n)).unwrap();
        let proof = tree.prove_range(100, 356).unwrap();
        // 256 point proofs would carry 256 * 10 siblings; the range proof
        // carries at most two boundary siblings per level.
        assert!(proof.siblings.len() <= 2 * tree.height());
    }

    #[test]
    fn range_proof_rejects_mutations() {
        let n = 33;
        let l = leaves(n);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let proof = tree.prove_range(5, 21).unwrap();
        let root = tree.root();

        // Dropped leaf.
        assert!(proof.verify(&root, n, &l[5..20]).is_err());
        // Extra leaf.
        assert!(proof.verify(&root, n, &l[5..22]).is_err());
        // Swapped neighbours.
        let mut swapped = l[5..21].to_vec();
        swapped.swap(3, 4);
        assert!(proof.verify(&root, n, &swapped).is_err());
        // Shifted start index.
        let mut shifted = proof.clone();
        shifted.first = 6;
        assert!(shifted.verify(&root, n, &l[5..21]).is_err());
        // Tampered sibling.
        let mut tampered = proof.clone();
        tampered.siblings[0] = leaf_hash(b"evil");
        assert!(tampered.verify(&root, n, &l[5..21]).is_err());
        // Lying about the leaf count on a tail-touching range
        // (phantom-duplicate defence: the odd tail pairs with itself,
        // so a phantom 34th leaf changes the required sibling set).
        let tail = tree.prove_range(28, 33).unwrap();
        tail.verify(&root, n, &l[28..33]).unwrap();
        assert!(tail.verify(&root, n + 1, &l[28..33]).is_err());
        // Empty claim.
        assert!(proof.verify(&root, n, &[]).is_err());
    }

    #[test]
    fn range_proof_out_of_bounds_rejected() {
        let tree = MerkleTree::from_leaves(leaves(8)).unwrap();
        assert!(tree.prove_range(3, 3).is_err());
        assert!(tree.prove_range(3, 9).is_err());
    }

    /// A three-node treap (b at the root, a left, c right) proved by hand.
    #[test]
    fn treap_path_folds_to_root() {
        let empty = leaf_hash(b"empty");
        let entry = |k: &[u8], v: &[u8]| entry_commitment(&leaf_hash(k), &leaf_hash(v));
        let ha = treap_node_hash(&empty, &entry(b"a", b"1"), &empty);
        let hc = treap_node_hash(&empty, &entry(b"c", b"3"), &empty);
        let root = treap_node_hash(&ha, &entry(b"b", b"2"), &hc);

        // Prove `a` (left child of the root).
        let steps = vec![TreapStep {
            entry: entry(b"b", b"2"),
            sibling: hc,
            from_left: true,
        }];
        verify_path(&root, &ha, &steps).unwrap();
        // Prove `c` (right child).
        let steps_c = vec![TreapStep {
            entry: entry(b"b", b"2"),
            sibling: ha,
            from_left: false,
        }];
        verify_path(&root, &hc, &steps_c).unwrap();
        // Absence below `a`: the empty link folds up through a and b.
        let absent = vec![
            TreapStep {
                entry: entry(b"a", b"1"),
                sibling: empty,
                from_left: true,
            },
            TreapStep {
                entry: entry(b"b", b"2"),
                sibling: hc,
                from_left: true,
            },
        ];
        verify_path(&root, &empty, &absent).unwrap();
    }

    #[test]
    fn treap_path_rejects_tampering() {
        let empty = leaf_hash(b"empty");
        let entry = |k: &[u8], v: &[u8]| entry_commitment(&leaf_hash(k), &leaf_hash(v));
        let ha = treap_node_hash(&empty, &entry(b"a", b"1"), &empty);
        let root = treap_node_hash(&ha, &entry(b"b", b"2"), &empty);
        let good = vec![TreapStep {
            entry: entry(b"b", b"2"),
            sibling: empty,
            from_left: true,
        }];
        verify_path(&root, &ha, &good).unwrap();

        // Flipping the side changes the fold.
        let mut flipped = good.clone();
        flipped[0].from_left = false;
        assert!(verify_path(&root, &ha, &flipped).is_err());
        // A forged entry (different value) fails.
        let forged = treap_node_hash(&empty, &entry(b"a", b"666"), &empty);
        assert!(verify_path(&root, &forged, &good).is_err());
        // Entry/value separation: swapping key and value commitments fails.
        let swapped = treap_node_hash(
            &empty,
            &entry_commitment(&leaf_hash(b"1"), &leaf_hash(b"a")),
            &empty,
        );
        assert!(verify_path(&root, &swapped, &good).is_err());
    }
}
