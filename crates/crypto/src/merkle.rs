//! Merkle hash trees with authentication paths.
//!
//! Used in two places: the Merkle signature scheme (`crate::mss`) certifies
//! one-time keys with a tree, and the *state signing* baseline
//! (`sdr-baselines`) signs a whole content snapshot by signing a tree root,
//! exactly the "hash-tree authentication [12]" the paper's related-work
//! section describes.

use crate::digest::{Digest, Hash256};
use crate::error::CryptoError;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Domain-separation prefixes so leaves can never collide with nodes.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hashes raw leaf data into a leaf hash.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    Sha256::digest_parts(&[&[LEAF_PREFIX], data])
}

/// Hashes two child hashes into a parent node hash.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    Sha256::digest_parts(&[&[NODE_PREFIX], left.as_ref(), right.as_ref()])
}

/// A Merkle tree over a list of leaf hashes.
///
/// Odd nodes at any level are paired with themselves (duplicated), so the
/// tree is defined for any non-zero leaf count.  All levels are retained,
/// making proof generation O(log n) with no recomputation.
///
/// # Examples
///
/// ```
/// use sdr_crypto::merkle::{leaf_hash, MerkleTree};
///
/// let items = [b"alpha".as_ref(), b"beta".as_ref(), b"gamma".as_ref()];
/// let tree = MerkleTree::from_data(&items).unwrap();
/// let proof = tree.prove(1).unwrap();
/// MerkleTree::verify(&tree.root(), &leaf_hash(b"beta"), &proof).unwrap();
/// assert!(MerkleTree::verify(&tree.root(), &leaf_hash(b"evil"), &proof).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    levels: Vec<Vec<Hash256>>,
}

/// An authentication path proving a leaf belongs to a root.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// Sibling hashes from the leaf level up to (excluding) the root.
    pub siblings: Vec<Hash256>,
}

impl MerkleTree {
    /// Builds a tree from pre-hashed leaves.
    ///
    /// Returns an error when `leaves` is empty.
    pub fn from_leaves(leaves: Vec<Hash256>) -> Result<Self, CryptoError> {
        if leaves.is_empty() {
            return Err(CryptoError::Malformed("empty Merkle tree"));
        }
        let mut levels = vec![leaves];
        while levels.last().map(Vec::len) != Some(1) {
            let prev = levels.last().expect("levels is non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        Ok(MerkleTree { levels })
    }

    /// Builds a tree by hashing raw leaf data with [`leaf_hash`].
    pub fn from_data<T: AsRef<[u8]>>(items: &[T]) -> Result<Self, CryptoError> {
        Self::from_leaves(items.iter().map(|d| leaf_hash(d.as_ref())).collect())
    }

    /// The tree root.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns the leaf hash at `index`, if present.
    pub fn leaf(&self, index: usize) -> Option<&Hash256> {
        self.levels[0].get(index)
    }

    /// Produces the authentication path for the leaf at `index`.
    pub fn prove(&self, index: usize) -> Result<MerkleProof, CryptoError> {
        if index >= self.leaf_count() {
            return Err(CryptoError::Malformed("leaf index out of range"));
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Ok(MerkleProof {
            leaf_index: index as u64,
            siblings,
        })
    }

    /// Verifies that `leaf` at the proof's index folds up to `root`.
    pub fn verify(root: &Hash256, leaf: &Hash256, proof: &MerkleProof) -> Result<(), CryptoError> {
        let computed = Self::fold(leaf, proof);
        if computed == *root {
            Ok(())
        } else {
            Err(CryptoError::InvalidProof)
        }
    }

    /// Folds a leaf up an authentication path, returning the implied root.
    pub fn fold(leaf: &Hash256, proof: &MerkleProof) -> Hash256 {
        let mut acc = *leaf;
        let mut idx = proof.leaf_index;
        for sibling in &proof.siblings {
            acc = if idx & 1 == 0 {
                node_hash(&acc, sibling)
            } else {
                node_hash(sibling, &acc)
            };
            idx >>= 1;
        }
        acc
    }

    /// Height of the tree (number of levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n)
            .map(|i| leaf_hash(format!("leaf-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        assert_eq!(tree.root(), l[0]);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn empty_rejected() {
        assert!(MerkleTree::from_leaves(vec![]).is_err());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=33 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone()).unwrap();
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                MerkleTree::verify(&tree.root(), leaf, &proof)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l).unwrap();
        let proof = tree.prove(3).unwrap();
        let bogus = leaf_hash(b"not a real leaf");
        assert_eq!(
            MerkleTree::verify(&tree.root(), &bogus, &proof),
            Err(CryptoError::InvalidProof)
        );
    }

    #[test]
    fn wrong_index_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let mut proof = tree.prove(3).unwrap();
        proof.leaf_index = 4;
        assert!(MerkleTree::verify(&tree.root(), &l[3], &proof).is_err());
    }

    #[test]
    fn tampered_sibling_fails() {
        let l = leaves(16);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let mut proof = tree.prove(7).unwrap();
        proof.siblings[2] = leaf_hash(b"evil");
        assert!(MerkleTree::verify(&tree.root(), &l[7], &proof).is_err());
    }

    #[test]
    fn out_of_range_proof_rejected() {
        let tree = MerkleTree::from_leaves(leaves(4)).unwrap();
        assert!(tree.prove(4).is_err());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A node hash over (x, x) must differ from leaf hash of x||x.
        let x = leaf_hash(b"x");
        let node = node_hash(&x, &x);
        let mut concat = Vec::new();
        concat.extend_from_slice(x.as_ref());
        concat.extend_from_slice(x.as_ref());
        assert_ne!(node, leaf_hash(&concat));
    }

    #[test]
    fn from_data_matches_manual() {
        let items = [b"a".as_ref(), b"b".as_ref(), b"c".as_ref()];
        let t1 = MerkleTree::from_data(&items).unwrap();
        let t2 =
            MerkleTree::from_leaves(items.iter().map(|d| leaf_hash(d)).collect()).unwrap();
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_data(&[b"a", b"b"]).unwrap();
        let b = MerkleTree::from_data(&[b"a", b"c"]).unwrap();
        assert_ne!(a.root(), b.root());
    }
}
