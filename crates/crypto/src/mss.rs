//! Merkle signature scheme (MSS): many-time signatures from WOTS leaves.
//!
//! A keypair of height `h` certifies `2^h` Winternitz one-time keys under a
//! single Merkle root.  Each signature reveals the leaf index, the WOTS
//! signature, and the authentication path; verifiers fold the recovered
//! one-time public key up the path and compare against the root.
//!
//! The signer is *stateful*: signing consumes leaves, and a fully consumed
//! key returns [`CryptoError::KeyExhausted`] — the system layer reacts by
//! rotating keys and re-certifying (see `sdr-core`).

use crate::digest::{Digest, Hash256};
use crate::error::CryptoError;
use crate::merkle::{MerkleProof, MerkleTree};
use crate::sha256::Sha256;
use crate::wots::{WotsKeypair, WotsSignature};
use serde::{Deserialize, Serialize};

/// Hashes a WOTS compressed public key into an MSS tree leaf.
fn mss_leaf(wots_pk: &Hash256) -> Hash256 {
    Sha256::digest_parts(&[b"mss/leaf", wots_pk.as_ref()])
}

/// Public key of an MSS keypair: the tree root plus its height.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MssPublicKey {
    /// Merkle root certifying all one-time keys.
    pub root: Hash256,
    /// Tree height (`2^height` signatures available).
    pub height: u8,
}

/// An MSS signature.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MssSignature {
    /// Which one-time key produced this signature.
    pub leaf_index: u64,
    /// The underlying one-time signature.
    pub wots: WotsSignature,
    /// Authentication path from the leaf to the root.
    pub auth_path: MerkleProof,
}

/// A stateful MSS signing key.
#[derive(Clone)]
pub struct MssKeypair {
    seed: [u8; 32],
    height: u8,
    next_leaf: u64,
    tree: MerkleTree,
}

impl MssKeypair {
    /// Generates a keypair of `height` (`2^height` signatures) from a seed.
    ///
    /// Key generation cost is `O(2^height)` WOTS key generations; heights of
    /// 8–12 are practical for tests and simulations.
    pub fn generate(seed: [u8; 32], height: u8) -> Result<Self, CryptoError> {
        if height == 0 || height > 20 {
            return Err(CryptoError::Malformed("MSS height must be in 1..=20"));
        }
        let leaf_count = 1u64 << height;
        let leaves: Vec<Hash256> = (0..leaf_count)
            .map(|i| mss_leaf(&WotsKeypair::for_leaf(&seed, i).public_key()))
            .collect();
        let tree = MerkleTree::from_leaves(leaves)?;
        Ok(MssKeypair {
            seed,
            height,
            next_leaf: 0,
            tree,
        })
    }

    /// The public key.
    pub fn public_key(&self) -> MssPublicKey {
        MssPublicKey {
            root: self.tree.root(),
            height: self.height,
        }
    }

    /// Number of signatures still available.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height) - self.next_leaf
    }

    /// Total capacity (`2^height`).
    pub fn capacity(&self) -> u64 {
        1u64 << self.height
    }

    /// Signs `message`, consuming one leaf.
    pub fn sign(&mut self, message: &[u8]) -> Result<MssSignature, CryptoError> {
        if self.next_leaf >= self.capacity() {
            return Err(CryptoError::KeyExhausted);
        }
        let index = self.next_leaf;
        self.next_leaf += 1;

        let wots_kp = WotsKeypair::for_leaf(&self.seed, index);
        let wots = wots_kp.sign_unchecked(message);
        let auth_path = self.tree.prove(index as usize)?;
        Ok(MssSignature {
            leaf_index: index,
            wots,
            auth_path,
        })
    }

    /// Verifies `sig` over `message` against `public`.
    pub fn verify(
        public: &MssPublicKey,
        message: &[u8],
        sig: &MssSignature,
    ) -> Result<(), CryptoError> {
        if sig.leaf_index != sig.auth_path.leaf_index {
            return Err(CryptoError::Malformed("leaf index mismatch"));
        }
        if sig.leaf_index >= (1u64 << public.height) {
            return Err(CryptoError::Malformed("leaf index beyond key capacity"));
        }
        let wots_pk = WotsKeypair::recover_public(message, &sig.wots)?;
        let leaf = mss_leaf(&wots_pk);
        MerkleTree::verify(&public.root, &leaf, &sig.auth_path)
            .map_err(|_| CryptoError::InvalidSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(height: u8) -> MssKeypair {
        MssKeypair::generate([0x42; 32], height).unwrap()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = keypair(3);
        let pk = kp.public_key();
        for i in 0..8 {
            let msg = format!("message {i}");
            let sig = kp.sign(msg.as_bytes()).unwrap();
            MssKeypair::verify(&pk, msg.as_bytes(), &sig).unwrap();
            assert_eq!(sig.leaf_index, i);
        }
    }

    #[test]
    fn exhaustion() {
        let mut kp = keypair(2);
        for _ in 0..4 {
            kp.sign(b"m").unwrap();
        }
        assert_eq!(kp.remaining(), 0);
        assert_eq!(kp.sign(b"m"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = keypair(2);
        let pk = kp.public_key();
        let sig = kp.sign(b"genuine").unwrap();
        assert!(MssKeypair::verify(&pk, b"forged", &sig).is_err());
    }

    #[test]
    fn cross_key_rejected() {
        let mut a = keypair(2);
        let b = MssKeypair::generate([0x43; 32], 2).unwrap();
        let sig = a.sign(b"msg").unwrap();
        assert!(MssKeypair::verify(&b.public_key(), b"msg", &sig).is_err());
    }

    #[test]
    fn replayed_leaf_index_mismatch_rejected() {
        let mut kp = keypair(3);
        let pk = kp.public_key();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.leaf_index = 1; // Claim a different leaf than the path proves.
        assert!(MssKeypair::verify(&pk, b"msg", &sig).is_err());
    }

    #[test]
    fn out_of_capacity_index_rejected() {
        let mut kp = keypair(2);
        let pk = kp.public_key();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.leaf_index = 100;
        sig.auth_path.leaf_index = 100;
        assert!(MssKeypair::verify(&pk, b"msg", &sig).is_err());
    }

    #[test]
    fn deterministic_public_key() {
        let a = MssKeypair::generate([7; 32], 3).unwrap();
        let b = MssKeypair::generate([7; 32], 3).unwrap();
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn invalid_heights_rejected() {
        assert!(MssKeypair::generate([0; 32], 0).is_err());
        assert!(MssKeypair::generate([0; 32], 21).is_err());
    }

    #[test]
    fn remaining_counts_down() {
        let mut kp = keypair(3);
        assert_eq!(kp.capacity(), 8);
        assert_eq!(kp.remaining(), 8);
        kp.sign(b"x").unwrap();
        assert_eq!(kp.remaining(), 7);
    }
}
