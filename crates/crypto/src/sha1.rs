//! SHA-1 (FIPS 180-1), the secure hash named by the paper for pledge packets.
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! implemented here because the paper (2003) specifies it for hashing query
//! results inside pledges.  The rest of the system uses SHA-256 by default,
//! and the pledge hash algorithm is configurable.

use crate::digest::{Digest, Hash160};

const H0: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    type Output = Hash160;
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Hash160 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        // `update` adjusted total_len; padding bytes must not count, but the
        // length was captured first so further updates are harmless.
        while self.buffer_len != 56 {
            let zeros = if self.buffer_len < 56 {
                56 - self.buffer_len
            } else {
                64 - self.buffer_len + 56
            };
            let chunk = [0u8; 64];
            self.update(&chunk[..zeros.min(64)]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash160(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::digest(data).to_hex()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_two_block() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn exact_block_boundary() {
        // 64- and 128-byte messages exercise the padding-block overflow path.
        let d64 = [0x61u8; 64];
        let d128 = [0x61u8; 128];
        assert_eq!(
            Sha1::digest(&d64).to_hex(),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
        let mut h = Sha1::new();
        h.update(&d128[..100]);
        h.update(&d128[100..]);
        assert_eq!(h.finalize(), Sha1::digest(&d128));
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_messages() {
        // 55 bytes: padding fits in one block; 56 bytes: needs an extra block.
        let m55 = [7u8; 55];
        let m56 = [7u8; 56];
        assert_ne!(Sha1::digest(&m55), Sha1::digest(&m56));
        // Cross-check against incremental single-byte feeding.
        let mut h = Sha1::new();
        for b in m56 {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), Sha1::digest(&m56));
    }
}
