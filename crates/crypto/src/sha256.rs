//! SHA-256 (FIPS 180-2), the default hash for signatures and state digests.

use crate::digest::{Digest, Hash256};

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Digest for Sha256 {
    type Output = Hash256;
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 32;

    fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        if self.buffer_len != 56 {
            let zeros = if self.buffer_len < 56 {
                56 - self.buffer_len
            } else {
                64 - self.buffer_len + 56
            };
            let chunk = [0u8; 64];
            self.update(&chunk[..zeros]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha256::digest(data).to_hex()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_two_block() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 1000, 2048] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_equals_concatenation() {
        let out = Sha256::digest_parts(&[b"hello ", b"world"]);
        assert_eq!(out, Sha256::digest(b"hello world"));
    }

    #[test]
    fn padding_boundaries() {
        // Exercise every interesting length around the 56-byte padding cut.
        for len in 50..70usize {
            let data = vec![0x5au8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }
}
