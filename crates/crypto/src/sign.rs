//! Pluggable signature facade used by every protocol role.
//!
//! Two schemes implement the same [`Signer`] interface:
//!
//! * [`MssSigner`] — the real hash-based Merkle signature scheme.  Use for
//!   security-focused tests, examples, and whenever end-to-end
//!   unforgeability matters.
//! * [`HmacSigner`] — a *simulation-only* stand-in whose "signature" is an
//!   HMAC under a key that is also embedded in the "public" key.  Anyone
//!   holding the public key could forge; this is acceptable inside the
//!   deterministic simulator (which is itself trusted) and keeps
//!   million-read experiments fast.  The simulator still charges the
//!   configured *virtual* signing cost, so performance results are
//!   unaffected by the swap.
//!
//! Protocol code treats both uniformly through [`Signature`] /
//! [`PublicKey`]; mixing schemes yields [`CryptoError::SchemeMismatch`].

use crate::digest::Hash256;
use crate::error::CryptoError;
use crate::hmac::{ct_eq, hmac_sha256};
use crate::mss::{MssKeypair, MssPublicKey, MssSignature};
use serde::{Deserialize, FromJson, Serialize, ToJson};

/// Identifies the signature scheme of a key or signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, ToJson, FromJson)]
pub enum SignatureScheme {
    /// Merkle signature scheme (hash-based, stateful, real security).
    Mss,
    /// HMAC stand-in (simulation-only, see module docs).
    Hmac,
}

/// A signature under either scheme.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signature {
    /// Merkle signature scheme signature.
    Mss(MssSignature),
    /// HMAC tag.
    Hmac(Hash256),
}

impl Signature {
    /// The scheme this signature belongs to.
    pub fn scheme(&self) -> SignatureScheme {
        match self {
            Signature::Mss(_) => SignatureScheme::Mss,
            Signature::Hmac(_) => SignatureScheme::Hmac,
        }
    }

    /// Approximate wire size in bytes (for cost accounting).
    pub fn wire_len(&self) -> usize {
        match self {
            Signature::Mss(s) => 8 + s.wots.values.len() * 32 + 8 + s.auth_path.siblings.len() * 32,
            Signature::Hmac(_) => 32,
        }
    }
}

/// A verification key under either scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PublicKey {
    /// MSS root + height.
    Mss(MssPublicKey),
    /// Simulation-only HMAC key (shared secret; see module docs).
    Hmac([u8; 32]),
}

impl PublicKey {
    /// The scheme of this key.
    pub fn scheme(&self) -> SignatureScheme {
        match self {
            PublicKey::Mss(_) => SignatureScheme::Mss,
            PublicKey::Hmac(_) => SignatureScheme::Hmac,
        }
    }

    /// Canonical byte encoding (for embedding into certificates and
    /// fingerprints).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            PublicKey::Mss(pk) => {
                let mut out = Vec::with_capacity(34);
                out.push(0x01);
                out.extend_from_slice(pk.root.as_ref());
                out.push(pk.height);
                out
            }
            PublicKey::Hmac(key) => {
                let mut out = Vec::with_capacity(33);
                out.push(0x02);
                out.extend_from_slice(key);
                out
            }
        }
    }

    /// Short fingerprint of the key (first 8 hex chars of its hash).
    pub fn fingerprint(&self) -> String {
        use crate::digest::Digest;
        crate::sha256::Sha256::digest(&self.encode()).short()
    }

    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        match (self, sig) {
            (PublicKey::Mss(pk), Signature::Mss(s)) => MssKeypair::verify(pk, message, s),
            (PublicKey::Hmac(key), Signature::Hmac(tag)) => {
                let expect = hmac_sha256(key, message);
                if ct_eq(expect.as_ref(), tag.as_ref()) {
                    Ok(())
                } else {
                    Err(CryptoError::InvalidSignature)
                }
            }
            _ => Err(CryptoError::SchemeMismatch),
        }
    }
}

/// A signing key: stateful, scheme-agnostic.
pub trait Signer: Send {
    /// Returns the verification key.
    fn public_key(&self) -> PublicKey;

    /// Signs a message (may consume one-time state).
    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError>;

    /// Signatures remaining, if the scheme is stateful (`None` = unlimited).
    fn remaining(&self) -> Option<u64> {
        None
    }

    /// The scheme implemented by this signer.
    fn scheme(&self) -> SignatureScheme;
}

/// Signer backed by the real Merkle signature scheme.
pub struct MssSigner {
    keypair: MssKeypair,
}

impl MssSigner {
    /// Creates a signer from seed material with `2^height` signatures.
    pub fn generate(seed: [u8; 32], height: u8) -> Result<Self, CryptoError> {
        Ok(MssSigner {
            keypair: MssKeypair::generate(seed, height)?,
        })
    }

    /// Wraps an existing keypair.
    pub fn from_keypair(keypair: MssKeypair) -> Self {
        MssSigner { keypair }
    }
}

impl Signer for MssSigner {
    fn public_key(&self) -> PublicKey {
        PublicKey::Mss(self.keypair.public_key())
    }

    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError> {
        Ok(Signature::Mss(self.keypair.sign(message)?))
    }

    fn remaining(&self) -> Option<u64> {
        Some(self.keypair.remaining())
    }

    fn scheme(&self) -> SignatureScheme {
        SignatureScheme::Mss
    }
}

/// Simulation-only HMAC signer (see module docs for the trust caveat).
#[derive(Clone)]
pub struct HmacSigner {
    key: [u8; 32],
}

impl HmacSigner {
    /// Creates a signer from key material.
    pub fn new(key: [u8; 32]) -> Self {
        HmacSigner { key }
    }

    /// Derives a signer deterministically from a seed and label.
    pub fn from_seed_label(seed: u64, label: &[u8]) -> Self {
        let mut drbg = crate::drbg::HmacDrbg::from_seed_label(seed, label);
        HmacSigner {
            key: drbg.gen_array(),
        }
    }
}

impl Signer for HmacSigner {
    fn public_key(&self) -> PublicKey {
        PublicKey::Hmac(self.key)
    }

    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError> {
        Ok(Signature::Hmac(hmac_sha256(&self.key, message)))
    }

    fn scheme(&self) -> SignatureScheme {
        SignatureScheme::Hmac
    }
}

/// Convenience wrapper bundling a public key with its owner name, used by
/// registries (directory, master slave-tables).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyedVerifier {
    /// Human-readable owner label (e.g. "slave-3").
    pub owner: String,
    /// The verification key.
    pub key: PublicKey,
}

impl KeyedVerifier {
    /// Creates a named verifier.
    pub fn new(owner: impl Into<String>, key: PublicKey) -> Self {
        KeyedVerifier {
            owner: owner.into(),
            key,
        }
    }

    /// Verifies a signature, labelling errors with the owner.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        self.key.verify(message, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_signer_roundtrip() {
        let mut s = HmacSigner::from_seed_label(1, b"test");
        let pk = s.public_key();
        let sig = s.sign(b"message").unwrap();
        pk.verify(b"message", &sig).unwrap();
        assert!(pk.verify(b"other", &sig).is_err());
    }

    #[test]
    fn mss_signer_roundtrip() {
        let mut s = MssSigner::generate([1; 32], 2).unwrap();
        let pk = s.public_key();
        let sig = s.sign(b"message").unwrap();
        pk.verify(b"message", &sig).unwrap();
        assert_eq!(s.remaining(), Some(3));
    }

    #[test]
    fn scheme_mismatch_detected() {
        let mut hmac = HmacSigner::from_seed_label(2, b"a");
        let mss = MssSigner::generate([2; 32], 1).unwrap();
        let sig = hmac.sign(b"m").unwrap();
        assert_eq!(
            mss.public_key().verify(b"m", &sig),
            Err(CryptoError::SchemeMismatch)
        );
    }

    #[test]
    fn mss_exhaustion_reported() {
        let mut s = MssSigner::generate([3; 32], 1).unwrap();
        s.sign(b"1").unwrap();
        s.sign(b"2").unwrap();
        assert_eq!(s.sign(b"3"), Err(CryptoError::KeyExhausted));
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    fn fingerprints_differ_per_key() {
        let a = HmacSigner::from_seed_label(1, b"x").public_key();
        let b = HmacSigner::from_seed_label(2, b"x").public_key();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 8);
    }

    #[test]
    fn wire_len_shapes() {
        let mut hmac = HmacSigner::from_seed_label(5, b"x");
        let mut mss = MssSigner::generate([5; 32], 3).unwrap();
        let hs = hmac.sign(b"m").unwrap();
        let ms = mss.sign(b"m").unwrap();
        // MSS signatures are much larger than HMAC tags.
        assert!(ms.wire_len() > 50 * hs.wire_len());
    }

    #[test]
    fn keyed_verifier_labels() {
        let mut s = HmacSigner::from_seed_label(9, b"kv");
        let v = KeyedVerifier::new("slave-1", s.public_key());
        let sig = s.sign(b"payload").unwrap();
        v.verify(b"payload", &sig).unwrap();
        assert_eq!(v.owner, "slave-1");
    }
}
