//! Winternitz one-time signatures (WOTS) over SHA-256.
//!
//! The one-time primitive underneath the Merkle signature scheme
//! ([`crate::mss`]).  Parameters follow the classic construction with
//! Winternitz parameter `w = 16` (4-bit digits): 64 message digits plus a
//! 3-digit checksum gives 67 hash chains of length 15.
//!
//! Security rests only on the hash function, which keeps this crate free of
//! bignum arithmetic while preserving the sign ≫ verify ≫ hash cost shape
//! the paper's auditor-throughput argument relies on.

use crate::digest::{Digest, Hash256};
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::hmac::HmacSha256;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// WOTS parameter set (fixed w=16 over SHA-256).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WotsParams;

impl WotsParams {
    /// Winternitz parameter (digit base).
    pub const W: u32 = 16;
    /// Chain length (`W - 1` applications of the chain function).
    pub const CHAIN_LEN: u32 = 15;
    /// Number of 4-bit message digits (256 / 4).
    pub const LEN1: usize = 64;
    /// Number of checksum digits (max checksum 64*15 = 960 < 16^3).
    pub const LEN2: usize = 3;
    /// Total number of chains.
    pub const LEN: usize = Self::LEN1 + Self::LEN2;
}

/// Chain function: one step of the Winternitz hash chain.
fn chain_step(x: &Hash256) -> Hash256 {
    Sha256::digest_parts(&[b"wots/chain", x.as_ref()])
}

/// Applies the chain function `steps` times.
fn chain(x: &Hash256, steps: u32) -> Hash256 {
    let mut acc = *x;
    for _ in 0..steps {
        acc = chain_step(&acc);
    }
    acc
}

/// Splits a message hash into `LEN1` base-16 digits plus checksum digits.
fn digits(msg_hash: &Hash256) -> [u8; WotsParams::LEN] {
    let mut out = [0u8; WotsParams::LEN];
    for (i, byte) in msg_hash.0.iter().enumerate() {
        out[i * 2] = byte >> 4;
        out[i * 2 + 1] = byte & 0x0f;
    }
    let checksum: u32 = out[..WotsParams::LEN1]
        .iter()
        .map(|&d| WotsParams::CHAIN_LEN - u32::from(d))
        .sum();
    out[WotsParams::LEN1] = ((checksum >> 8) & 0x0f) as u8;
    out[WotsParams::LEN1 + 1] = ((checksum >> 4) & 0x0f) as u8;
    out[WotsParams::LEN1 + 2] = (checksum & 0x0f) as u8;
    out
}

/// A WOTS keypair (secret chains plus compressed public key).
#[derive(Clone)]
pub struct WotsKeypair {
    secrets: Vec<Hash256>,
    public: Hash256,
    used: bool,
}

/// A WOTS signature: one intermediate chain value per digit.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WotsSignature {
    /// Chain values; `values[i] = F^{d_i}(sk_i)`.
    pub values: Vec<Hash256>,
}

impl WotsKeypair {
    /// Derives a keypair deterministically from 32 bytes of seed material.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let mut drbg = HmacDrbg::new(seed);
        let secrets: Vec<Hash256> = (0..WotsParams::LEN)
            .map(|_| Hash256(drbg.gen_array()))
            .collect();
        let public = Self::compress(secrets.iter().map(|s| chain(s, WotsParams::CHAIN_LEN)));
        WotsKeypair {
            secrets,
            public,
            used: false,
        }
    }

    /// Derives the keypair for MSS leaf `index` under a master seed.
    pub fn for_leaf(master_seed: &[u8; 32], index: u64) -> Self {
        let mut material = [0u8; 32];
        let mac = {
            let mut h = HmacSha256::new(master_seed);
            h.update(b"wots/leaf");
            h.update(&index.to_be_bytes());
            h.finalize()
        };
        material.copy_from_slice(&mac.0);
        Self::from_seed(&material)
    }

    fn compress<I: Iterator<Item = Hash256>>(chain_ends: I) -> Hash256 {
        let mut h = Sha256::new();
        h.update(b"wots/pk");
        for end in chain_ends {
            h.update(end.as_ref());
        }
        h.finalize()
    }

    /// The compressed public key (hash of all chain ends).
    pub fn public_key(&self) -> Hash256 {
        self.public
    }

    /// Signs `message`; fails on second use (one-time property).
    pub fn sign(&mut self, message: &[u8]) -> Result<WotsSignature, CryptoError> {
        if self.used {
            return Err(CryptoError::KeyExhausted);
        }
        self.used = true;
        Ok(self.sign_unchecked(message))
    }

    /// Signs without consuming the key.
    ///
    /// Only for use by [`crate::mss`], which guarantees each leaf key signs
    /// exactly once via its leaf counter.
    pub fn sign_unchecked(&self, message: &[u8]) -> WotsSignature {
        let msg_hash = Sha256::digest_parts(&[b"wots/msg", message]);
        let ds = digits(&msg_hash);
        let values = self
            .secrets
            .iter()
            .zip(ds.iter())
            .map(|(sk, &d)| chain(sk, u32::from(d)))
            .collect();
        WotsSignature { values }
    }

    /// Recovers the compressed public key implied by a signature on
    /// `message` (verification = comparing this against the known key).
    pub fn recover_public(message: &[u8], sig: &WotsSignature) -> Result<Hash256, CryptoError> {
        if sig.values.len() != WotsParams::LEN {
            return Err(CryptoError::InvalidLength(WotsParams::LEN, sig.values.len()));
        }
        let msg_hash = Sha256::digest_parts(&[b"wots/msg", message]);
        let ds = digits(&msg_hash);
        let ends = sig
            .values
            .iter()
            .zip(ds.iter())
            .map(|(v, &d)| chain(v, WotsParams::CHAIN_LEN - u32::from(d)));
        Ok(Self::compress(ends))
    }

    /// Verifies a signature against a known compressed public key.
    pub fn verify(
        public: &Hash256,
        message: &[u8],
        sig: &WotsSignature,
    ) -> Result<(), CryptoError> {
        if Self::recover_public(message, sig)? == *public {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(tag: u8) -> WotsKeypair {
        WotsKeypair::from_seed(&[tag; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = keypair(1);
        let pk = kp.public_key();
        let sig = kp.sign(b"hello world").unwrap();
        WotsKeypair::verify(&pk, b"hello world", &sig).unwrap();
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = keypair(2);
        let pk = kp.public_key();
        let sig = kp.sign(b"msg A").unwrap();
        assert_eq!(
            WotsKeypair::verify(&pk, b"msg B", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp = keypair(3);
        let other = keypair(4);
        let sig = kp.sign(b"msg").unwrap();
        assert!(WotsKeypair::verify(&other.public_key(), b"msg", &sig).is_err());
    }

    #[test]
    fn second_sign_fails() {
        let mut kp = keypair(5);
        kp.sign(b"first").unwrap();
        assert_eq!(kp.sign(b"second"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut kp = keypair(6);
        let pk = kp.public_key();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.values[10] = Hash256([0xee; 32]);
        assert!(WotsKeypair::verify(&pk, b"msg", &sig).is_err());
    }

    #[test]
    fn truncated_signature_rejected() {
        let mut kp = keypair(7);
        let pk = kp.public_key();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.values.pop();
        assert!(matches!(
            WotsKeypair::verify(&pk, b"msg", &sig),
            Err(CryptoError::InvalidLength(_, _))
        ));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = keypair(8);
        let b = keypair(8);
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn leaf_derivation_distinct() {
        let seed = [9u8; 32];
        let k0 = WotsKeypair::for_leaf(&seed, 0);
        let k1 = WotsKeypair::for_leaf(&seed, 1);
        assert_ne!(k0.public_key(), k1.public_key());
    }

    #[test]
    fn digit_checksum_within_range() {
        let h = Sha256::digest(b"check digits");
        let ds = digits(&h);
        assert!(ds.iter().all(|&d| d < 16));
        let checksum: u32 = ds[..WotsParams::LEN1]
            .iter()
            .map(|&d| WotsParams::CHAIN_LEN - u32::from(d))
            .sum();
        let encoded = (u32::from(ds[64]) << 8) | (u32::from(ds[65]) << 4) | u32::from(ds[66]);
        assert_eq!(checksum, encoded);
    }
}
