//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use sdr_crypto::{
    hex, hmac_sha256, Digest, HmacDrbg, MerkleTree, MssKeypair, Sha1, Sha256, WotsKeypair,
};

proptest! {
    /// Incremental hashing equals one-shot hashing for any split points.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let mut points: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cut in any::<prop::sample::Index>(),
    ) {
        let p = cut.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..p]);
        h.update(&data[p..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    /// Hex encoding round-trips for any byte string.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(hex::decode(&encoded), Some(data));
    }

    /// HMAC is deterministic and key-sensitive.
    #[test]
    fn hmac_deterministic_and_key_sensitive(
        key in proptest::collection::vec(any::<u8>(), 1..128),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut key2 = key.clone();
        key2[0] ^= 0x01;
        prop_assert_ne!(a, hmac_sha256(&key2, &msg));
    }

    /// Every Merkle proof of every leaf verifies; a flipped leaf fails.
    #[test]
    fn merkle_proofs_sound_and_complete(
        leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..40),
        flip in any::<prop::sample::Index>(),
    ) {
        let tree = MerkleTree::from_data(&leaves).expect("non-empty");
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("in range");
            let leaf_hash = sdr_crypto::merkle::leaf_hash(leaf);
            prop_assert!(MerkleTree::verify(&root, &leaf_hash, &proof).is_ok());
        }
        // Tamper with one leaf.
        let idx = flip.index(leaves.len());
        let proof = tree.prove(idx).expect("in range");
        let mut tampered = leaves[idx].clone();
        tampered[0] ^= 0xff;
        let bad_hash = sdr_crypto::merkle::leaf_hash(&tampered);
        prop_assert!(MerkleTree::verify(&root, &bad_hash, &proof).is_err());
    }

    /// WOTS round-trips on arbitrary messages and rejects any other message.
    #[test]
    fn wots_roundtrip_and_forgery_rejection(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        other in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let kp = WotsKeypair::from_seed(&seed);
        let sig = kp.sign_unchecked(&msg);
        prop_assert!(WotsKeypair::verify(&kp.public_key(), &msg, &sig).is_ok());
        if other != msg {
            prop_assert!(WotsKeypair::verify(&kp.public_key(), &other, &sig).is_err());
        }
    }

    /// DRBG streams are deterministic per seed and diverge across seeds.
    #[test]
    fn drbg_determinism(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mut x = HmacDrbg::from_seed_label(seed_a, b"p");
        let mut y = HmacDrbg::from_seed_label(seed_a, b"p");
        prop_assert_eq!(x.generate(64), y.generate(64));
        if seed_a != seed_b {
            let mut z = HmacDrbg::from_seed_label(seed_b, b"p");
            prop_assert_ne!(y.generate(64), z.generate(64));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MSS signatures round-trip across the whole (small) key capacity and
    /// never verify under a tampered message.
    #[test]
    fn mss_full_capacity_roundtrip(seed in any::<[u8; 32]>()) {
        let mut kp = MssKeypair::generate(seed, 2).expect("height ok");
        let pk = kp.public_key();
        for i in 0..4u64 {
            let msg = format!("msg-{i}");
            let sig = kp.sign(msg.as_bytes()).expect("capacity");
            prop_assert!(MssKeypair::verify(&pk, msg.as_bytes(), &sig).is_ok());
            prop_assert!(MssKeypair::verify(&pk, b"other", &sig).is_err());
        }
        prop_assert!(kp.sign(b"exhausted").is_err());
    }
}
