//! Offline stand-in for `criterion`.
//!
//! This workspace builds with no crates.io access, so the real `criterion`
//! cannot be fetched.  The shim keeps the bench sources compiling
//! unchanged and gives useful (if statistically unsophisticated) numbers:
//! each benchmark warms up briefly, then runs for a fixed time budget and
//! reports the mean wall-clock time per iteration.  The budget is small so
//! `cargo bench` over the whole workspace stays in the tens of seconds;
//! set `CRITERION_SHIM_MS` to raise it for steadier numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Completed measurements, collected for the optional JSON report.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

struct BenchResult {
    label: String,
    ns_per_iter: u128,
    iters: u64,
}

/// How long each benchmark measures for, after warm-up.
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the throughput basis; the shim notes it in the label only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput basis for a benchmark.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; the shim ignores it.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let budget = budget();
        let started = Instant::now();
        while started.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<40} (no iterations)");
    } else {
        let per_iter = b.total.as_nanos() / u128::from(b.iters);
        println!("{label:<40} {per_iter:>12} ns/iter ({} iters)", b.iters);
        if let Ok(mut results) = RESULTS.lock() {
            results.push(BenchResult {
                label: label.to_string(),
                ns_per_iter: per_iter,
                iters: b.iters,
            });
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every measurement taken so far to the file named by
/// `CRITERION_SHIM_JSON` (a baseline artefact CI can diff across PRs);
/// a no-op when the variable is unset.  Called by [`criterion_main!`]
/// after all groups finish.
///
/// Each bench binary runs in its own process, so when the file already
/// holds a result array (an earlier binary of the same `cargo bench`
/// invocation) the new measurements are merged into it instead of
/// truncating it.  Entries with the same name are replaced, so re-runs
/// update in place; delete the file to start a baseline from scratch.
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    let results = match RESULTS.lock() {
        Ok(r) => r,
        Err(_) => return,
    };
    let fresh: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"ns_per_iter\": {}, \"iters\": {}}}",
                json_escape(&r.label),
                r.ns_per_iter,
                r.iters
            )
        })
        .collect();
    // Keep prior entries (from other bench binaries) whose names this
    // run did not re-measure.  The file is our own one-object-per-line
    // format, so a line scan is enough to merge.
    let mut merged: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let entry = line.trim().trim_end_matches(',');
            if !entry.starts_with('{') {
                continue;
            }
            let replaced = results.iter().any(|r| {
                entry.starts_with(&format!("{{\"name\": \"{}\"", json_escape(&r.label)))
            });
            if !replaced {
                merged.push(entry.to_string());
            }
        }
    }
    merged.extend(fresh);
    let mut out = String::from("[\n");
    for (i, entry) in merged.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(entry);
    }
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring upstream.
///
/// After all groups run, results are optionally dumped as JSON (see
/// [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
