//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (upstream: `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite doubles only — like upstream's default `f64` strategy, which
    /// excludes NaN and the infinities unless explicitly requested.
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix magnitudes: mostly human-scale values, sometimes extreme.
        let raw = match rng.below(8) {
            0 => 0.0,
            1 => (rng.next_u64() as i64 as f64) * 1e-3,
            2 => rng.unit_f64() * 1e300,
            3 => rng.unit_f64() * 1e-300,
            _ => rng.unit_f64() * 2e3 - 1e3,
        };
        if rng.next_u64() & 1 == 1 {
            -raw
        } else {
            raw
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_unit(rng.unit_f64())
    }
}
