//! Offline stand-in for `proptest`.
//!
//! This workspace builds with no crates.io access, so the real `proptest`
//! cannot be fetched.  The shim implements the subset of the API the test
//! suites use — the [`Strategy`] trait with `prop_map`/`boxed`, `any`,
//! `Just`, range and string-pattern strategies, tuples,
//! [`collection::vec`], [`sample::Index`], `prop_oneof!`, the `proptest!`
//! test macro and the `prop_assert*` assertions — with deterministic
//! generation seeded per test name.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.**  A failing case panics with the standard assertion
//!   message; inputs are reproducible because generation is deterministic.
//! * **String strategies** accept only character-class patterns of the
//!   form `[class]{m,n}` (sequences thereof, plus literal characters),
//!   which covers every pattern in this repo.
//! * **Case counts** come from the `PROPTEST_CASES` environment variable
//!   when set (clamped down by any explicit `ProptestConfig::with_cases`),
//!   defaulting to [`test_runner::DEFAULT_CASES`].  CI sets a low value so
//!   the property suites finish in seconds.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the test suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of upstream's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Runs one property test: samples each strategy `cases` times and calls
/// the body.  Used by the `proptest!` macro expansion; not public API.
#[doc(hidden)]
pub fn __run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut test_runner::TestRng, u32)) {
    let mut rng = test_runner::TestRng::for_test(name);
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// Defines property tests.  Mirrors `proptest::proptest!` for the
/// `fn name(arg in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg (::core::option::Option::Some($cfg)); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg (::core::option::Option::None); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: ::core::option::Option<$crate::test_runner::ProptestConfig> = $cfg;
                let __cases = $crate::test_runner::resolve_cases(__cfg.map(|c| c.cases));
                $crate::__run_cases(stringify!($name), __cases, |__rng, __case| {
                    $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
