//! Sampling helpers (`prop::sample`).

/// A position into a collection of not-yet-known size, as in upstream's
/// `proptest::sample::Index`: generated once, projected onto any length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Index(f64);

impl Index {
    /// Builds an index from a fraction in `[0, 1)`.
    pub(crate) fn from_unit(unit: f64) -> Self {
        Index(unit)
    }

    /// Projects the index onto a collection of `len` elements, returning a
    /// value in `[0, len)`.  Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 * len as f64) as usize).min(len - 1)
    }
}
