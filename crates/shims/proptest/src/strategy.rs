//! The [`Strategy`] trait and the combinators this repo's suites use.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies producing the
    /// same value type can live in one collection (see `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies behind shared references sample like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        self.0.sample_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Uniform choice over boxed strategies; built by `prop_oneof!`.
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// String-pattern strategies: `"[a-z]{1,8}"` and friends.
impl Strategy for &'static str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
