//! String-pattern strategies.
//!
//! Upstream proptest treats `&str` as a full regex strategy.  The suites
//! in this repo only use sequences of character classes with optional
//! `{m,n}` repetition (e.g. `"[a-z/]{1,10}"`, `"[a-c]"`), so this module
//! implements exactly that grammar: literal characters, `\`-escapes,
//! `[...]` classes (with ranges and escapes), and `{n}` / `{m,n}`
//! quantifiers applying to the preceding atom.

use crate::test_runner::TestRng;

enum Atom {
    /// Characters to choose from uniformly.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Samples one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Class(chars) => {
                    let idx = rng.below(chars.len() as u64) as usize;
                    out.push(chars[idx]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars, pattern)),
            '\\' => {
                let lit = chars
                    .next()
                    .unwrap_or_else(|| bad(pattern, "dangling escape"));
                Atom::Class(vec![lit])
            }
            _ => Atom::Class(vec![c]),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            parse_quantifier(&mut chars, pattern)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<char> {
    let mut members = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => break,
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| bad(pattern, "dangling escape in class")),
            Some(c) => c,
            None => bad(pattern, "unterminated character class"),
        };
        // `a-z` range (a trailing `-` is a literal).
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&']') | None => members.push(c),
                Some(&hi) => {
                    chars.next();
                    chars.next();
                    let hi = if hi == '\\' {
                        chars
                            .next()
                            .unwrap_or_else(|| bad(pattern, "dangling escape in class"))
                    } else {
                        hi
                    };
                    assert!(c <= hi, "bad class range in pattern {pattern:?}");
                    for code in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            members.push(ch);
                        }
                    }
                }
            }
        } else {
            members.push(c);
        }
    }
    assert!(!members.is_empty(), "empty character class in {pattern:?}");
    members
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut first = String::new();
    let mut second: Option<String> = None;
    loop {
        match chars.next() {
            Some('}') => break,
            Some(',') => second = Some(String::new()),
            Some(d) if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            _ => bad(pattern, "malformed quantifier"),
        }
    }
    let min: usize = first
        .parse()
        .unwrap_or_else(|_| bad(pattern, "malformed quantifier"))
        ;
    let max = match second {
        None => min,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(pattern, "malformed quantifier")),
    };
    assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
    (min, max)
}

fn bad(pattern: &str, what: &str) -> ! {
    panic!("unsupported string strategy pattern {pattern:?}: {what}")
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::for_test("class_with_quantifier");
        for _ in 0..200 {
            let s = sample_pattern("[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn escapes_inside_class() {
        let mut rng = TestRng::for_test("escapes_inside_class");
        for _ in 0..200 {
            let s = sample_pattern("[a-zA-Z0-9 *?\\[\\]]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " *?[]".contains(c)));
        }
    }

    #[test]
    fn bare_class_is_one_char() {
        let mut rng = TestRng::for_test("bare_class_is_one_char");
        for _ in 0..50 {
            let s = sample_pattern("[a-d]", &mut rng);
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_test("literals_pass_through");
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
    }
}
