//! Case-count resolution and the deterministic test RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Default number of cases per property when neither `PROPTEST_CASES`
/// nor an explicit config says otherwise.
pub const DEFAULT_CASES: u32 = 64;

/// Subset of upstream's `ProptestConfig` used by this repo.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run for each property in the block.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Resolves the effective case count: the `PROPTEST_CASES` environment
/// variable (if set and parseable) establishes the baseline, and an
/// explicit per-block config can only lower it — so CI can cap the whole
/// suite while slow properties keep their tighter local budgets.
pub fn resolve_cases(explicit: Option<u32>) -> u32 {
    let base = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(DEFAULT_CASES);
    explicit.map_or(base, |e| e.min(base)).max(1)
}

/// Deterministic per-test generator: the stream depends only on the test
/// name, so failures reproduce across runs and machines.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name picks the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
