//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds with no crates.io access, so the real `rand`
//! cannot be fetched.  The simulator only needs a small, seedable,
//! deterministic generator — reproducibility from a `u64` seed is part of
//! `sdr-sim`'s contract — so this shim provides the exact API surface the
//! tree uses (`SmallRng`, `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`) backed by xoshiro256++ with splitmix64
//! seeding.  Note the stream differs from upstream `rand`'s `SmallRng`;
//! all determinism guarantees in this repo are relative to this shim.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.  Minimal analogue of `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.  Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`] can sample uniformly.  Mirrors upstream's
/// `rand::distributions::uniform::SampleUniform` so integer-literal ranges
/// infer their type from the call site.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (exclusive) or `[lo, hi]` (inclusive).
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Nearly-uniform draw from `[0, n)` via 128-bit multiply (Lemire).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span + 1) as i128) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (lo as i128 + below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    ///
    /// Stand-in for `rand::rngs::SmallRng`; the output stream is stable
    /// for this repo but differs from upstream `rand`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
