//! A small, real JSON layer for the offline serde shim.
//!
//! The marker `Serialize`/`Deserialize` traits in `lib.rs` keep the
//! annotation-compatibility story; this module is the part of the shim
//! that actually serialises.  It provides a JSON document model
//! ([`Value`]), a renderer and parser, and the [`ToJson`]/[`FromJson`]
//! traits that `#[derive(ToJson)]`/`#[derive(FromJson)]` (from the
//! sibling `serde_derive` shim) implement for named-field structs and
//! for enums with unit or named-field variants.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — rendering is byte-stable: object keys keep
//!    insertion order, floats use Rust's shortest round-trip formatting.
//!    The scenario runner's "same spec + seed ⇒ byte-identical report"
//!    guarantee rests on this.
//! 2. **Round-trips** — `u64` values (seeds!) never pass through `f64`,
//!    so they survive `render` → `parse` exactly.
//! 3. **No dependencies** — plain `std`, hand-rolled recursive-descent
//!    parser.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; never coerced through `f64`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Object),
}

/// An insertion-ordered JSON object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends a key (replacing an existing entry with the same key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The single entry of a one-entry object (how derived enums with
    /// data-carrying variants are encoded).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        if self.entries.len() == 1 {
            self.entries.first().map(|(k, v)| (k.as_str(), v))
        } else {
            None
        }
    }
}

impl Value {
    /// The object inside, if this is one.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array inside, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string inside, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// A non-negative integer, exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// A signed integer, exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(u) => {
                out.push_str(&u.to_string());
            }
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; integral
                    // floats render without a fraction and re-parse as
                    // integers, which `FromJson for f64` accepts back.
                    out.push_str(&f.to_string());
                } else {
                    // JSON has no NaN/Inf; degrade to null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters after value"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A serialisation/deserialisation error with field-path context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    path: Vec<String>,
}

impl JsonError {
    /// A free-form error.
    pub fn msg(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    fn at(pos: usize, msg: &str) -> Self {
        JsonError::msg(format!("{msg} (byte {pos})"))
    }

    /// "expected X while decoding Y".
    pub fn type_mismatch(expected: &str, decoding: &str) -> Self {
        JsonError::msg(format!("expected {expected} while decoding {decoding}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, decoding: &str) -> Self {
        JsonError::msg(format!("missing field `{field}` while decoding {decoding}"))
    }

    /// An enum tag was not recognised.
    pub fn unknown_variant(tag: &str, decoding: &str) -> Self {
        JsonError::msg(format!("unknown variant `{tag}` while decoding {decoding}"))
    }

    /// Wraps the error with the field it occurred under.
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.insert(0, field.to_string());
        self
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "at {}: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                &format!("expected `{}`", b as char),
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at(self.pos, &format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut o = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(o));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            o.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(o));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at(start, "invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Lone surrogates degrade to the replacement
                            // character; surrogate pairs combine.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // past '\\'; hex4 skips the 'u'
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        s.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                    } else {
                                        // Lone high surrogate; keep the
                                        // non-surrogate escape that followed.
                                        s.push('\u{FFFD}');
                                        s.push(char::from_u32(lo).unwrap_or('\u{FFFD}'));
                                    }
                                } else {
                                    s.push('\u{FFFD}');
                                }
                            } else {
                                s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError::at(self.pos, "unterminated string")),
            }
        }
    }

    /// Parses 4 hex digits after `\u`; leaves `pos` after the digits.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        self.pos += 1; // past 'u'
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
        let s = std::str::from_utf8(digits)
            .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i == 0 {
                        return Ok(Value::UInt(0));
                    }
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                    if i == i64::MAX as u64 + 1 {
                        return Ok(Value::Int(i64::MIN));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::at(start, "bad number"))
    }
}

/// Types that can render themselves as a JSON [`Value`].
///
/// Implemented for the std primitives/containers below and derivable with
/// `#[derive(ToJson)]` for named-field structs and unit/named-field
/// enums.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`].
///
/// Derivable with `#[derive(FromJson)]` for the same shapes as
/// [`ToJson`].
pub trait FromJson: Sized {
    /// Decodes from a JSON value.
    fn from_json(v: &Value) -> Result<Self, JsonError>;

    /// Called when an object field is absent entirely; `Option` overrides
    /// this to yield `None`, everything else errors.
    fn from_missing(field: &str, decoding: &str) -> Result<Self, JsonError> {
        Err(JsonError::missing_field(field, decoding))
    }
}

/// Renders any [`ToJson`] type to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Parses a JSON string into any [`FromJson`] type.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    let v = Value::parse(input)?;
    T::from_json(&v)
}

/// Decodes one object field (missing fields go through
/// [`FromJson::from_missing`], so `Option` fields may be omitted).
pub fn from_field<T: FromJson>(o: &Object, field: &str, decoding: &str) -> Result<T, JsonError> {
    match o.get(field) {
        Some(v) => T::from_json(v).map_err(|e| e.in_field(field)),
        None => T::from_missing(field, decoding),
    }
}

// --- ToJson / FromJson impls for primitives and containers ---

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| JsonError::type_mismatch("unsigned integer", stringify!($t)))
            }
        }
    )*};
}
impl_json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl FromJson for usize {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| JsonError::type_mismatch("unsigned integer", "usize"))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| JsonError::type_mismatch("integer", stringify!($t)))
            }
        }
    )*};
}
impl_json_int!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        if self.fract() == 0.0 && self.is_finite() && self.abs() < 9.0e15 {
            // Integral floats render as integers (and decode back).
            if *self >= 0.0 {
                Value::UInt(*self as u64)
            } else {
                Value::Int(*self as i64)
            }
        } else {
            Value::Float(*self)
        }
    }
}
impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        // `null` decodes to NaN, mirroring ToJson's rendering of
        // non-finite floats (JSON has no NaN/Inf literal) so reports
        // containing NaN metrics still round-trip.
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| JsonError::type_mismatch("number", "f64"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        f64::from(*self).to_json()
    }
}
impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::type_mismatch("boolean", "bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::type_mismatch("string", "String"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn from_missing(_field: &str, _decoding: &str) -> Result<Self, JsonError> {
        Ok(None)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_mismatch("array", "Vec"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::type_mismatch("2-element array", "tuple")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}
impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::type_mismatch("3-element array", "tuple")),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        let mut o = Object::new();
        for (k, v) in self {
            o.insert(k.clone(), v.to_json());
        }
        Value::Object(o)
    }
}
impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let o = v
            .as_object()
            .ok_or_else(|| JsonError::type_mismatch("object", "BTreeMap"))?;
        o.iter()
            .map(|(k, v)| Ok((k.to_owned(), V::from_json(v).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "17", "-5", "0.5", "\"hi\"", "[1,2]"] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let big = u64::MAX - 3;
        let v = big.to_json();
        let back: u64 = FromJson::from_json(&Value::parse(&v.render()).unwrap()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn object_keeps_insertion_order() {
        let mut o = Object::new();
        o.insert("zebra", Value::UInt(1));
        o.insert("alpha", Value::UInt(2));
        assert_eq!(Value::Object(o).render(), r#"{"zebra":1,"alpha":2}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1} é";
        let rendered = Value::Str(s.to_owned()).render();
        let back = Value::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn nested_parse() {
        let v = Value::parse(r#"{"a":[1,{"b":null},-2.5],"c":"x"}"#).unwrap();
        let o = v.as_object().unwrap();
        let arr = o.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-2.5));
        assert_eq!(o.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn floats_round_trip_through_text() {
        for f in [0.1, 2.5e-3, 1234.5678, -0.25] {
            let rendered = Value::Float(f).render();
            let back: f64 = from_str(&rendered).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn integral_float_normalises_to_integer() {
        assert_eq!(3.0f64.to_json(), Value::UInt(3));
        assert_eq!((-4.0f64).to_json(), Value::Int(-4));
        let back: f64 = from_str("3").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn option_and_missing_fields() {
        let mut o = Object::new();
        o.insert("present", Value::UInt(1));
        let some: Option<u64> = from_field(&o, "present", "t").unwrap();
        let none: Option<u64> = from_field(&o, "absent", "t").unwrap();
        assert_eq!(some, Some(1));
        assert_eq!(none, None);
        let missing: Result<u64, _> = from_field(&o, "absent", "t");
        assert!(missing.is_err());
    }

    #[test]
    fn nan_metrics_round_trip_as_null() {
        // Non-finite floats render as null and decode back as NaN, so
        // reports carrying NaN metrics stay parseable.
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
        let pair: (String, f64) = from_str(r#"["lies",null]"#).unwrap();
        assert!(pair.1.is_nan());
    }

    #[test]
    fn i64_min_round_trips() {
        let rendered = to_string(&i64::MIN);
        assert_eq!(rendered, "-9223372036854775808");
        let back: i64 = from_str(&rendered).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn lone_high_surrogate_keeps_following_escape() {
        let v = Value::parse("\"\\uD800\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}A"));
        // A real pair still combines.
        let v = Value::parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }
}
