//! Offline stand-in for `serde`.
//!
//! This workspace builds with no crates.io access, so the real `serde`
//! cannot be fetched.  The shim has two layers:
//!
//! * **Marker traits** — [`Serialize`]/[`Deserialize`] with blanket impls
//!   plus no-op derive macros, so `#[derive(Serialize, Deserialize)]`
//!   annotations on protocol types stay source-compatible with the real
//!   crate (swapping it in later is a one-line Cargo change).
//! * **A real JSON layer** — [`json`] provides a document model, parser,
//!   renderer, and the [`json::ToJson`]/[`json::FromJson`] traits, which
//!   `#[derive(ToJson)]`/`#[derive(FromJson)]` implement for named-field
//!   structs and unit/named-field enums.  This is what the scenario API's
//!   machine-readable run reports serialise through.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, FromJson, Serialize, ToJson};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
