//! Offline stand-in for `serde`.
//!
//! This workspace builds with no crates.io access, so the real `serde`
//! cannot be fetched.  The tree only uses serde as a forward-looking
//! annotation — `#[derive(Serialize, Deserialize)]` on protocol types,
//! never an actual serialisation call — so this shim provides the two
//! marker traits with blanket impls plus no-op derive macros.  Swapping in
//! the real crate later is a one-line Cargo change with identical source.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
