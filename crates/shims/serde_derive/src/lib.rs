//! No-op derive macros for the offline `serde` shim.
//!
//! The workspace is built in environments with no crates.io access, so the
//! real `serde_derive` cannot be fetched.  Protocol types only use
//! `#[derive(Serialize, Deserialize)]` as a forward-looking annotation —
//! nothing in the tree serialises through serde yet — so deriving nothing
//! is sufficient for the marker traits in the sibling `serde` shim, which
//! carry blanket impls.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
