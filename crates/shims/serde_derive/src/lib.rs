//! Derive macros for the offline `serde` shim.
//!
//! Two kinds of macro live here:
//!
//! * `Serialize`/`Deserialize` — no-op derives backing the marker traits
//!   in the sibling `serde` shim (annotation compatibility with the real
//!   crate; nothing in the tree serialises through them).
//! * `ToJson`/`FromJson` — *real* derives for the shim's [`serde::json`]
//!   layer.  They support named-field structs and enums whose variants
//!   are unit or named-field (the shapes the workspace uses); tuple
//!   structs, tuple variants, and generics raise a compile error asking
//!   for a manual impl.
//!
//! The real `serde_derive` leans on `syn`/`quote`; this shim parses the
//! token stream by hand, which is enough for the supported shapes: skip
//! attributes and visibility, read `struct`/`enum` + name, then walk the
//! brace-delimited body collecting field or variant names (tracking
//! `<`/`>` depth so commas inside generic types don't split fields).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::json::ToJson` for named-field structs and
/// unit/named-field enums.
#[proc_macro_derive(ToJson)]
pub fn derive_to_json(input: TokenStream) -> TokenStream {
    match parse_type(input) {
        Ok(def) => gen_to_json(&def).parse().expect("generated ToJson parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::json::FromJson` for named-field structs and
/// unit/named-field enums.
#[proc_macro_derive(FromJson)]
pub fn derive_from_json(input: TokenStream) -> TokenStream {
    match parse_type(input) {
        Ok(def) => gen_from_json(&def)
            .parse()
            .expect("generated FromJson parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("literal")
}

/// A variant's shape: `None` = unit, `Some(fields)` = named fields.
type Variant = (String, Option<Vec<String>>);

enum TypeDef {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips one attribute (`#[...]`) if the iterator is positioned at one.
fn skip_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            _ => return,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_type(input: TokenStream) -> Result<TypeDef, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    // Find the brace-delimited body; generics or a tuple body are
    // unsupported shapes.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "derive(ToJson/FromJson) does not support generics on `{name}`; write a manual impl"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "derive(ToJson/FromJson) does not support tuple/unit struct `{name}`; write a manual impl"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("no body found for `{name}`")),
        }
    };

    match kind.as_str() {
        "struct" => Ok(TypeDef::Struct {
            fields: parse_fields(body)?,
            name,
        }),
        "enum" => Ok(TypeDef::Enum {
            variants: parse_variants(body, &name)?,
            name,
        }),
        other => Err(format!("cannot derive for `{other} {name}`")),
    }
}

/// Parses `name: Type, ...` out of a struct or variant body.
fn parse_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, got {other:?}")),
        }
        // Skip the type: commas only split fields at angle-bracket depth 0.
        // The `>` of a `->` (fn-pointer return type) is not a closer.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        for t in iter.by_ref() {
            let mut is_dash = false;
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == '-' => is_dash = true,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            prev_dash = is_dash;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Parses `Variant, Variant { a: T, .. }, ...` out of an enum body.
fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                iter.next();
                // Trailing comma, if any.
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    iter.next();
                }
                variants.push((name, Some(fields)));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "derive(ToJson/FromJson): tuple variant `{enum_name}::{name}` unsupported; use named fields or a manual impl"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
                variants.push((name, None));
            }
            None => {
                variants.push((name, None));
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{enum_name}::{name}`: {other:?}"
                ));
            }
        }
    }
    Ok(variants)
}

fn gen_to_json(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in fields {
                inserts.push_str(&format!(
                    "__o.insert({f:?}, ::serde::json::ToJson::to_json(&self.{f}));\n"
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::json::ToJson for {name} {{\n\
                     fn to_json(&self) -> ::serde::json::Value {{\n\
                         let mut __o = ::serde::json::Object::new();\n\
                         {inserts}\
                         ::serde::json::Value::Object(__o)\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::json::Value::Str(\
                         ::std::borrow::ToOwned::to_owned({vname:?})),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "__i.insert({f:?}, ::serde::json::ToJson::to_json({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                                 let mut __i = ::serde::json::Object::new();\n\
                                 {inserts}\
                                 let mut __o = ::serde::json::Object::new();\n\
                                 __o.insert({vname:?}, ::serde::json::Value::Object(__i));\n\
                                 ::serde::json::Value::Object(__o)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::json::ToJson for {name} {{\n\
                     fn to_json(&self) -> ::serde::json::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_from_json(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let mut builds = String::new();
            for f in fields {
                builds.push_str(&format!(
                    "{f}: ::serde::json::from_field(__o, {f:?}, {name:?})?,\n"
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::json::FromJson for {name} {{\n\
                     fn from_json(__v: &::serde::json::Value) -> \
                         ::core::result::Result<Self, ::serde::json::JsonError> {{\n\
                         let __o = __v.as_object().ok_or_else(|| \
                             ::serde::json::JsonError::type_mismatch(\"object\", {name:?}))?;\n\
                         ::core::result::Result::Ok({name} {{\n{builds}}})\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut named_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    None => unit_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Some(fields) => {
                        let ctx = format!("{name}::{vname}");
                        let mut builds = String::new();
                        for f in fields {
                            builds.push_str(&format!(
                                "{f}: ::serde::json::from_field(__i, {f:?}, {ctx:?})?,\n"
                            ));
                        }
                        named_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __i = __inner.as_object().ok_or_else(|| \
                                     ::serde::json::JsonError::type_mismatch(\"object\", {ctx:?}))?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n{builds}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::json::FromJson for {name} {{\n\
                     fn from_json(__v: &::serde::json::Value) -> \
                         ::core::result::Result<Self, ::serde::json::JsonError> {{\n\
                         if let ::core::option::Option::Some(__s) = __v.as_str() {{\n\
                             return match __s {{\n\
                                 {unit_arms}\
                                 __other => ::core::result::Result::Err(\
                                     ::serde::json::JsonError::unknown_variant(__other, {name:?})),\n\
                             }};\n\
                         }}\n\
                         let __o = __v.as_object().ok_or_else(|| \
                             ::serde::json::JsonError::type_mismatch(\"string or single-key object\", {name:?}))?;\n\
                         let (__tag, __inner) = __o.single_entry().ok_or_else(|| \
                             ::serde::json::JsonError::type_mismatch(\"single-key object\", {name:?}))?;\n\
                         match __tag {{\n\
                             {named_arms}\
                             __other => ::core::result::Result::Err(\
                                 ::serde::json::JsonError::unknown_variant(__other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
