//! The virtual cost model translating logical work into CPU time.
//!
//! The paper's performance arguments are about *relative* costs: digital
//! signatures dominate hashing, query execution scales with data scanned,
//! and the auditor wins by skipping signatures and replies.  Experiments
//! charge virtual CPU microseconds through this table, so results are
//! machine-independent and deterministic.  Default constants were
//! calibrated against the `sdr-crypto`/`sdr-store` criterion benches (see
//! E11 in EXPERIMENTS.md) and rounded; the *ratios* are what matter.

use crate::time::SimDuration;

/// Cost constants (virtual microseconds) for protocol operations.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Producing one digital signature (paper-era RSA ≈ milliseconds; the
    /// slave must do this for every read it serves).
    pub sign: SimDuration,
    /// Verifying one signature (cheaper than signing).
    pub verify: SimDuration,
    /// Hashing cost per KiB of data (SHA-1/SHA-256 are within 2x).
    pub hash_per_kib: SimDuration,
    /// Fixed per-query planning/dispatch overhead.
    pub query_fixed: SimDuration,
    /// Cost per row scanned by a query.
    pub row_scan: SimDuration,
    /// Cost per row fetched through an index (cheaper than a scan row).
    pub index_probe: SimDuration,
    /// Cost per byte of text matched by a grep query, expressed per KiB.
    pub grep_per_kib: SimDuration,
    /// Applying one write operation to the store.
    pub write_apply: SimDuration,
    /// Serialising/deserialising a message, per KiB.
    pub serde_per_kib: SimDuration,
    /// Query-cache lookup (auditor optimisation).
    pub cache_lookup: SimDuration,
}

impl CostModel {
    /// Default calibration (see module docs).
    pub fn standard() -> Self {
        CostModel {
            sign: SimDuration::from_micros(2_500),
            verify: SimDuration::from_micros(400),
            hash_per_kib: SimDuration::from_micros(4),
            query_fixed: SimDuration::from_micros(20),
            row_scan: SimDuration::from_micros(2),
            index_probe: SimDuration::from_micros(5),
            grep_per_kib: SimDuration::from_micros(12),
            write_apply: SimDuration::from_micros(50),
            serde_per_kib: SimDuration::from_micros(2),
            cache_lookup: SimDuration::from_micros(3),
        }
    }

    /// A model where cryptography is free — for ablations isolating the
    /// signature cost (used when arguing the auditor's advantage).
    pub fn free_crypto() -> Self {
        CostModel {
            sign: SimDuration::ZERO,
            verify: SimDuration::ZERO,
            ..Self::standard()
        }
    }

    /// Hashing cost for `bytes` of data.
    pub fn hash_cost(&self, bytes: usize) -> SimDuration {
        per_kib(self.hash_per_kib, bytes)
    }

    /// Serialisation cost for `bytes`.
    pub fn serde_cost(&self, bytes: usize) -> SimDuration {
        per_kib(self.serde_per_kib, bytes)
    }

    /// Grep cost over `bytes` of text.
    pub fn grep_cost(&self, bytes: usize) -> SimDuration {
        per_kib(self.grep_per_kib, bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::standard()
    }
}

/// Scales a per-KiB cost to `bytes`, rounding up to at least 1 µs for any
/// non-empty payload so work is never free.
fn per_kib(rate: SimDuration, bytes: usize) -> SimDuration {
    if bytes == 0 || rate == SimDuration::ZERO {
        return SimDuration::ZERO;
    }
    let micros = (rate.as_micros() as u128 * bytes as u128).div_ceil(1024) as u64;
    SimDuration::from_micros(micros.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signing_dominates_verification_dominates_hashing() {
        let c = CostModel::standard();
        assert!(c.sign > c.verify);
        assert!(c.verify > c.hash_cost(1024));
    }

    #[test]
    fn per_kib_scaling() {
        let c = CostModel::standard();
        assert_eq!(c.hash_cost(0), SimDuration::ZERO);
        assert_eq!(c.hash_cost(1024), c.hash_per_kib);
        assert_eq!(c.hash_cost(2048), c.hash_per_kib * 2);
        // Sub-KiB payloads still cost at least 1 µs.
        assert!(c.hash_cost(10) >= SimDuration::from_micros(1));
    }

    #[test]
    fn free_crypto_zeroes_only_crypto() {
        let c = CostModel::free_crypto();
        assert_eq!(c.sign, SimDuration::ZERO);
        assert_eq!(c.verify, SimDuration::ZERO);
        assert!(c.row_scan > SimDuration::ZERO);
    }
}
