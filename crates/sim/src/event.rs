//! The deterministic event queue.

use crate::process::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind<M> {
    /// Deliver a message to `to` from `from`.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Source node.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// Fire a timer on `node` with the caller-chosen `tag`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Caller-chosen discriminator.
        tag: u64,
        /// Unique timer id (for cancellation).
        id: u64,
    },
    /// Crash a node (fault injection).
    Crash(NodeId),
    /// Recover a crashed node.
    Recover(NodeId),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence (insertion order).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: u32) -> EventKind<u64> {
        EventKind::Deliver {
            to: NodeId(to),
            from: NodeId(0),
            msg: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), deliver(3));
        q.push(SimTime(10), deliver(1));
        q.push(SimTime(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(SimTime(42), deliver(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
